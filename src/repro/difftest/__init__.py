"""repro.difftest — generative differential testing of the IR stack.

A seeded fuzzer (:mod:`generator`) emits structured loop programs in the
paper's target shapes; differential oracles (:mod:`oracles`) check that
transform pipelines preserve fault-free semantics, that the textual form
is a print/parse fixpoint, and that the protection transforms uphold
their fault-masking contracts; a delta-debugging shrinker (:mod:`shrink`)
reduces failures to small reproducible ``.ir`` files; and the sharded
driver (:mod:`runner`) runs the whole thing behind ``repro difftest``.
"""
from .generator import (
    SHAPES,
    GeneratedProgram,
    generate,
    generate_module,
    generate_phased,
    mutate_function,
)
from .oracles import (
    CLEANUP_PASSES,
    PROTECTIONS,
    ModuleWorkload,
    Violation,
    check_backend_equivalence,
    check_batch_equivalence,
    check_fault_metamorphic,
    check_incremental_equivalence,
    check_pipeline,
    check_roundtrip,
    execute_module,
    module_copy,
)
from .runner import DifftestReport, render_report, run_difftest
from .shrink import instruction_count, shrink_module

__all__ = [
    "SHAPES", "GeneratedProgram", "generate", "generate_module",
    "generate_phased", "mutate_function",
    "CLEANUP_PASSES", "PROTECTIONS", "ModuleWorkload", "Violation",
    "check_backend_equivalence",
    "check_batch_equivalence",
    "check_fault_metamorphic", "check_incremental_equivalence",
    "check_pipeline", "check_roundtrip",
    "execute_module", "module_copy",
    "DifftestReport", "render_report", "run_difftest",
    "instruction_count", "shrink_module",
]
