"""Differential oracles over generated IR programs.

Six machine-checked properties:

* **O1 — pipeline equivalence** (:func:`check_pipeline`): any pipeline of
  cleanup passes ({dce, cse, licm, simplify, clone}) optionally followed
  by one protection transform ({swift, swift-r, rskip}) must leave the
  fault-free outputs (return value plus every global's final cells)
  bit-identical to the unmodified program, and ``verify_module`` must
  accept every intermediate module.

* **O2 — print/parse fixpoint** (:func:`check_roundtrip`): printing a
  module, parsing it back and printing again must reproduce the first
  text exactly, and the reparsed module must verify.

* **O4 — backend equivalence** (:func:`check_backend_equivalence`): the
  reference interpreter and the closure-compiled backend must agree on
  the full observable state of a clean run — return value (NaN-aware),
  architectural step count, per-opcode counts, and every global's final
  cells — and on trapping runs must raise the same exception type with
  the same message.  Checked on the plain program and again after a
  protection transform (fresh copies per backend, so runtime-stateful
  intrinsics like the RSkip predictor stay independent).

* **O5 — batch-lane equivalence** (:func:`check_batch_equivalence`): the
  lane-vectorized batch engine (:mod:`repro.runtime.batch`) must agree
  lane-for-lane with the reference interpreter — lane *i* of a batched
  chunk reproduces trial *i*'s outcome class, trap kind, detection flag,
  step and region-step counts, return value and final global memory.
  Checked on the plain program and again under a protection transform
  (per-lane module copies, so stateful intrinsics stay per-trial).

* **O6 — exhaustive single-skip model checking**
  (:func:`check_skip_exhaustive`): a counting pre-run names every
  in-region dynamic instruction of a bounded program; one skip plan per
  site then *proves* per-scheme skip coverage instead of sampling it —
  each site's detected/masked/sdc/trap/hang classification must be
  byte-identical between per-trial reference execution and one batched
  lane slab, and under the duplication schemes a skip whose victim is a
  shadow instruction must never be silent corruption (the instruction-
  skip analogue of O3's shadow-flip property).

* **O3 — fault metamorphic property** (:func:`check_fault_metamorphic`):
  a single bit flip injected into the *redundant* stream of a protected
  program is invisible or detected, never silent corruption.  Both the
  flip scope and the pass/fail contract are derived from the scheme's
  registered :class:`~repro.pipeline.registry.Protocol` — no scheme
  names appear in the contract logic.  ``flip_scope="shadow"`` targets
  live ``.sw1``/``.sw2`` registers (space/prediction redundancy);
  ``flip_scope="region"`` targets live float registers inside
  protocol-region frames (time redundancy: the outlined bodies both the
  main path and the re-execution run).  ``contract="detected-or-masked"``
  (recovery ``abort``) admits detections; ``contract="exactly-masked"``
  (recovery ``vote``/``rollback``) requires every run to stay exactly
  golden, aborts included.  ``verify_as`` redirects sampled family
  members (REPLAY<n>) to their full-coverage point.  For shadow-scope
  schemes a static coverage check additionally requires that protection
  actually replicated computation and inserted sync-point checkers, which
  catches "no-op" protection passes that dynamic shadow flips cannot see.

All checks are deterministic: randomness comes in only through the
caller-supplied fault plans, themselves derived from ``stable_seed``.
"""
from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import RSkipConfig
from ..core.protocol import PROTOCOL_REGION_ATTR
from ..ir.function import Function
from ..ir.instructions import CmpPred, Opcode
from ..ir.module import Module
from ..ir.parser import ParseError, parse_module
from ..ir.printer import format_module
from ..ir.values import Reg
from ..ir.verifier import VerificationError, verify_module
from ..pipeline.passes import (
    CLEANUP_PASSES,
    PROTECTION_APPLIERS,
    PROTECTIONS,
    ProtectContext,
)
from ..pipeline.registry import get_scheme
from ..runtime.backend import make_executor
from ..runtime.errors import (
    CoreDumpError,
    FaultDetectedError,
    HangError,
    SegfaultError,
    TrapError,
)
from ..runtime.faults import FaultPlan, Region, flip_value, random_plan
from ..runtime.interpreter import OPCODES, Interpreter
from ..runtime.memory import Memory
from ..runtime.outcomes import outputs_equal
from ..transforms.swift import DETECT_INTRINSIC
from ..workloads.base import stable_seed

DEFAULT_MAX_STEPS = 5_000_000

#: Lanes per O5 batch — more than the batch engine's small-group cutoff,
#: so the check exercises the lockstep machine, not just its scalar tail.
DEFAULT_BATCH_LANES = 8

#: Shadow-register suffixes of the duplication transforms.
_SHADOW_SUFFIXES = (".sw1", ".sw2")


@dataclass
class Violation:
    """One oracle failure, serializable for cross-process reporting."""

    oracle: str  # "o1" | "o2" | "o3" | "o4" | "o5" | "o6"
    detail: str
    pipeline: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {"oracle": self.oracle, "detail": self.detail,
                "pipeline": list(self.pipeline)}

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(data["oracle"], data["detail"], tuple(data["pipeline"]))


# -- module plumbing ---------------------------------------------------------
def module_copy(module: Module) -> Module:
    """An independent deep copy via the textual form (also exercises O2's
    machinery on every oracle run)."""
    return parse_module(format_module(module))


def _swift_detect(interp, args):
    raise FaultDetectedError("swift detected a mismatch")


@dataclass
class ExecResult:
    value: object
    globals: Dict[str, List[float]]
    steps: int


def execute_module(
    module: Module,
    intrinsics: Optional[dict] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    entry: str = "main",
    backend: Optional[str] = None,
    args: Sequence = (),
    memory_factory: Optional[Callable[[], Memory]] = None,
) -> ExecResult:
    """Run *entry* fault-free and capture the full observable state.

    Clean runs dispatch through :func:`repro.runtime.make_executor`, so
    the process-wide default backend applies unless *backend* pins one.
    *args*/*memory_factory* let callers check workload modules whose
    entry takes arguments and reads initialized input memory.
    """
    memory = memory_factory() if memory_factory is not None else Memory()
    executor = make_executor(
        module, memory=memory, max_steps=max_steps, backend=backend)
    executor.register_intrinsics({DETECT_INTRINSIC: _swift_detect})
    if intrinsics:
        executor.register_intrinsics(intrinsics)
    result = executor.run(entry, list(args))
    final = {
        name: memory.read_global(name, gvar.size)
        for name, gvar in module.globals.items()
    }
    return ExecResult(result.value, final, result.steps)


def _values_equal(a: object, b: object) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    return a == b


def _state_diff(base: ExecResult, other: ExecResult) -> Optional[str]:
    """First observable difference between two executions, or None."""
    if not _values_equal(base.value, other.value):
        return f"return value {base.value!r} != {other.value!r}"
    for name in base.globals:
        if name not in other.globals:
            return f"global @{name} disappeared"
        if not outputs_equal(base.globals[name], other.globals[name]):
            for idx, (g, o) in enumerate(zip(base.globals[name], other.globals[name])):
                if not _values_equal(g, o):
                    return f"@{name}[{idx}]: {g!r} != {o!r}"
            return f"@{name}: length changed"
    return None


# -- the pass tables ---------------------------------------------------------
# CLEANUP_PASSES and PROTECTIONS are re-exported verbatim from
# repro.pipeline.passes — the process-wide single source of truth for
# named passes.  O1 below resolves its pipeline stages through those
# tables, so a scheme registered there is automatically fuzzable here
# (and tests that monkeypatch a broken pass into the shared dict hit
# every consumer at once).


# -- O1: pipeline equivalence -------------------------------------------------
def check_pipeline(
    module: Module,
    pipeline: Sequence[str],
    roundtrip: bool = True,
) -> Tuple[List[Violation], Optional[Module], dict]:
    """Apply *pipeline* to a copy of *module* and compare observable state.

    Returns ``(violations, transformed_module, intrinsics)``; the
    transformed module is ``None`` when a stage failed structurally.
    """
    pipe = tuple(pipeline)
    violations: List[Violation] = []
    try:
        baseline = execute_module(module_copy(module))
    except TrapError as exc:
        return ([Violation("o1", f"baseline run trapped: {exc}", pipe)], None, {})

    work = module_copy(module)
    intrinsics: dict = {}
    for stage in pipe:
        fn = CLEANUP_PASSES.get(stage) or PROTECTIONS.get(stage)
        if fn is None:
            raise ValueError(f"unknown pipeline stage {stage!r}")
        try:
            produced = fn(work)
        except Exception as exc:  # a crashing pass is an oracle failure
            violations.append(Violation(
                "o1", f"pass {stage!r} raised {type(exc).__name__}: {exc}", pipe))
            return (violations, None, {})
        if isinstance(produced, dict):
            intrinsics.update(produced)
        try:
            verify_module(work)
        except VerificationError as exc:
            first = str(exc).splitlines()[1].strip() if "\n" in str(exc) else str(exc)
            violations.append(Violation(
                "o1", f"verifier rejected module after {stage!r}: {first}", pipe))
            return (violations, None, {})
        if roundtrip:
            violations.extend(check_roundtrip(work, context=f"after {stage!r}"))

    try:
        transformed = execute_module(work, intrinsics)
    except FaultDetectedError:
        violations.append(Violation(
            "o1", "fault-free run of protected module tripped a checker", pipe))
        return (violations, work, intrinsics)
    except TrapError as exc:
        violations.append(Violation(
            "o1", f"transformed module trapped: {type(exc).__name__}: {exc}", pipe))
        return (violations, work, intrinsics)

    diff = _state_diff(baseline, transformed)
    if diff is not None:
        violations.append(Violation("o1", f"output diverged: {diff}", pipe))
    return (violations, work, intrinsics)


# -- O2: print -> parse -> print fixpoint ------------------------------------
def check_roundtrip(module: Module, context: str = "") -> List[Violation]:
    """The textual form must be a fixpoint of print∘parse."""
    suffix = f" ({context})" if context else ""
    text = format_module(module)
    try:
        reparsed = parse_module(text)
    except ParseError as exc:
        return [Violation("o2", f"printed module failed to parse{suffix}: {exc}")]
    try:
        verify_module(reparsed)
    except VerificationError as exc:
        first = str(exc).splitlines()[1].strip() if "\n" in str(exc) else str(exc)
        return [Violation("o2", f"reparsed module failed verification{suffix}: {first}")]
    text2 = format_module(reparsed)
    if text2 != text:
        for line1, line2 in zip(text.splitlines(), text2.splitlines()):
            if line1 != line2:
                return [Violation(
                    "o2", f"print/parse not a fixpoint{suffix}: "
                          f"{line1!r} became {line2!r}")]
        return [Violation("o2", f"print/parse changed line count{suffix}")]
    return []


# -- O4: backend equivalence --------------------------------------------------
def _observe_backend(
    module: Module,
    protection: Optional[str],
    backend: str,
    max_steps: int,
) -> tuple:
    """One clean run on *backend*, reduced to a comparable tuple.

    Each call works on a fresh copy and (when *protection* is set)
    re-applies the transform, so backends never share module objects or
    intrinsic runtime state (the RSkip predictor is stateful across
    invocations of one intrinsics table).
    """
    work = module_copy(module)
    intrinsics = PROTECTIONS[protection](work) if protection else {}
    memory = Memory()
    executor = make_executor(
        work, memory=memory, max_steps=max_steps, backend=backend)
    executor.register_intrinsics({DETECT_INTRINSIC: _swift_detect})
    if intrinsics:
        executor.register_intrinsics(intrinsics)
    try:
        result = executor.run("main", [])
    except TrapError as exc:
        return ("trap", type(exc).__name__, str(exc))
    finals = {
        name: memory.read_global(name, gvar.size)
        for name, gvar in work.globals.items()
    }
    return ("ok", result.value, result.steps, dict(result.counts), finals)


def check_backend_equivalence(
    module: Module,
    protection: Optional[str] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> List[Violation]:
    """O4: the compiled backend must be observationally identical to the
    reference interpreter on clean runs.

    Compares the plain program and, when *protection* is given, the
    protected program too: identical return value (NaN-aware), step
    count, per-opcode counts and final global memory on success;
    identical exception type and message on a trap.
    """
    violations: List[Violation] = []
    for prot in [None] + ([protection] if protection else []):
        pipe = (prot,) if prot else ()
        label = prot or "plain"
        ref = _observe_backend(module, prot, "ref", max_steps)
        comp = _observe_backend(module, prot, "compiled", max_steps)
        if ref[0] != comp[0]:

            def _show(obs):
                return (f"{obs[1]}: {obs[2]}" if obs[0] == "trap"
                        else f"value {obs[1]!r}")

            violations.append(Violation(
                "o4", f"[{label}] ref run {ref[0]} ({_show(ref)}) but "
                      f"compiled run {comp[0]} ({_show(comp)})", pipe))
            continue
        if ref[0] == "trap":
            if ref[1:] != comp[1:]:
                violations.append(Violation(
                    "o4", f"[{label}] trap mismatch: ref raised "
                          f"{ref[1]}({ref[2]!r}) but compiled raised "
                          f"{comp[1]}({comp[2]!r})", pipe))
            continue
        _, r_value, r_steps, r_counts, r_globals = ref
        _, c_value, c_steps, c_counts, c_globals = comp
        if not _values_equal(r_value, c_value):
            violations.append(Violation(
                "o4", f"[{label}] return value {r_value!r} != {c_value!r}",
                pipe))
        if r_steps != c_steps:
            violations.append(Violation(
                "o4", f"[{label}] step count {r_steps} != {c_steps}", pipe))
        if r_counts != c_counts:
            diffs = sorted(
                f"{op.value}: {r_counts.get(op, 0)} != {c_counts.get(op, 0)}"
                for op in set(r_counts) | set(c_counts)
                if r_counts.get(op, 0) != c_counts.get(op, 0)
            )
            violations.append(Violation(
                "o4", f"[{label}] opcode counts diverged: "
                      + "; ".join(diffs[:4]), pipe))
        for name in r_globals:
            if not outputs_equal(r_globals[name], c_globals.get(name, [])):
                for idx, (g, o) in enumerate(
                        zip(r_globals[name], c_globals.get(name, []))):
                    if not _values_equal(g, o):
                        violations.append(Violation(
                            "o4", f"[{label}] @{name}[{idx}]: "
                                  f"{g!r} != {o!r}", pipe))
                        break
                else:
                    violations.append(Violation(
                        "o4", f"[{label}] @{name}: contents diverged", pipe))
                break
    return violations


# -- O5: batch-lane equivalence ----------------------------------------------
def _observe_ref_trial(
    module: Module,
    protection: Optional[str],
    plan: Optional[FaultPlan],
    region: Region,
    max_steps: int,
) -> tuple:
    """One (possibly faulted) reference-interpreter trial, reduced to a
    comparable tuple.  Fresh module copy and intrinsics per call, so
    stateful protection runtimes stay per-trial."""
    work = module_copy(module)
    intrinsics = PROTECTIONS[protection](work) if protection else {}
    memory = Memory()
    interp = Interpreter(
        work, memory=memory, max_steps=max_steps,
        fault_plan=plan, fault_region=region)
    interp.register_intrinsics({DETECT_INTRINSIC: _swift_detect})
    if intrinsics:
        interp.register_intrinsics(intrinsics)
    trap = None
    detected = False
    value = None
    try:
        value = interp.run("main", []).value
    except FaultDetectedError:
        detected = True
    except SegfaultError:
        trap = "segfault"
    except HangError:
        trap = "hang"
    except (CoreDumpError, TrapError):
        trap = "coredump"
    except (OverflowError, MemoryError, RecursionError):
        trap = "coredump"
    finals = {}
    if trap is None:
        finals = {name: memory.read_global(name, gvar.size)
                  for name, gvar in work.globals.items()}
    return (trap, detected, interp.steps, interp.region_steps, value, finals)


def check_batch_equivalence(
    module: Module,
    protection: Optional[str] = None,
    lanes: int = DEFAULT_BATCH_LANES,
    seed: int = 0,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> List[Violation]:
    """O5: the lane-vectorized batch engine must be observationally
    identical, lane for lane, to per-trial reference execution.

    Draws one fault plan per lane (over a region spanning the whole
    program), runs every plan once on the reference interpreter and once
    as a lane of a single batched run, and compares each lane's outcome:
    trap kind, detection flag, step and region-step counts, return value
    and final global memory.  Checked on the plain program and, when
    *protection* is given, on the protected program (per-lane module
    copies keep stateful intrinsic runtimes per-trial on both sides).
    """
    from ..runtime.batch import BatchExecutor

    violations: List[Violation] = []
    for prot in [None] + ([protection] if protection else []):
        pipe = (prot,) if prot else ()
        label = prot or "plain"
        region = Region(funcs=tuple(module.functions))
        # clean counting run: region steps for plan drawing, and a hang
        # budget so faulted lanes cannot run to the full fuzz limit
        _, _, clean_steps, region_steps, _, _ = _observe_ref_trial(
            module, prot, None, region, max_steps)
        budget = min(max_steps, max(clean_steps * 8, 10_000))
        plans: List[Optional[FaultPlan]] = []
        for lane in range(lanes):
            if region_steps > 0:
                rng = random.Random(stable_seed(seed, "difftest.batch", lane))
                plans.append(random_plan(rng, region_steps))
            else:
                plans.append(None)

        ref_rows = [
            _observe_ref_trial(module, prot, plan, region, budget)
            for plan in plans
        ]

        works = [module_copy(module) for _ in range(lanes)]
        tables = []
        for work in works:
            table = {DETECT_INTRINSIC: _swift_detect}
            if prot:
                table.update(PROTECTIONS[prot](work))
            tables.append(table)
        batch_module = works[0]
        template = Memory()
        template.load_globals(batch_module)
        executor = BatchExecutor(
            batch_module, template, lanes, fault_plans=plans,
            fault_region=region, max_steps=budget, intrinsics=tables)
        results = executor.run("main", [])

        for lane in range(lanes):
            trap_r, det_r, steps_r, rsteps_r, val_r, fin_r = ref_rows[lane]
            res = results[lane]
            got = (res.trap, res.detected, res.steps, res.region_steps)
            want = (trap_r, det_r, steps_r, rsteps_r)
            if got != want:
                violations.append(Violation(
                    "o5", f"[{label}] lane {lane}: ref (trap={trap_r}, "
                          f"detected={det_r}, steps={steps_r}, "
                          f"region_steps={rsteps_r}) but batch "
                          f"(trap={res.trap}, detected={res.detected}, "
                          f"steps={res.steps}, "
                          f"region_steps={res.region_steps})", pipe))
                continue
            if trap_r is not None:
                continue
            if not _values_equal(val_r, res.value):
                violations.append(Violation(
                    "o5", f"[{label}] lane {lane}: return value "
                          f"{val_r!r} != {res.value!r}", pipe))
                continue
            lane_mem = executor.lane_memory(lane)
            for name, gvar in batch_module.globals.items():
                if not outputs_equal(
                        fin_r.get(name, []),
                        lane_mem.read_global(name, gvar.size)):
                    violations.append(Violation(
                        "o5", f"[{label}] lane {lane}: @{name}: contents "
                              f"diverged from the reference trial", pipe))
                    break
    return violations


# -- O6: exhaustive single-skip model checking --------------------------------

#: Exhaustive-enumeration ceiling: a program whose region executes more
#: dynamic instructions than this gets stride-sampled instead, and the
#: resulting map is explicitly marked non-exhaustive.
SKIPMAP_SITE_CAP = 400

#: Duplication schemes whose shadow stream carries a provable skip
#: contract: the master stream is intact, so a skipped shadow instruction
#: must be caught by the checker (swift) or voted away (swift-r) — it can
#: trap early or hang, but never end as silent corruption.
_SKIP_CONTRACT_SCHEMES = ("swift", "swift-r")


@dataclass
class SkipSite:
    """One enumerated dynamic instruction and its skip outcome."""

    step: int            # region-step index (== ``FaultPlan.step``)
    opcode: str          # mnemonic of the instruction the skip drops
    dest: Optional[str]  # destination register name, if any
    outcome: str         # "detected" | "masked" | "sdc" | "trap" | "hang"


@dataclass
class SkipMap:
    """Per-scheme single-skip (or burst) vulnerability map of a program."""

    protection: Optional[str]
    total_sites: int   # counting pre-run total (every in-region instruction)
    exhaustive: bool   # True when every site was enumerated
    burst_len: int     # 1 for single skips, >1 for burst maps
    sites: List[SkipSite] = field(default_factory=list)

    def tally(self) -> Dict[str, int]:
        t: Dict[str, int] = {}
        for s in self.sites:
            t[s.outcome] = t.get(s.outcome, 0) + 1
        return t


def _count_skip_sites(
    module: Module,
    protection: Optional[str],
    region: Region,
    max_steps: int,
) -> tuple:
    """Counting pre-run: the clean observation tuple plus one
    ``(opcode index, dest name)`` entry per in-region dynamic
    instruction — entry *i* names exactly what a plan with ``step == i``
    will hit."""
    work = module_copy(module)
    intrinsics = PROTECTIONS[protection](work) if protection else {}
    memory = Memory()
    interp = Interpreter(
        work, memory=memory, max_steps=max_steps, fault_region=region)
    interp.register_intrinsics({DETECT_INTRINSIC: _swift_detect})
    if intrinsics:
        interp.register_intrinsics(intrinsics)
    trace: List[Tuple[int, Optional[str]]] = []
    interp.site_trace = trace
    value = interp.run("main", []).value
    finals = {name: memory.read_global(name, gvar.size)
              for name, gvar in work.globals.items()}
    golden = (None, False, interp.steps, interp.region_steps, value, finals)
    return golden, trace


def _classify_outcome(obs: tuple, golden: tuple) -> str:
    """Reduce an observation tuple to the campaign-style outcome label."""
    trap, detected, _steps, _rsteps, value, finals = obs
    if detected:
        return "detected"
    if trap == "hang":
        return "hang"
    if trap is not None:
        return "trap"
    if not _values_equal(golden[4], value):
        return "sdc"
    for name, cells in golden[5].items():
        if not outputs_equal(cells, finals.get(name, [])):
            return "sdc"
    return "masked"


def _enumerate_sites(total: int, site_cap: int) -> Tuple[List[int], bool]:
    """Every site when the program is small enough, else an even stride
    sample — with the exhaustiveness of the result made explicit."""
    if total <= site_cap:
        return list(range(total)), True
    stride = -(-total // site_cap)
    return list(range(0, total, stride)), False


def skip_site_map(
    module: Module,
    protection: Optional[str] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    site_cap: int = SKIPMAP_SITE_CAP,
    burst_len: int = 1,
) -> SkipMap:
    """Enumerate skip-injection sites on the reference interpreter and
    classify each one against the clean run.  The model-checking half of
    O6, reusable on its own (``repro skipmap`` and the vulnerability
    table build on it)."""
    region = Region(funcs=tuple(module.functions))
    golden, trace = _count_skip_sites(module, protection, region, max_steps)
    budget = min(max_steps, max(golden[2] * 8, 10_000))
    site_steps, exhaustive = _enumerate_sites(len(trace), site_cap)
    kind = "skip" if burst_len == 1 else "skip-burst"
    smap = SkipMap(protection, len(trace), exhaustive, burst_len)
    for s in site_steps:
        plan = FaultPlan(step=s, kind=kind, burst_len=burst_len)
        obs = _observe_ref_trial(module, protection, plan, region, budget)
        code, dest = trace[s]
        smap.sites.append(SkipSite(
            s, OPCODES[code].value, dest, _classify_outcome(obs, golden)))
    return smap


def check_skip_exhaustive(
    module: Module,
    protection: Optional[str] = None,
    seed: int = 0,
    max_steps: int = DEFAULT_MAX_STEPS,
    site_cap: int = SKIPMAP_SITE_CAP,
    burst: bool = False,
) -> List[Violation]:
    """O6: exhaustive single-skip model checking.

    For the plain program and (when given) the protected program:

    * a counting pre-run names every in-region dynamic instruction, and
      its site count must equal the clean run's region-step total — the
      enumeration provably covers the whole dynamic stream;
    * every site is injected once as a ``skip`` plan, per-trial on the
      reference interpreter and again as one lane of a single batched
      slab, and each lane's (trap kind, detection flag, step counts,
      return value, final globals) must be byte-identical;
    * under the duplication schemes (swift, swift-r) a skip whose victim
      is a *shadow* instruction must never classify as silent
      corruption — the master stream is intact, so the checker detects
      it, the vote masks it, or a poisoned shadow traps/hangs first.

    With *burst* set, every 2-instruction burst is checked the same way
    (reference==batch only: a burst can straddle master and checker
    instructions, so the shadow contract holds only for single skips).
    Programs larger than *site_cap* are stride-sampled.
    """
    del seed  # enumeration is deterministic; kept for runner uniformity
    from ..runtime.batch import BatchExecutor

    violations: List[Violation] = []
    for prot in [None] + ([protection] if protection else []):
        pipe = (prot,) if prot else ()
        label = prot or "plain"
        region = Region(funcs=tuple(module.functions))
        golden, trace = _count_skip_sites(module, prot, region, max_steps)
        if golden[3] != len(trace):
            violations.append(Violation(
                "o6", f"[{label}] counting pre-run named {len(trace)} "
                      f"sites but the clean run executed {golden[3]} "
                      f"region steps", pipe))
            continue
        budget = min(max_steps, max(golden[2] * 8, 10_000))
        site_steps, _exhaustive = _enumerate_sites(len(trace), site_cap)
        if not site_steps:
            continue
        for blen in ([1, 2] if burst else [1]):
            kind = "skip" if blen == 1 else "skip-burst"
            plans = [FaultPlan(step=s, kind=kind, burst_len=blen)
                     for s in site_steps]
            ref_rows = [
                _observe_ref_trial(module, prot, plan, region, budget)
                for plan in plans
            ]

            lanes = len(plans)
            works = [module_copy(module) for _ in range(lanes)]
            tables = []
            for work in works:
                table = {DETECT_INTRINSIC: _swift_detect}
                if prot:
                    table.update(PROTECTIONS[prot](work))
                tables.append(table)
            batch_module = works[0]
            template = Memory()
            template.load_globals(batch_module)
            executor = BatchExecutor(
                batch_module, template, lanes, fault_plans=plans,
                fault_region=region, max_steps=budget, intrinsics=tables)
            results = executor.run("main", [])

            for i, s in enumerate(site_steps):
                trap_r, det_r, steps_r, rsteps_r, val_r, fin_r = ref_rows[i]
                res = results[i]
                got = (res.trap, res.detected, res.steps, res.region_steps)
                want = (trap_r, det_r, steps_r, rsteps_r)
                where = f"[{label}] {kind}@{s}"
                if got != want:
                    violations.append(Violation(
                        "o6", f"{where}: ref (trap={trap_r}, "
                              f"detected={det_r}, steps={steps_r}, "
                              f"region_steps={rsteps_r}) but batch "
                              f"(trap={res.trap}, detected={res.detected}, "
                              f"steps={res.steps}, "
                              f"region_steps={res.region_steps})", pipe))
                    continue
                if trap_r is not None:
                    continue
                if not _values_equal(val_r, res.value):
                    violations.append(Violation(
                        "o6", f"{where}: return value "
                              f"{val_r!r} != {res.value!r}", pipe))
                    continue
                lane_mem = executor.lane_memory(i)
                for name, gvar in batch_module.globals.items():
                    if not outputs_equal(
                            fin_r.get(name, []),
                            lane_mem.read_global(name, gvar.size)):
                        violations.append(Violation(
                            "o6", f"{where}: @{name}: contents diverged "
                                  f"from the reference trial", pipe))
                        break

            if prot in _SKIP_CONTRACT_SCHEMES and blen == 1:
                for i, s in enumerate(site_steps):
                    code, dest = trace[s]
                    if dest is None or not _is_shadow(dest):
                        continue
                    outcome = _classify_outcome(ref_rows[i], golden)
                    if outcome == "sdc":
                        violations.append(Violation(
                            "o6",
                            f"[{label}] skipping shadow instruction "
                            f"{OPCODES[code].value} -> %{dest} at site {s} "
                            f"is silent corruption; the duplication "
                            f"contract requires detect/mask", pipe))
    return violations


# -- O3: fault metamorphic property ------------------------------------------
def _is_shadow(name: str) -> bool:
    return name.endswith(_SHADOW_SUFFIXES)


def o3_descriptor(protection: str):
    """The descriptor whose protocol O3 verifies for *protection* (any
    registry spelling), following ``verify_as`` redirection to the
    scheme's full-coverage point — REPLAY<n> re-executes only every
    *n*-th window, so its every-flip contract is provable at REPLAY1."""
    descriptor = get_scheme(protection)
    verify_as = descriptor.protocol.verify_as
    if verify_as and verify_as != descriptor.name:
        descriptor = get_scheme(verify_as)
    return descriptor


def _apply_o3(module: Module, descriptor) -> tuple:
    """Protect *module* in place per *descriptor* and return
    ``(intrinsics, application)`` — the application handle (when the
    family has one) lets the oracle reset stateful runtimes per trial."""
    pass_name = next(
        (p for p in descriptor.passes if p in PROTECTION_APPLIERS), None)
    if pass_name is None:
        raise ValueError(
            f"scheme {descriptor.name!r} has no protection pass to verify")
    config = None
    if descriptor.is_rskip:
        config = RSkipConfig().with_ar(descriptor.acceptable_range)
    ctx = ProtectContext(config=config, descriptor=descriptor)
    PROTECTION_APPLIERS[pass_name](module, ctx)
    return dict(ctx.intrinsics), ctx.application


class ShadowFlipInterpreter(Interpreter):
    """Interpreter whose injection targets only shadow-stream registers.

    The plan's ``pick`` selects among the live shadow slots of the whole
    frame stack at the chosen step; if none is live, the flip is absorbed
    (architectural masking), mirroring :meth:`Interpreter._inject`.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.flipped: Optional[str] = None

    def _inject(self, regs):
        plan = self.fault_plan
        self._fault_pending = False
        slots = [
            (frame, name)
            for frame in self._frames
            for name in sorted(frame)
            if _is_shadow(name)
        ]
        if not slots:
            return
        frame, name = slots[int(plan.pick * len(slots)) % len(slots)]
        frame[name] = flip_value(frame[name], plan.bit)
        self.flipped = name


class RegionFlipInterpreter(Interpreter):
    """Interpreter whose injection targets the time-redundant stream:
    live *float* registers inside protocol-region frames (the outlined
    loop bodies that both the main path and the re-execution run).

    Float slots only — integer registers carry loop counters and
    addresses, which re-execution validates indirectly (a corrupted
    address yields a corrupted value) but whose direct upset models
    machine faults outside the value-recompute contract.  With no region
    frame live at the chosen step the flip is absorbed (architectural
    masking), mirroring :class:`ShadowFlipInterpreter`.
    """

    def __init__(self, *args, region_funcs=(), **kwargs):
        super().__init__(*args, **kwargs)
        self.flipped: Optional[str] = None
        self._region_funcs = frozenset(region_funcs)

    def _inject(self, regs):
        plan = self.fault_plan
        self._fault_pending = False
        slots = [
            (frame, name)
            for frame, owner in zip(self._frames, self._frame_funcs)
            if owner in self._region_funcs
            for name in sorted(frame)
            if isinstance(frame[name], float)
        ]
        if not slots:
            return
        frame, name = slots[int(plan.pick * len(slots)) % len(slots)]
        frame[name] = flip_value(frame[name], plan.bit)
        self.flipped = name


def check_protection_coverage(module: Module, scheme: str) -> List[Violation]:
    """Static contract of the duplication transforms.

    Every function marked protected must (a) hold shadow registers if it
    holds replicable computation, and (b) guard its synchronization
    points: each store/cbr whose register operands have shadows must be
    preceded somewhere by an equality compare against the ``.sw1`` copy.
    """
    violations: List[Violation] = []
    for func in module.functions.values():
        if not func.attrs.get("protected"):
            continue
        shadows = {r for r in func.defined_regs() if _is_shadow(r)}
        replicable = sum(
            1 for instr in func.instructions()
            if instr.dest is not None and not _is_shadow(instr.dest.name)
            and instr.op not in (Opcode.CALL, Opcode.INTRIN, Opcode.LOAD, Opcode.ALLOC)
        )
        if replicable and not shadows:
            violations.append(Violation(
                "o3", f"@{func.name} is marked protected ({scheme}) but holds "
                      f"no shadow registers for {replicable} replicable instrs"))
            continue

        checked: set = set()
        for instr in func.instructions():
            if instr.op in (Opcode.ICMP, Opcode.FCMP) and instr.pred is CmpPred.EQ:
                if len(instr.args) == 2 and all(isinstance(a, Reg) for a in instr.args):
                    a, b = instr.args
                    if b.name == a.name + ".sw1":
                        checked.add(a.name)
        unguarded = []
        for instr in func.instructions():
            if instr.op not in (Opcode.STORE, Opcode.CBR):
                continue
            for reg in instr.uses():
                if _is_shadow(reg.name):
                    continue
                if reg.name + ".sw1" in {s for s in shadows}:
                    if reg.name not in checked:
                        unguarded.append((func.name, instr.op.value, reg.name))
        if unguarded:
            fname, op, reg = unguarded[0]
            violations.append(Violation(
                "o3", f"@{fname}: {len(unguarded)} unguarded sync operand(s) "
                      f"under {scheme}, e.g. %{reg} at a {op} is never "
                      f"compared against its shadow"))
    return violations


def _protected_region(module: Module) -> Region:
    return Region(funcs=set(module.functions))


def check_fault_metamorphic(
    module: Module,
    protection: str,
    samples: int = 12,
    seed: int = 0,
    prepared: Optional[Module] = None,
    intrinsics: Optional[dict] = None,
    stats: Optional[dict] = None,
    main_args: Sequence = (),
    memory_factory: Optional[Callable[[], Memory]] = None,
) -> List[Violation]:
    """Inject *samples* redundant-stream bit flips into a protected copy.

    The flip scope and the pass/fail contract both come from the
    scheme's registered :class:`~repro.pipeline.registry.Protocol`
    (via :func:`o3_descriptor`, which follows ``verify_as``
    redirection) — contract logic never names a scheme:

    * ``contract="detected-or-masked"`` (recovery ``abort``): every run
      ends detected or exactly golden;
    * ``contract="exactly-masked"`` (recovery ``vote``/``rollback``):
      every run is exactly golden, and an abort is itself a violation;
    * ``contract="none"``: vacuous, the check returns no violations.

    *stats*, if given, accumulates ``landed``/``detected`` counts so a
    caller can assert checker liveness across many programs —
    per-program zero detections is legitimate (a flip in a stale or
    already-validated slot is architecturally masked), an entire
    campaign without one is not.  The *prepared*/*intrinsics* override
    is for stateless schemes only (it carries no runtime handle to
    reset between trials).  *main_args*/*memory_factory* admit workload
    modules (argument-taking ``main``, initialized input memory) — the
    generated difftest corpus has no protocol target loops, so the
    protocol families' region contract is exercised on workloads.
    """
    descriptor = o3_descriptor(protection)
    proto = descriptor.protocol
    if proto.contract == "none" or proto.flip_scope == "none":
        return []
    violations: List[Violation] = []
    application = None
    if prepared is None:
        prepared = module_copy(module)
        intrinsics, application = _apply_o3(prepared, descriptor)
    intrinsics = intrinsics or {}

    if proto.flip_scope == "shadow":
        violations.extend(check_protection_coverage(prepared, protection))

    region = _protected_region(prepared)
    runtime = getattr(application, "runtime", None)
    if runtime is not None:
        runtime.reset()
    try:
        golden = execute_module(
            prepared, intrinsics, args=main_args,
            memory_factory=memory_factory)
    except TrapError as exc:
        violations.append(Violation(
            "o3", f"fault-free {protection} run trapped: {exc}", (protection,)))
        return violations
    region_steps = golden.steps
    max_steps = max(golden.steps * 8, 100_000)

    region_funcs = tuple(sorted(
        name for name, fn in prepared.functions.items()
        if fn.attrs.get(PROTOCOL_REGION_ATTR)))
    exact = proto.contract == "exactly-masked"
    scope = proto.flip_scope

    rng = random.Random(stable_seed(seed, "difftest.o3", protection, prepared.name))
    detections = 0
    landed = 0
    for trial in range(samples):
        plan = FaultPlan(
            step=rng.randrange(region_steps), kind="value",
            bit=rng.randrange(64), pick=rng.random(),
        )
        memory = memory_factory() if memory_factory is not None else Memory()
        if scope == "region":
            interp = RegionFlipInterpreter(
                prepared, memory=memory, max_steps=max_steps,
                fault_plan=plan, fault_region=region,
                region_funcs=region_funcs,
            )
        else:
            interp = ShadowFlipInterpreter(
                prepared, memory=memory, max_steps=max_steps,
                fault_plan=plan, fault_region=region,
            )
        interp.register_intrinsics({DETECT_INTRINSIC: _swift_detect})
        interp.register_intrinsics(intrinsics)
        if runtime is not None:
            runtime.reset()
        try:
            result = interp.run("main", list(main_args))
        except FaultDetectedError:
            detections += 1
            if exact:
                violations.append(Violation(
                    "o3", f"{protection} aborted on a {scope} flip it "
                          f"should have masked (trial {trial}, "
                          f"%{interp.flipped}, bit {plan.bit})",
                    (protection,)))
            continue
        except TrapError as exc:
            violations.append(Violation(
                "o3", f"{scope} flip crashed the {protection} run "
                      f"(trial {trial}, %{interp.flipped}): {exc}",
                (protection,)))
            continue
        if interp.flipped is not None:
            landed += 1
        observed = ExecResult(result.value, {
            name: memory.read_global(name, gvar.size)
            for name, gvar in prepared.globals.items()
        }, result.steps)
        diff = _state_diff(golden, observed)
        if diff is not None:
            violations.append(Violation(
                "o3", f"silent corruption under {protection} from a {scope} "
                      f"flip (trial {trial}, %{interp.flipped}, "
                      f"bit {plan.bit}): {diff}",
                (protection,)))
    if stats is not None:
        stats["landed"] = stats.get("landed", 0) + landed
        stats["detected"] = stats.get("detected", 0) + detections
    return violations


# -- O7: incremental campaign equivalence -------------------------------------

#: Stateless protections O7 campaigns under.  RSkip's compat transform
#: carries runtime state in intrinsic closures with no reset handle, so
#: per-trial isolation — which stratified tallies rely on — cannot be
#: guaranteed through this path; the campaign-level RSkip coverage lives
#: in the eval tests, which prepare through the full pipeline.
_INCREMENTAL_PROTECTIONS = ("swift", "swift-r")


class ModuleWorkload:
    """Adapter campaigning a self-contained module (constant loop bounds,
    inputs in global initializers, argument-free ``main``) as a
    :class:`~repro.workloads.base.Workload`."""

    domain = "difftest"
    description = "generated module"
    main = "main"
    memory_size = 1 << 16

    def __init__(self, module: Module):
        self._text = format_module(module)
        self.name = module.name
        out = module.globals.get("out")
        self._out = ("out", out.size if out is not None else 0)

    def build(self) -> Module:
        return parse_module(self._text)

    def make_input(self, rng=None, scale: float = 1.0):
        from ..workloads.base import WorkloadInput

        return WorkloadInput(
            arrays={}, args=[], output=self._out, loop_output=self._out)

    def test_inputs(self, count: int = 1, seed: int = 0, scale: float = 1.0):
        return [self.make_input() for _ in range(count)]

    def fresh_memory(self, module: Module, inp):
        from ..runtime.memory import Memory

        memory = Memory(self.memory_size)
        memory.load_globals(module)
        inp.apply(memory)
        return memory


def _observe_stratified(
    module: Module,
    protection: Optional[str],
    scheme: str,
    trials: int,
    seed: int,
    store,
    reuse: bool,
    backend: str,
):
    """One stratified campaign over *module*, protected in place like the
    other oracles do (fresh copy + intrinsics per run)."""
    from ..eval.incremental import run_campaign_stratified
    from ..eval.schemes import PreparedProgram

    work = module_copy(module)
    intrinsics = {DETECT_INTRINSIC: _swift_detect}
    if protection:
        intrinsics.update(PROTECTIONS[protection](work))
    prepared = PreparedProgram(
        scheme, work, intrinsics, None, [], "main",
        region_override=Region(funcs=tuple(work.functions)))
    workload = ModuleWorkload(module)
    return run_campaign_stratified(
        workload, scheme, trials, seed=seed, inp=workload.make_input(),
        prepared=prepared, store=store, reuse=reuse, backend=backend)


def check_incremental_equivalence(
    module: Module,
    protection: Optional[str] = None,
    trials: int = 24,
    seed: int = 0,
) -> List[Violation]:
    """O7: incremental campaigns must compose exactly.

    Runs a stratified campaign from scratch (populating a per-section
    store), mutates one function (a step-count-preserving semantic edit),
    then runs the mutated program both incrementally (reusing stored
    section tallies) and from scratch — the two must tally byte-
    identically, with the store serving exactly the sections whose
    fingerprint × step count × allocation survived the edit.  Checked on
    both the reference and batch backends.

    Sound on programs whose sections are genuinely independent — the
    generator's ``phased`` shape is built as that witness; on arbitrary
    programs cross-section data flow makes reuse an approximation, which
    is why incremental mode is opt-in for real workloads.
    """
    import os
    import tempfile

    from ..eval.incremental import SectionStore
    from ..pipeline.registry import canonical_scheme
    from .generator import _MUTATION_SWAPS, mutate_function

    prot = protection if protection in _INCREMENTAL_PROTECTIONS else None
    scheme = canonical_scheme(prot or "unsafe")
    pipe = (prot,) if prot else ()
    label = prot or "plain"

    victim = None
    for name in sorted(module.functions):
        if name == "main":
            continue
        func = module.get_function(name)
        if any(instr.op in _MUTATION_SWAPS
               for lab in func.block_order()
               for instr in func.blocks[lab].instrs):
            victim = name
            break
    if victim is None:
        victim = "main"
    try:
        mutated = mutate_function(module, victim, seed)
    except ValueError:
        return []  # nothing mutable anywhere: vacuous for this program

    violations: List[Violation] = []
    for backend in ("ref", "batch"):
        with tempfile.TemporaryDirectory(prefix="repro-o7-") as tmp:
            store = SectionStore(directory=os.path.join(tmp, "campaigns"))
            base = _observe_stratified(
                module, prot, scheme, trials, seed, store, False, backend)
            scratch = _observe_stratified(
                mutated, prot, scheme, trials, seed, None, False, backend)
            inc = _observe_stratified(
                mutated, prot, scheme, trials, seed, store, True, backend)

            if inc.result.to_dict() != scratch.result.to_dict():
                violations.append(Violation(
                    "o7", f"[{label}/{backend}] incremental tallies after "
                          f"mutating @{victim} differ from stratified "
                          f"from-scratch tallies", pipe))
                continue
            base_keys = {
                (r.fingerprint, r.step_count, r.trials)
                for r in base.sections if r.trials > 0
            }
            expected = sum(
                1 for r in inc.sections
                if r.trials > 0
                and (r.fingerprint, r.step_count, r.trials) in base_keys)
            if inc.reused_sections != expected:
                violations.append(Violation(
                    "o7", f"[{label}/{backend}] store served "
                          f"{inc.reused_sections} sections but "
                          f"{expected} carried unchanged keys", pipe))
            if expected == 0 and victim != "main" and len(module.functions) > 2:
                violations.append(Violation(
                    "o7", f"[{label}/{backend}] mutating @{victim} left no "
                          f"reusable section — incremental reuse is inert "
                          f"on a multi-function program", pipe))
    return violations
