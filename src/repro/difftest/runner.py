"""Sharded differential-test driver behind ``repro difftest``.

Splits the program stream ``[0, n)`` into index chunks dispatched through
:func:`repro.eval.campaign_engine.map_chunks` — the same process-pool
backbone the SFI campaigns use.  Every per-program decision (shape,
pipeline, protection scheme, fault plans) derives from ``stable_seed``
of the program index, and the merged report is assembled in index order,
so the output is byte-identical for any ``--jobs``.
"""
from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..eval.campaign_engine import map_chunks
from ..ir.printer import format_module
from ..workloads.base import stable_seed
from .generator import generate, generate_phased
from .oracles import (
    CLEANUP_PASSES,
    PROTECTIONS,
    Violation,
    check_backend_equivalence,
    check_batch_equivalence,
    check_fault_metamorphic,
    check_incremental_equivalence,
    check_pipeline,
    check_roundtrip,
    check_skip_exhaustive,
)
from .shrink import instruction_count, shrink_module

#: Program indices per work unit.
DEFAULT_CHUNK = 20

#: Shadow-flip trials per O3 check.
DEFAULT_FAULT_SAMPLES = 12

ORACLES = ("all", "o1", "o2", "o3", "o4", "o5", "o6", "o7")

_CLEANUP_NAMES = tuple(sorted(CLEANUP_PASSES))
_PROTECTION_NAMES = tuple(sorted(PROTECTIONS))


@dataclass
class IndexRecord:
    """Everything the runner decided and observed for one program index."""

    index: int
    shape: str
    pipeline: Tuple[str, ...]
    protection: Optional[str]
    violations: List[Violation] = field(default_factory=list)
    #: shadow flips that landed / were detected during the O3 check
    o3_landed: int = 0
    o3_detected: int = 0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "shape": self.shape,
            "pipeline": list(self.pipeline),
            "protection": self.protection,
            "violations": [v.to_dict() for v in self.violations],
            "o3_landed": self.o3_landed,
            "o3_detected": self.o3_detected,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IndexRecord":
        return cls(
            data["index"], data["shape"], tuple(data["pipeline"]),
            data["protection"],
            [Violation.from_dict(v) for v in data["violations"]],
            data["o3_landed"], data["o3_detected"],
        )


@dataclass
class DifftestReport:
    seed: int
    n: int
    oracle: str
    records: List[IndexRecord]
    shrunk_files: List[str] = field(default_factory=list)
    #: campaign-level findings (e.g. swift never detecting anything)
    extra_violations: List[Violation] = field(default_factory=list)

    @property
    def violations(self) -> List[Violation]:
        return [v for r in self.records for v in r.violations] + self.extra_violations

    @property
    def swift_liveness(self) -> Tuple[int, int]:
        """(detected, landed) shadow-flip totals over swift-protected runs."""
        landed = sum(r.o3_landed for r in self.records if r.protection == "swift")
        detected = sum(r.o3_detected for r in self.records if r.protection == "swift")
        return detected, landed

    @property
    def failing(self) -> List[IndexRecord]:
        return [r for r in self.records if r.violations]


def plan_index(seed: int, index: int) -> Tuple[Tuple[str, ...], str]:
    """The (pipeline, protection) drawn for a program index.

    Deterministic in ``(seed, index)`` alone, so any process — and the
    shrinker replaying a failure — reconstructs the same plan.
    """
    rng = random.Random(stable_seed(seed, "difftest.plan", index))
    stages = [rng.choice(_CLEANUP_NAMES)
              for _ in range(rng.randint(1, 3))]
    protection = _PROTECTION_NAMES[rng.randrange(len(_PROTECTION_NAMES))]
    if rng.random() < 0.5:
        stages.append(protection)
    return tuple(stages), protection


def check_index(
    seed: int,
    index: int,
    oracle: str = "all",
    fault_samples: int = DEFAULT_FAULT_SAMPLES,
) -> IndexRecord:
    """Generate program *index* and run the selected oracles over it."""
    program = generate(seed, index)
    pipeline, protection = plan_index(seed, index)
    record = IndexRecord(index, program.shape, pipeline, protection)
    module = program.module
    if oracle in ("all", "o2"):
        record.violations.extend(check_roundtrip(module, context="generated"))
    if oracle in ("all", "o1"):
        violations, _, _ = check_pipeline(module, pipeline, roundtrip=oracle == "all")
        record.violations.extend(violations)
    if oracle in ("all", "o3"):
        stats: dict = {}
        record.violations.extend(check_fault_metamorphic(
            module, protection, samples=fault_samples,
            seed=stable_seed(seed, "difftest.faults", index),
            stats=stats,
        ))
        record.o3_landed = stats.get("landed", 0)
        record.o3_detected = stats.get("detected", 0)
    if oracle in ("all", "o4"):
        record.violations.extend(check_backend_equivalence(module, protection))
    if oracle in ("all", "o5"):
        record.violations.extend(check_batch_equivalence(
            module, protection,
            seed=stable_seed(seed, "difftest.batch", index)))
    if oracle in ("all", "o6"):
        record.violations.extend(check_skip_exhaustive(
            module, protection,
            seed=stable_seed(seed, "difftest.skip", index)))
    if oracle in ("all", "o7"):
        # O7 needs phase-isolated programs (independent sections); the
        # phased stream is drawn separately so the default (seed, index)
        # programs stay pinned
        record.violations.extend(check_incremental_equivalence(
            generate_phased(seed, index).module, protection,
            seed=stable_seed(seed, "difftest.incremental", index)))
    return record


def _run_index_chunk(
    seed: int,
    indices: Sequence[int],
    oracle: str,
    fault_samples: int,
) -> List[dict]:
    """Process-pool work unit: one chunk of program indices."""
    return [
        check_index(seed, index, oracle, fault_samples).to_dict()
        for index in indices
    ]


def failure_predicate(record: IndexRecord, seed: int, fault_samples: int):
    """A shrink predicate replaying exactly this record's failing oracles."""
    failing = {v.oracle for v in record.violations}

    def predicate(module) -> bool:
        found: List[Violation] = []
        if "o2" in failing:
            found.extend(check_roundtrip(module))
        if "o1" in failing:
            found.extend(check_pipeline(module, record.pipeline, roundtrip=False)[0])
        if "o3" in failing:
            found.extend(check_fault_metamorphic(
                module, record.protection, samples=fault_samples,
                seed=stable_seed(seed, "difftest.faults", record.index),
            ))
        if "o4" in failing:
            found.extend(check_backend_equivalence(module, record.protection))
        if "o5" in failing:
            found.extend(check_batch_equivalence(
                module, record.protection,
                seed=stable_seed(seed, "difftest.batch", record.index)))
        if "o6" in failing:
            found.extend(check_skip_exhaustive(
                module, record.protection,
                seed=stable_seed(seed, "difftest.skip", record.index)))
        if "o7" in failing:
            found.extend(check_incremental_equivalence(
                module, record.protection,
                seed=stable_seed(seed, "difftest.incremental", record.index)))
        return {v.oracle for v in found} >= failing

    return predicate


def shrink_failure(
    record: IndexRecord,
    seed: int,
    fault_samples: int = DEFAULT_FAULT_SAMPLES,
):
    """Minimize the program behind a failing record; returns the module."""
    if any(v.oracle == "o7" for v in record.violations):
        # o7 checks the phased stream's program, not the default one
        module = generate_phased(seed, record.index).module
    else:
        module = generate(seed, record.index).module
    predicate = failure_predicate(record, seed, fault_samples)
    return shrink_module(module, predicate)


def render_corpus_entry(record: IndexRecord, seed: int, module) -> str:
    """A self-contained ``.ir`` corpus file with a provenance header."""
    lines = [
        f"; difftest counterexample: seed={seed} index={record.index} "
        f"shape={record.shape}",
        f"; pipeline: {' -> '.join(record.pipeline) or '(none)'}   "
        f"protection: {record.protection}",
    ]
    for violation in record.violations:
        lines.append(f"; [{violation.oracle}] {violation.detail}")
    lines.append(f"; shrunk to {instruction_count(module)} instructions")
    return "\n".join(lines) + "\n" + format_module(module)


def run_difftest(
    seed: int = 0,
    n: int = 100,
    oracle: str = "all",
    jobs: int = 1,
    fault_samples: int = DEFAULT_FAULT_SAMPLES,
    shrink: bool = False,
    corpus_dir: Optional[str] = None,
    chunk: int = DEFAULT_CHUNK,
) -> DifftestReport:
    """Check programs ``[0, n)`` of the stream rooted at *seed*.

    With ``shrink=True`` every failing program is delta-minimized and,
    when *corpus_dir* is set, written there as a commented ``.ir`` file
    ready for the corpus regression test to replay.
    """
    if oracle not in ORACLES:
        raise ValueError(f"unknown oracle {oracle!r}; choose from {ORACLES}")
    if n <= 0:
        raise ValueError("n must be positive")
    chunk = max(1, int(chunk))
    chunks = [
        (seed, tuple(range(start, min(start + chunk, n))), oracle, fault_samples)
        for start in range(0, n, chunk)
    ]
    raw = map_chunks(_run_index_chunk, chunks, jobs=jobs)
    records = sorted(
        (IndexRecord.from_dict(d) for part in raw for d in part),
        key=lambda r: r.index,
    )
    report = DifftestReport(seed, n, oracle, records)

    if oracle in ("all", "o3"):
        detected, landed = report.swift_liveness
        if landed >= 64 and detected == 0:
            report.extra_violations.append(Violation(
                "o3", f"swift checkers never fired across {landed} landed "
                      f"shadow flips campaign-wide — detection machinery "
                      f"looks inert", ("swift",)))

    if shrink and report.failing:
        import os

        for record in report.failing:
            module = shrink_failure(record, seed, fault_samples)
            if corpus_dir is None:
                continue
            os.makedirs(corpus_dir, exist_ok=True)
            path = os.path.join(corpus_dir, f"fail_s{seed}_i{record.index}.ir")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(render_corpus_entry(record, seed, module))
            report.shrunk_files.append(path)
    return report


def render_report(report: DifftestReport) -> str:
    """Deterministic text summary (no timing — that goes to stderr)."""
    shapes: dict = {}
    oracles_hit: dict = {}
    protected_pipelines = 0
    for record in report.records:
        shapes[record.shape] = shapes.get(record.shape, 0) + 1
        if record.pipeline and record.pipeline[-1] in PROTECTIONS:
            protected_pipelines += 1
        for violation in record.violations:
            oracles_hit[violation.oracle] = oracles_hit.get(violation.oracle, 0) + 1

    lines = [
        f"difftest: seed={report.seed} n={report.n} oracle={report.oracle}",
        "shapes: " + " ".join(
            f"{shape}={shapes.get(shape, 0)}"
            for shape in sorted(shapes) or ["(none)"]
        ),
        f"pipelines ending in a protection: {protected_pipelines}/{report.n}",
    ]
    if report.oracle in ("all", "o3"):
        detected, landed = report.swift_liveness
        lines.append(f"swift shadow flips detected: {detected}/{landed} landed")
    lines.append(f"violations: {len(report.violations)}")
    for record in report.failing:
        for violation in record.violations:
            pipe = ",".join(violation.pipeline) or ",".join(record.pipeline)
            lines.append(
                f"  [{violation.oracle}] index={record.index} "
                f"shape={record.shape} pipeline={pipe}: {violation.detail}"
            )
    for violation in report.extra_violations:
        pipe = ",".join(violation.pipeline)
        lines.append(f"  [{violation.oracle}] campaign pipeline={pipe}: "
                     f"{violation.detail}")
    for path in report.shrunk_files:
        lines.append(f"  shrunk counterexample: {path}")
    return "\n".join(lines)
