"""Delta-debugging shrinker for failing difftest modules.

Given a module and a predicate "this module still exhibits the failure",
:func:`shrink_module` greedily removes structure — whole functions,
globals, basic blocks, conditional branches (collapsed to one arm),
contiguous instruction runs — re-checking the predicate after every
candidate edit and keeping only edits that preserve the failure.  The
loop runs to a fixpoint, so the result is 1-minimal with respect to the
edit set: no single remaining function, global, block or instruction can
be dropped without losing the failure.

The predicate receives an independent copy, so it may freely transform
or execute its argument; any exception it raises counts as "failure
gone" (structurally broken candidates are rejected, not propagated).
"""
from __future__ import annotations

from typing import Callable, List

from ..ir.function import Function
from ..ir.instructions import Instr, Opcode
from ..ir.module import Module
from ..ir.values import Reg

Predicate = Callable[[Module], bool]


def instruction_count(module: Module) -> int:
    """Total static instruction count across all functions."""
    return sum(func.size() for func in module.functions.values())


def _copy_module(module: Module) -> Module:
    """Structural deep copy preserving attrs and the register counters."""
    out = Module(module.name)
    for gvar in module.globals.values():
        out.add_global(gvar.name, gvar.size, gvar.elem_ty,
                       list(gvar.init) if gvar.init is not None else None)
    for func in module.functions.values():
        new = Function(func.name, list(func.params), func.ret_type)
        new.attrs.update(func.attrs)
        new._reg_counter = func._reg_counter
        new._label_counter = func._label_counter
        for label in func.block_order():
            block = new.add_block(label)
            for instr in func.blocks[label].instrs:
                block.append(instr.copy())
        out.add_function(new)
    return out


def _safe(predicate: Predicate):
    def check(module: Module) -> bool:
        try:
            return bool(predicate(_copy_module(module)))
        except Exception:
            return False
    return check


def _drop_functions(module: Module, still_fails) -> bool:
    changed = False
    for name in list(module.functions):
        if name == "main" or name not in module.functions:
            continue
        victim = module.functions.pop(name)
        if still_fails(module):
            changed = True
        else:
            module.functions[name] = victim
    return changed


def _drop_globals(module: Module, still_fails) -> bool:
    changed = False
    for name in list(module.globals):
        victim = module.globals.pop(name)
        if still_fails(module):
            changed = True
        else:
            module.globals[name] = victim
    return changed


def _drop_blocks(module: Module, still_fails) -> bool:
    """Remove blocks (never the entry); dangling branch targets make the
    candidate invalid, so in practice this reaps blocks made unreachable
    by :func:`_collapse_branches`."""
    changed = False
    for func in list(module.functions.values()):
        for label in func.block_order()[1:]:
            if label not in func.blocks:
                continue
            position = func.block_order().index(label)
            victim = func.blocks[label]
            func.remove_block(label)
            if still_fails(module):
                changed = True
            else:
                func.blocks[label] = victim
                func._block_order.insert(position, label)
    return changed


def _reachable(func: Function) -> set:
    seen: set = set()
    work = [func.block_order()[0]]
    while work:
        label = work.pop()
        if label in seen:
            continue
        seen.add(label)
        for instr in func.blocks[label].instrs:
            work.extend(t for t in instr.labels if t not in seen)
    return seen


def _try_terminator_edit(module: Module, fname: str, label: str,
                         new_term: Instr, still_fails) -> bool:
    """Candidate edit: swap one terminator, drop newly unreachable blocks
    (as one atomic edit — dangling unreachable blocks fail verification),
    keep the rewrite only if the failure survives."""
    candidate = _copy_module(module)
    cfunc = candidate.functions[fname]
    cfunc.blocks[label].instrs[-1] = new_term
    keep = _reachable(cfunc)
    for dead in [l for l in cfunc.block_order() if l not in keep]:
        cfunc.remove_block(dead)
    if still_fails(candidate):
        module.functions[fname] = cfunc
        return True
    return False


def _collapse_branches(module: Module, still_fails) -> bool:
    """Rewrite ``cbr c, a, b`` to an unconditional ``br`` to either arm."""
    changed = False
    for fname in list(module.functions):
        for label in module.functions[fname].block_order():
            func = module.functions[fname]
            block = func.blocks.get(label)
            if block is None or not block.instrs:
                continue
            term = block.instrs[-1]
            if term.op is not Opcode.CBR:
                continue
            for target in term.labels:
                if _try_terminator_edit(module, fname, label,
                                        Instr(Opcode.BR, labels=(target,)),
                                        still_fails):
                    changed = True
                    break
    return changed


def _retarget_forward(module: Module, still_fails) -> bool:
    """Point unconditional branches at strictly later blocks.

    This is what dismantles loops: retargeting the latch's back edge past
    the header turns the loop into straight-line code that runs once,
    after which :func:`_collapse_branches` and the instruction dropper
    consume the skeleton.  Targets only ever move forward in block order,
    so the stage terminates.
    """
    changed = False
    for fname in list(module.functions):
        for label in module.functions[fname].block_order():
            func = module.functions[fname]
            block = func.blocks.get(label)
            if block is None or not block.instrs:
                continue
            term = block.instrs[-1]
            if term.op is not Opcode.BR:
                continue
            order = func.block_order()
            position = {l: k for k, l in enumerate(order)}
            current = position.get(term.labels[0], -1)
            for target in reversed(order[current + 1:]):
                if _try_terminator_edit(module, fname, label,
                                        Instr(Opcode.BR, labels=(target,)),
                                        still_fails):
                    changed = True
                    break
    return changed


def _mov_simplify(module: Module, still_fails) -> bool:
    """Replace a computation by a ``mov`` of one of its operands, so the
    instruction dropper can then reap the operand's defining chain."""
    changed = False
    for func in module.functions.values():
        for label in func.block_order():
            instrs = func.blocks[label].instrs
            for i, instr in enumerate(instrs):
                if instr.dest is None or instr.op is Opcode.MOV:
                    continue
                for arg in instr.args:
                    candidate = Instr(Opcode.MOV, dest=instr.dest, args=(arg,))
                    instrs[i] = candidate
                    if still_fails(module):
                        changed = True
                        break
                    instrs[i] = instr
    return changed


def _drop_instructions(module: Module, still_fails) -> bool:
    """ddmin-style: delete contiguous non-terminator runs, halving the
    chunk size down to single instructions."""
    changed = False
    for func in module.functions.values():
        for label in func.block_order():
            instrs = func.blocks[label].instrs
            chunk = max(1, len(instrs) // 2)
            while chunk >= 1:
                i = 0
                while i < len(instrs):
                    seg = instrs[i:i + chunk]
                    if not seg or any(ins.is_terminator for ins in seg):
                        i += 1
                        continue
                    del instrs[i:i + chunk]
                    if still_fails(module):
                        changed = True
                    else:
                        instrs[i:i] = seg
                        i += chunk
                chunk //= 2
    return changed


def _forward_movs(module: Module, still_fails) -> bool:
    """Substitute ``%x = mov v`` into every use of ``%x`` and delete the
    mov, collapsing the chains :func:`_mov_simplify` leaves behind."""
    changed = False
    for fname in list(module.functions):
        func = module.functions[fname]
        for label in func.block_order():
            i = 0
            while i < len(func.blocks[label].instrs):
                instr = func.blocks[label].instrs[i]
                if instr.op is not Opcode.MOV or instr.dest is None:
                    i += 1
                    continue
                dest, src = instr.dest.name, instr.args[0]
                candidate = _copy_module(module)
                cfunc = candidate.functions[fname]
                del cfunc.blocks[label].instrs[i]
                for other in cfunc.instructions():
                    other.args = tuple(
                        src if isinstance(a, Reg) and a.name == dest else a
                        for a in other.args
                    )
                if still_fails(candidate):
                    module.functions[fname] = cfunc
                    func = cfunc
                    changed = True
                else:
                    i += 1
    return changed


_STAGES = (_drop_functions, _drop_globals, _collapse_branches,
           _retarget_forward, _drop_blocks, _drop_instructions,
           _mov_simplify, _forward_movs)


def shrink_module(
    module: Module,
    predicate: Predicate,
    max_rounds: int = 10,
) -> Module:
    """Minimize *module* while ``predicate`` keeps returning True.

    The input module is not mutated.  Raises ``ValueError`` if the
    predicate does not hold on the (copied) input — a shrink needs a
    reproducible failure to start from.
    """
    still_fails = _safe(predicate)
    current = _copy_module(module)
    if not still_fails(current):
        raise ValueError("predicate does not fail on the input module")
    for _ in range(max_rounds):
        round_changed = False
        for stage in _STAGES:
            round_changed |= stage(current, still_fails)
        if not round_changed:
            break
    return current
