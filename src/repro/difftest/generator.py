"""Seeded random IR program generator.

Emits structured loop programs in the paper's three target shapes:

* ``reduction``   — nested loops accumulating into a scalar, one store of
  the accumulated value per outer iteration (sgemm/dot style);
* ``elementwise`` — a single loop calling a hot generated callee per
  element (blackscholes style);
* ``rmw``         — nested loops that read-modify-write cells of the
  output array, including back-to-back load/store/load sequences in one
  block (lud/backprop style, and the alias trap for CSE).

Every random draw comes from a :class:`random.Random` seeded with
``stable_seed(seed, "difftest", index)``, so generation is reproducible
across processes and machines — the property the sharded runner and the
checked-in corpus rely on.

**Boundedness invariant.**  Generated programs never produce ``inf`` or
``NaN``: the fault-free master and shadow streams of a SWIFT-protected
clone must stay bit-identical, and ``NaN != NaN`` would make a fault-free
run trip the checkers.  The generator enforces this structurally:

* *fresh* expressions combine input loads (``|v| <= 2``), loop indices
  (``<= 63``) and small constants through non-dividing arithmetic, with
  tree depth capped so magnitudes stay far below overflow;
* *carried* values (accumulators, reloaded output cells) are only updated
  additively with fresh values, scaled by ``|c| < 1`` decay constants, or
  passed through bounded maps (``sin``/``cos``); two carried values are
  never multiplied;
* ``exp`` only wraps ``sin``/``cos`` results, ``log``/``sqrt`` only see
  ``fabs(x) + 1`` style non-negative inputs, and ``fdiv`` is never
  emitted.  Integer indices are masked with ``and (size-1)`` before any
  memory access, so addresses stay in bounds for power-of-two arrays.
"""
from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import CmpPred, Opcode
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import format_module
from ..ir.types import F64, I64
from ..ir.values import Reg, Value
from ..ir.verifier import verify_module
from ..workloads.base import stable_seed

#: Program shapes drawn by the default ``generate`` stream.  The
#: ``phased`` shape exists alongside these (``generate_phased``) but is
#: deliberately *not* drawn here: adding it to the draw would shift
#: every existing ``(seed, index)`` program and invalidate the pinned
#: corpus.
SHAPES = ("reduction", "elementwise", "rmw")

#: Power-of-two array size: indices are masked with ``ARRAY_SIZE - 1``.
ARRAY_SIZE = 32

#: Constant pool; includes negative and scientific-notation values so
#: generated programs exercise the parser's full constant syntax.
FLOAT_CONSTS = (0.5, -1.5, 2.0, 0.25, -0.75, 3.0, 1e-3, -2.5, 5e-05, 1.0)

#: Multipliers applied to carried values (all ``|c| < 1``: contraction).
DECAY_CONSTS = (0.5, -0.25, 0.75, -0.5, 0.125)

_CMP_PREDS = (CmpPred.LT, CmpPred.LE, CmpPred.GT, CmpPred.GE)


@dataclass
class GeneratedProgram:
    """One generated test program, self-contained in its module.

    Inputs live in global initializers, loop bounds are constants and
    ``main`` takes no arguments — the printed ``.ir`` text alone replays
    the program, which is what the corpus regression tests rely on.
    """

    module: Module
    shape: str
    seed: int
    index: int

    @property
    def name(self) -> str:
        return self.module.name


class _ExprGen:
    """Emits random bounded float expressions through an IRBuilder."""

    def __init__(self, builder: IRBuilder, rng: random.Random):
        self.b = builder
        self.rng = rng
        #: values with small guaranteed magnitude (loads, indices, consts)
        self.fresh_pool: List[Value] = []
        #: accumulators / reloaded output cells (bounded but large)
        self.carried_pool: List[Reg] = []

    # -- leaves -----------------------------------------------------------
    def _leaf(self) -> Value:
        pool = self.fresh_pool
        if pool and self.rng.random() < 0.7:
            return self.rng.choice(pool)
        return self.b.mov(self.rng.choice(FLOAT_CONSTS), hint="c")

    # -- fresh expressions -------------------------------------------------
    def fresh(self, depth: int) -> Value:
        """A bounded expression over the fresh pool (never inf/NaN)."""
        b, rng = self.b, self.rng
        if depth <= 0 or rng.random() < 0.25:
            return self._leaf()
        op = rng.choice((
            "fadd", "fsub", "fmul", "fneg", "fabs", "sqrtabs",
            "sin", "cos", "expsin", "log1p", "floor", "select",
        ))
        x = self.fresh(depth - 1)
        if op == "fadd":
            return b.fadd(x, self.fresh(depth - 1))
        if op == "fsub":
            return b.fsub(x, self.fresh(depth - 1))
        if op == "fmul":
            return b.fmul(x, self.fresh(depth - 1))
        if op == "fneg":
            return b.fneg(x)
        if op == "fabs":
            return b.fabs(x)
        if op == "sqrtabs":
            return b.sqrt(b.fabs(x))
        if op == "sin":
            return b.sin(x)
        if op == "cos":
            return b.cos(x)
        if op == "expsin":
            # exp of a value in [-1, 1]: bounded by e
            return b.exp(b.sin(x))
        if op == "log1p":
            # log of a value >= 1: non-negative, defined
            return b.log(b.fadd(b.fabs(x), 1.0))
        if op == "floor":
            return b.floor(x)
        cond = b.fcmp(rng.choice(_CMP_PREDS), x, self.fresh(depth - 1))
        return b.select(cond, self.fresh(depth - 1), self.fresh(depth - 1))

    def carried_update(self, carry: Reg, depth: int = 2) -> None:
        """Fold a fresh expression into *carry* without magnitude blowup."""
        b, rng = self.b, self.rng
        term = self.fresh(depth)
        kind = rng.random()
        if kind < 0.4:
            b.mov(b.fadd(carry, term), dest=carry)
        elif kind < 0.7:
            b.mov(b.fsub(carry, term), dest=carry)
        else:
            decayed = b.fmul(carry, rng.choice(DECAY_CONSTS))
            b.mov(b.fadd(decayed, term), dest=carry)

    def bounded_of_carried(self, carry: Reg) -> Value:
        """A fresh-magnitude projection of a carried value."""
        return self.b.sin(carry) if self.rng.random() < 0.5 else self.b.cos(carry)

    # -- integer index expressions ----------------------------------------
    def index(self, idx_regs: Sequence[Reg]) -> Value:
        """A random in-bounds index: arithmetic over loop counters, then
        masked with ``ARRAY_SIZE - 1`` (safe even for negative values)."""
        b, rng = self.b, self.rng
        raw: Value = rng.choice(list(idx_regs))
        for _ in range(rng.randrange(3)):
            op = rng.choice(("add", "mul", "xor", "shl", "sdiv", "srem"))
            if op == "add":
                raw = b.add(raw, rng.randrange(1, 9))
            elif op == "mul":
                raw = b.mul(raw, rng.randrange(2, 6))
            elif op == "xor":
                raw = b.xor(raw, rng.choice(list(idx_regs)))
            elif op == "shl":
                raw = b.shl(raw, rng.randrange(1, 3))
            elif op == "sdiv":
                raw = b.sdiv(raw, rng.randrange(2, 5))
            else:
                raw = b.srem(raw, rng.randrange(3, 8))
        return b.and_(raw, ARRAY_SIZE - 1)

    # -- statement-level decoration ---------------------------------------
    def maybe_dead_code(self) -> None:
        """Emit a computation nobody uses (DCE material)."""
        if self.rng.random() < 0.3:
            self.fresh(2)

    def maybe_duplicate(self) -> None:
        """Emit the same pure binop twice (CSE material)."""
        if self.rng.random() < 0.3 and len(self.fresh_pool) >= 2:
            x, y = self.rng.sample(self.fresh_pool, 2)
            a = self.b.fmul(x, y)
            c = self.b.fmul(x, y)
            self.fresh_pool.append(self.b.fadd(a, c))

    def maybe_diamond(self) -> None:
        """Emit an if/then(/else) diamond writing a pre-initialized reg."""
        if self.rng.random() >= 0.35:
            return
        b, rng = self.b, self.rng
        t = b.mov(self.fresh(1), hint="sel")
        cond = b.fcmp(rng.choice(_CMP_PREDS), self.fresh(1), self.fresh(1))

        def then_fn(bb: IRBuilder) -> None:
            bb.mov(self.fresh(2), dest=t)

        def else_fn(bb: IRBuilder) -> None:
            bb.mov(self.fresh(2), dest=t)

        b.if_then_else(cond, then_fn, else_fn if rng.random() < 0.5 else None)
        self.fresh_pool.append(t)


def _init_values(rng: random.Random, count: int) -> List[float]:
    """Deterministic input data in [-2, 2], short-repr rounded."""
    return [round(rng.uniform(-2.0, 2.0), 6) for _ in range(count)]


def _add_inputs(module: Module, rng: random.Random, names: Sequence[str]) -> None:
    for name in names:
        module.add_global(name, ARRAY_SIZE, F64, _init_values(rng, ARRAY_SIZE))
    module.add_global("out", ARRAY_SIZE, F64)


def _load_inputs(eg: _ExprGen, names: Sequence[str], idx_regs: Sequence[Reg]) -> None:
    """Load one element of each input array into the fresh pool."""
    b = eg.b
    for name in names:
        base = b.mov(b.global_addr(name), hint=f"{name}p")
        eg.fresh_pool.append(b.load(b.padd(base, eg.index(idx_regs))))


def _gen_reduction(module: Module, rng: random.Random) -> None:
    """Nested reduction: acc over an inner loop, stored per outer step."""
    _add_inputs(module, rng, ("a", "b"))
    func = Function("main", [], F64)
    module.add_function(func)
    b = IRBuilder(func)
    eg = _ExprGen(b, rng)

    outer_n = rng.randrange(4, 9)
    inner_n = rng.randrange(3, 7)
    out_p = b.mov(b.global_addr("out"), hint="outp")
    total = b.mov(rng.choice(FLOAT_CONSTS), hint="total")
    with b.loop(0, outer_n, hint="outer") as i:
        eg.fresh_pool = [b.sitofp(i)]
        # loop-invariant computation (LICM material)
        eg.fresh_pool.append(b.fmul(rng.choice(FLOAT_CONSTS), rng.choice(FLOAT_CONSTS)))
        acc = b.mov(rng.choice(FLOAT_CONSTS), hint="acc")
        with b.loop(0, inner_n, hint="inner") as j:
            saved = list(eg.fresh_pool)
            eg.fresh_pool.append(b.sitofp(j))
            _load_inputs(eg, ("a", "b"), (i, j))
            eg.maybe_duplicate()
            eg.maybe_dead_code()
            eg.carried_update(acc, depth=2)
            eg.fresh_pool = saved
        eg.maybe_diamond()
        scaled = b.fadd(acc, eg.fresh(1))
        b.store(scaled, b.padd(out_p, b.and_(i, ARRAY_SIZE - 1)))
        b.mov(b.fadd(total, eg.bounded_of_carried(acc)), dest=total)
    b.ret(total)


def _gen_callee(module: Module, rng: random.Random, name: str) -> None:
    """A hot pure callee of two float params."""
    func = Function(name, [Reg("x", F64), Reg("y", F64)], F64)
    module.add_function(func)
    b = IRBuilder(func)
    eg = _ExprGen(b, rng)
    eg.fresh_pool = list(func.params)
    eg.maybe_duplicate()
    eg.maybe_diamond()
    b.ret(eg.fresh(3))


def _gen_elementwise(module: Module, rng: random.Random) -> None:
    """One loop calling a generated hot callee per element."""
    _add_inputs(module, rng, ("a", "b"))
    callees = ["g"] if rng.random() < 0.6 else ["g", "h"]
    for name in callees:
        _gen_callee(module, rng, name)

    func = Function("main", [], F64)
    module.add_function(func)
    b = IRBuilder(func)
    eg = _ExprGen(b, rng)

    trip = rng.randrange(5, 12)
    out_p = b.mov(b.global_addr("out"), hint="outp")
    a_p = b.mov(b.global_addr("a"), hint="ap")
    b_p = b.mov(b.global_addr("b"), hint="bp")
    total = b.mov(0.0, hint="total")
    with b.loop(0, trip, hint="elem") as i:
        eg.fresh_pool = [b.sitofp(i)]
        av = b.load(b.padd(a_p, eg.index((i,))))
        bv = b.load(b.padd(b_p, eg.index((i,))))
        eg.fresh_pool += [av, bv]
        v = b.call(rng.choice(callees), [av, bv])
        eg.fresh_pool.append(v)
        if rng.random() < 0.4:
            u = b.call(rng.choice(callees), [bv, eg.fresh(1)])
            eg.fresh_pool.append(u)
        eg.maybe_dead_code()
        eg.maybe_duplicate()
        b.store(eg.fresh(2), b.padd(out_p, b.and_(i, ARRAY_SIZE - 1)))
        b.mov(b.fadd(total, b.sin(v)), dest=total)
    b.ret(total)


def _gen_rmw(module: Module, rng: random.Random) -> None:
    """Nested loops read-modify-writing output cells, with back-to-back
    load/store/load sequences in one block (the CSE alias trap)."""
    _add_inputs(module, rng, ("a", "w"))
    func = Function("main", [], F64)
    module.add_function(func)
    b = IRBuilder(func)
    eg = _ExprGen(b, rng)

    outer_n = rng.randrange(4, 9)
    inner_n = rng.randrange(3, 6)
    out_p = b.mov(b.global_addr("out"), hint="outp")
    with b.loop(0, outer_n, hint="outer") as i:
        eg.fresh_pool = [b.sitofp(i)]
        addr = b.padd(out_p, b.and_(i, ARRAY_SIZE - 1))
        s = b.load(addr, hint="s")
        eg.carried_pool.append(s)
        with b.loop(0, inner_n, hint="inner") as k:
            saved = list(eg.fresh_pool)
            eg.fresh_pool.append(b.sitofp(k))
            _load_inputs(eg, ("a", "w"), (i, k))
            eg.maybe_duplicate()
            eg.carried_update(s, depth=2)
            eg.fresh_pool = saved
        b.store(s, addr)
        if rng.random() < 0.6:
            # same-block load/store/load on one address: a CSE that merges
            # loads across the store changes this program's output
            t1 = b.load(addr, hint="t1")
            b.store(b.fadd(t1, eg.fresh(1)), addr)
            t2 = b.load(addr, hint="t2")
            b.store(b.fadd(b.fmul(t2, rng.choice(DECAY_CONSTS)), eg.bounded_of_carried(t2)), addr)
        eg.maybe_dead_code()
    b.ret(0.0)


def _gen_phase(
    module: Module,
    rng: random.Random,
    name: str,
    array: str,
    out_base: int,
    out_span: int,
) -> None:
    """One isolated phase function: a loop over its own input array
    writing its own slice of ``out``.  Straight-line body (no diamonds),
    so the phase's dynamic step count depends only on its constant trip
    count — never on float values."""
    func = Function(name, [], F64)
    module.add_function(func)
    b = IRBuilder(func)
    eg = _ExprGen(b, rng)

    trip = rng.randrange(4, 9)
    out_p = b.mov(b.global_addr("out"), hint="outp")
    acc = b.mov(rng.choice(FLOAT_CONSTS), hint="acc")
    with b.loop(0, trip, hint="ph") as i:
        eg.fresh_pool = [b.sitofp(i)]
        _load_inputs(eg, (array,), (i,))
        eg.maybe_duplicate()
        eg.maybe_dead_code()
        eg.carried_update(acc, depth=2)
        slot = b.add(b.and_(i, out_span - 1), out_base)
        b.store(eg.bounded_of_carried(acc), b.padd(out_p, slot))
    b.ret(acc)


def _gen_phased(module: Module, rng: random.Random) -> None:
    """Independent phases: each phase function reads only its own input
    array and writes only its own disjoint slice of ``out``; ``main`` is
    a bare call sequence holding no live registers across phases.

    This is the section-independence witness shape of the incremental
    campaign oracle (O7): a fault injected while one phase runs cannot
    reach another phase's output through registers (the call results are
    dead) or memory (disjoint arrays/slices), so per-phase injection
    tallies compose exactly across single-phase edits.
    """
    n_phases = rng.randrange(2, 5)
    for p in range(n_phases):
        module.add_global(f"a{p}", ARRAY_SIZE, F64, _init_values(rng, ARRAY_SIZE))
    module.add_global("out", ARRAY_SIZE, F64)
    span = ARRAY_SIZE // 4  # disjoint 8-cell slices for up to 4 phases
    for p in range(n_phases):
        _gen_phase(module, rng, f"phase{p}", f"a{p}", p * span, span)

    func = Function("main", [], F64)
    module.add_function(func)
    b = IRBuilder(func)
    for p in range(n_phases):
        b.call(f"phase{p}", [])
    b.ret(0.0)


_SHAPE_BUILDERS = {
    "reduction": _gen_reduction,
    "elementwise": _gen_elementwise,
    "rmw": _gen_rmw,
    "phased": _gen_phased,
}


def generate_module(rng: random.Random, shape: str, name: str = "difftest") -> Module:
    """Generate one verified module of the given shape from *rng*."""
    if shape not in _SHAPE_BUILDERS:
        raise ValueError(
            f"unknown shape {shape!r}; choose from {tuple(_SHAPE_BUILDERS)}")
    module = Module(name)
    _SHAPE_BUILDERS[shape](module, rng)
    verify_module(module)
    return module


def generate(seed: int, index: int) -> GeneratedProgram:
    """Generate program *index* of the stream rooted at *seed*.

    Fully deterministic: the same ``(seed, index)`` yields byte-identical
    textual IR in any process, which lets the sharded runner replay any
    program anywhere.
    """
    rng = random.Random(stable_seed(seed, "difftest", index))
    shape = rng.choice(SHAPES)
    module = generate_module(rng, shape, name=f"dt_s{seed}_i{index}")
    return GeneratedProgram(module, shape, seed, index)


def generate_phased(seed: int, index: int) -> GeneratedProgram:
    """Generate program *index* of the phased stream rooted at *seed*.

    A separate stream from :func:`generate` (which draws only the three
    paper shapes), deterministic in ``(seed, index)`` the same way.
    """
    rng = random.Random(stable_seed(seed, "difftest.phased", index))
    module = generate_module(rng, "phased", name=f"dtp_s{seed}_i{index}")
    return GeneratedProgram(module, "phased", seed, index)


#: Opcode swaps ``mutate_function`` may apply: same arity, same operand
#: kinds, bounded result given bounded operands — and crucially the same
#: instruction count, so the dynamic step stream is unchanged.
_MUTATION_SWAPS = {
    Opcode.FADD: Opcode.FSUB,
    Opcode.FSUB: Opcode.FADD,
    Opcode.SIN: Opcode.COS,
    Opcode.COS: Opcode.SIN,
}


def mutate_function(module: Module, name: str, seed: int = 0) -> Module:
    """A deterministic *semantic* edit of one function: swap a subset of
    its FADD↔FSUB / SIN↔COS opcodes (at least one).

    The mutation is step-count-preserving — no instruction is added,
    removed, or given different control flow — so every other section of
    an incremental campaign keeps its step window, step count and trial
    allocation after the edit.  That is the FastFlip scenario oracle O7
    replays: re-inject only the edited function's section, reuse the
    rest.  Returns a mutated copy (print/parse — the original module is
    untouched); raises ``ValueError`` if the function has no swappable
    instruction.
    """
    work = parse_module(format_module(module))
    work.name = module.name
    func = work.get_function(name)
    candidates = []
    for label in func.block_order():
        for instr in func.blocks[label].instrs:
            if instr.op in _MUTATION_SWAPS:
                candidates.append(instr)
    if not candidates:
        raise ValueError(
            f"@{name} has no FADD/FSUB/SIN/COS instruction to mutate")
    rng = random.Random(stable_seed(seed, "difftest.mutate", name))
    chosen = rng.sample(candidates, 1 + rng.randrange(min(3, len(candidates))))
    for instr in chosen:
        instr.op = _MUTATION_SWAPS[instr.op]
    verify_module(work)
    return work
