"""kde — kernel density estimation (machine learning).

Table 1: *nested reduction loops* (samples x dimensions), detected inside
the outer repetition loop.  Gaussian kernel over D-dimensional points,
evaluated along a sorted grid so consecutive densities share a trend.
"""
from __future__ import annotations

import math
import random

from ..ir import F64, I64, IRBuilder, Function, Module, Reg, verify_module
from .base import Workload, WorkloadInput
from .inputs import smooth_series

GRID_CAP = 256
SAMP_CAP = 256
DIM_CAP = 4


class Kde(Workload):
    name = "kde"
    domain = "Machine learning"
    description = "Kernel Density Estimation"

    def build(self) -> Module:
        module = Module("kde")
        module.add_global("grid", GRID_CAP * DIM_CAP)
        module.add_global("samp", SAMP_CAP * DIM_CAP)
        module.add_global("out", GRID_CAP)

        # main(g, s, d, inv2h2, norm, reps)
        func = Function(
            "main",
            [
                Reg("g", I64), Reg("s", I64), Reg("d", I64),
                Reg("inv2h2", F64), Reg("norm", F64), Reg("reps", I64),
            ],
            F64,
        )
        module.add_function(func)
        b = IRBuilder(func)
        gp = b.mov(b.global_addr("grid"), hint="gp")
        sp = b.mov(b.global_addr("samp"), hint="sp")
        op = b.mov(b.global_addr("out"), hint="op")
        g, s, d, inv2h2, norm, reps = func.params

        with b.loop(0, reps, hint="rep"):
            with b.loop(0, g, hint="grid") as gi:  # the detected loop
                acc = b.mov(0.0, hint="acc")
                with b.loop(0, s, hint="samp") as si:
                    dist2 = b.mov(0.0, hint="dist2")
                    with b.loop(0, d, hint="dim") as di:
                        gv = b.load(b.padd(gp, b.add(b.mul(gi, d), di)))
                        sv = b.load(b.padd(sp, b.add(b.mul(si, d), di)))
                        diff = b.fsub(gv, sv)
                        b.mov(b.fadd(dist2, b.fmul(diff, diff)), dest=dist2)
                    kern = b.exp(b.fneg(b.fmul(dist2, inv2h2)))
                    b.mov(b.fadd(acc, kern), dest=acc)
                b.store(b.fmul(acc, norm), b.padd(op, gi))
        b.ret(0.0)
        verify_module(module)
        return module

    def make_input(self, rng: random.Random, scale: float = 1.0) -> WorkloadInput:
        g = min(self._dim(56, scale, 12), GRID_CAP)
        s = min(self._dim(20, scale, 6), SAMP_CAP)
        d = 2
        h = 0.9
        # grid points walk smoothly through the space; samples cluster
        grid = []
        base = smooth_series(rng, g, base=0.0, amplitude=1.1, noise_rel=0.01, period=g / 1.2)
        for k in range(g):
            grid.extend([base[k], base[k] * 0.5 + 0.3])
        samp = []
        for _ in range(s):
            cx = rng.gauss(0.0, 1.2)
            samp.extend([cx, cx * 0.5 + rng.gauss(0.3, 0.4)])
        norm = 1.0 / (s * (2 * math.pi) ** (d / 2) * h**d)
        return WorkloadInput(
            arrays={"grid": grid, "samp": samp},
            args=[g, s, d, 1.0 / (2 * h * h), norm, 2],
            output=("out", g),
            loop_output=("out", g),
        )
