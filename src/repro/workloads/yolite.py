"""yolite — a miniature YOLOv2 stand-in (real-time object detection).

The paper evaluates YOLOv2 (Darknet).  Running the full network is out of
scope for an interpreted substrate, so yolite keeps the properties that
matter to the experiments (see DESIGN.md):

* the hot computation is a convolutional *reduction loop* over an image,
  detected inside outer filter/row loops — the same pattern RSkip targets
  in the real network;
* the program's final output is only the argmax detection label, so small
  value errors that escape fuzzy validation tend to be *logically masked*
  (the paper's observation that false negatives are generally benign in
  YOLOv2).
"""
from __future__ import annotations

import random

from ..ir import CmpPred, F64, I64, IRBuilder, Function, Module, Reg, verify_module
from .base import Workload, WorkloadInput
from .inputs import smooth_grid, smooth_series

IMG_CAP = 32 * 32
WT_CAP = 8 * 9
FEAT_CAP = 4 * 32 * 32


class Yolite(Workload):
    name = "yolite"
    domain = "Machine learning, Computer vision"
    description = "Real time object detection (miniature YOLOv2 head)"

    def build(self) -> Module:
        module = Module("yolite")
        module.add_global("img", IMG_CAP)
        module.add_global("wt", WT_CAP)
        module.add_global("bias", 8)
        module.add_global("feat", FEAT_CAP)
        module.add_global("det", 2)

        # main(h, w, k, f)
        func = Function(
            "main", [Reg("h", I64), Reg("w", I64), Reg("k", I64), Reg("f", I64)], F64
        )
        module.add_function(func)
        b = IRBuilder(func)
        ip = b.mov(b.global_addr("img"), hint="ip")
        wp = b.mov(b.global_addr("wt"), hint="wp")
        bp = b.mov(b.global_addr("bias"), hint="bp")
        fp = b.mov(b.global_addr("feat"), hint="fp")
        dp = b.mov(b.global_addr("det"), hint="dp")
        h, w, k, f = func.params
        oh = b.sub(h, b.sub(k, 1))
        ow = b.sub(w, b.sub(k, 1))

        with b.loop(0, f, hint="filt") as fi:
            with b.loop(0, oh, hint="row") as y:
                with b.loop(0, ow, hint="col") as x:  # the detected loop
                    acc = b.mov(0.0, hint="acc")
                    with b.loop(0, k, hint="ky") as ky:
                        with b.loop(0, k, hint="kx") as kx:
                            pix = b.load(
                                b.padd(ip, b.add(b.mul(b.add(y, ky), w), b.add(x, kx)))
                            )
                            tap = b.load(
                                b.padd(wp, b.add(b.mul(fi, b.mul(k, k)),
                                                 b.add(b.mul(ky, k), kx)))
                            )
                            b.mov(b.fadd(acc, b.fmul(pix, tap)), dest=acc)
                    z = b.fadd(acc, b.load(b.padd(bp, fi)))
                    pos = b.fcmp(CmpPred.GT, z, 0.0)
                    act = b.select(pos, z, b.fmul(0.1, z))
                    cell = b.add(b.mul(fi, b.mul(oh, ow)), b.add(b.mul(y, ow), x))
                    b.store(act, b.padd(fp, cell))

        # detection head: only the argmax label (and its score) survive
        ncells = b.mul(f, b.mul(oh, ow))
        best = b.mov(-1.0e30, hint="best")
        bidx = b.mov(0, hint="bidx")
        with b.loop(0, ncells, hint="argmax") as c:
            v = b.load(b.padd(fp, c))
            better = b.fcmp(CmpPred.GT, v, best)
            b.mov(b.select(better, v, best), dest=best)
            b.mov(b.select(better, c, bidx), dest=bidx)
        b.store(b.sitofp(bidx), dp)
        b.store(best, b.padd(dp, 1))
        b.ret(best)
        verify_module(module)
        return module

    def make_input(self, rng: random.Random, scale: float = 1.0) -> WorkloadInput:
        side = min(self._dim(18, scale, 8), 32)
        k, f = 3, 2
        image = smooth_grid(rng, side, side, base=0.9, amplitude=0.5,
                            noise_rel=0.02, period=16.0)
        weights = smooth_series(rng, f * k * k, base=0.3, amplitude=0.15,
                                noise_rel=0.05, period=6.0)
        bias = [rng.uniform(-0.1, 0.1) for _ in range(f)]
        feat_n = f * (side - k + 1) * (side - k + 1)
        return WorkloadInput(
            arrays={"img": image, "wt": weights, "bias": bias},
            args=[side, side, k, f],
            output=("det", 2),
            loop_output=("feat", feat_n),
        )
