"""conv2d — 2-D convolution with a data-dependent conditional.

Table 1: *nested reduction loops with conditional statement*, detected
inside the outer row loop.  The conditional (skip near-zero taps, a sparse
convolution) is the data-dependent control flow that makes SWIFT-R's
validation particularly expensive here (paper section 7.1).
"""
from __future__ import annotations

import random

from ..ir import CmpPred, F64, I64, IRBuilder, Function, Module, Reg, verify_module
from .base import Workload, WorkloadInput
from .inputs import smooth_grid, smooth_series

IMG_CAP = 48 * 48
KRN_CAP = 9 * 9
OUT_CAP = 48 * 48


class Conv2D(Workload):
    name = "conv2d"
    domain = "Signal processing, Machine learning"
    description = "2D convolution"

    def build(self) -> Module:
        module = Module("conv2d")
        module.add_global("img", IMG_CAP)
        module.add_global("krn", KRN_CAP)
        module.add_global("out", OUT_CAP)

        # main(h, w, k, thresh)
        func = Function(
            "main",
            [Reg("h", I64), Reg("w", I64), Reg("k", I64), Reg("thresh", F64)],
            F64,
        )
        module.add_function(func)
        b = IRBuilder(func)
        ip = b.mov(b.global_addr("img"), hint="ip")
        kp = b.mov(b.global_addr("krn"), hint="kp")
        op = b.mov(b.global_addr("out"), hint="op")
        h, w, k, thresh = func.params
        oh = b.sub(h, b.sub(k, 1))
        ow = b.sub(w, b.sub(k, 1))

        with b.loop(0, oh, hint="row") as y:  # the outer loop
            with b.loop(0, ow, hint="col") as x:  # the detected loop
                acc = b.mov(0.0, hint="acc")
                with b.loop(0, k, hint="ky") as ky:
                    with b.loop(0, k, hint="kx") as kx:
                        iy = b.add(y, ky)
                        ix = b.add(x, kx)
                        pix = b.load(b.padd(ip, b.add(b.mul(iy, w), ix)))
                        tap = b.load(b.padd(kp, b.add(b.mul(ky, k), kx)))
                        # sparse convolution: skip near-zero kernel taps.
                        # The branch pattern cycles with the kernel, so it
                        # is data-dependent and poorly predicted — the
                        # control flow that hurts SWIFT-R in this benchmark
                        # — while the accumulated output stays smooth.
                        big = b.fcmp(CmpPred.GT, b.fabs(tap), thresh)

                        def add_tap(bb, acc=acc, pix=pix, tap=tap):
                            bb.mov(bb.fadd(acc, bb.fmul(pix, tap)), dest=acc)

                        b.if_then_else(big, add_tap)
                addr = b.padd(op, b.add(b.mul(y, ow), x))
                b.store(acc, addr)
        b.ret(0.0)
        verify_module(module)
        return module

    def make_input(self, rng: random.Random, scale: float = 1.0) -> WorkloadInput:
        side = min(self._dim(22, scale, 8), 48)
        k = 5 if side >= 10 else 3
        image = smooth_grid(rng, side, side, base=1.0, amplitude=0.7,
                            noise_rel=0.015, period=18.0)
        kernel = smooth_series(rng, k * k, base=0.18, amplitude=0.14,
                               noise_rel=0.05, period=2.6)
        out_n = (side - k + 1) * (side - k + 1)
        return WorkloadInput(
            arrays={"img": image, "krn": kernel},
            args=[side, side, k, 0.18],
            output=("out", out_n),
            loop_output=("out", out_n),
        )
