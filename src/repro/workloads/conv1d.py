"""conv1d — 1-D convolution (signal processing / machine learning).

Table 1: prediction target is *a reduction loop*, detected *inside a outer
loop* (a frame loop wraps the convolution).
"""
from __future__ import annotations

import random

from ..ir import F64, I64, IRBuilder, Function, Module, Reg, verify_module
from .base import Workload, WorkloadInput
from .inputs import smooth_series

X_CAP = 4096
K_CAP = 64


class Conv1D(Workload):
    name = "conv1d"
    domain = "Signal processing, Machine learning"
    description = "1D convolution"

    def build(self) -> Module:
        module = Module("conv1d")
        module.add_global("x", X_CAP)
        module.add_global("krn", K_CAP)
        module.add_global("out", X_CAP)

        func = Function(
            "main", [Reg("n", I64), Reg("m", I64), Reg("frames", I64)], F64
        )
        module.add_function(func)
        b = IRBuilder(func)
        xp = b.mov(b.global_addr("x"), hint="xp")
        kp = b.mov(b.global_addr("krn"), hint="kp")
        op = b.mov(b.global_addr("out"), hint="op")
        n, m, frames = func.params

        with b.loop(0, frames, hint="frame"):
            with b.loop(0, n, hint="conv") as i:  # the detected loop
                acc = b.mov(0.0, hint="acc")
                with b.loop(0, m, hint="red") as j:
                    xv = b.load(b.padd(xp, b.add(i, j)))
                    kv = b.load(b.padd(kp, j))
                    b.mov(b.fadd(acc, b.fmul(xv, kv)), dest=acc)
                b.store(acc, b.padd(op, i))
        b.ret(0.0)
        verify_module(module)
        return module

    def make_input(self, rng: random.Random, scale: float = 1.0) -> WorkloadInput:
        n = min(self._dim(220, scale, 16), X_CAP - K_CAP)
        m = min(self._dim(14, scale, 4), K_CAP)
        signal = smooth_series(rng, n + m, base=2.0, amplitude=1.0,
                               noise_rel=0.02, period=48.0)
        kernel = smooth_series(rng, m, base=0.3, amplitude=0.2,
                               noise_rel=0.05, period=float(m))
        return WorkloadInput(
            arrays={"x": signal, "krn": kernel},
            args=[n, m, 2],
            output=("out", n),
            loop_output=("out", n),
        )
