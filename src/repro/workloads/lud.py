"""lud — in-place LU decomposition (Rodinia).

Table 1: *a reduction loop with a varying trip count*, detected inside the
outer elimination loop.  This is Figure 4b's pattern: the update
``a[j*size+i] = sum`` reads and overwrites the same cell
(read-modify-write), exercising RSkip's temporary-space handling for
re-computation.

The left-looking factorization has two detected loops per elimination
step: the U-row update and the L-column update (Figure 4b shows the
latter).
"""
from __future__ import annotations

import random

from ..ir import F64, I64, IRBuilder, Function, Module, Reg, verify_module
from .base import Workload, WorkloadInput
from .inputs import diagonally_dominant_matrix

N_CAP = 40


class Lud(Workload):
    name = "lud"
    domain = "Linear algebra"
    description = "LU decomposition"

    def build(self) -> Module:
        module = Module("lud")
        module.add_global("a", N_CAP * N_CAP)

        func = Function("main", [Reg("n", I64)], F64)
        module.add_function(func)
        b = IRBuilder(func)
        ap = b.mov(b.global_addr("a"), hint="ap")
        n = func.params[0]

        with b.loop(0, n, hint="elim") as i:
            # U row i:  a[i][j] -= sum_{k<i} a[i][k] * a[k][j]   for j >= i
            with b.loop(i, n, hint="urow") as j:  # detected loop 1
                addr = b.padd(ap, b.add(b.mul(i, n), j))
                s = b.load(addr, hint="usum")
                with b.loop(0, i, hint="ured") as k:
                    lv = b.load(b.padd(ap, b.add(b.mul(i, n), k)))
                    uv = b.load(b.padd(ap, b.add(b.mul(k, n), j)))
                    b.mov(b.fsub(s, b.fmul(lv, uv)), dest=s)
                b.store(s, addr)
            # L column i:  a[j][i] = (a[j][i] - sum_{k<i} a[j][k]*a[k][i]) / a[i][i]
            ip1 = b.add(i, 1)
            with b.loop(ip1, n, hint="lcol") as j:  # detected loop 2 (Fig 4b)
                addr = b.padd(ap, b.add(b.mul(j, n), i))
                s = b.load(addr, hint="lsum")
                with b.loop(0, i, hint="lred") as k:
                    lv = b.load(b.padd(ap, b.add(b.mul(j, n), k)))
                    uv = b.load(b.padd(ap, b.add(b.mul(k, n), i)))
                    b.mov(b.fsub(s, b.fmul(lv, uv)), dest=s)
                diag = b.load(b.padd(ap, b.add(b.mul(i, n), i)))
                b.store(b.fdiv(s, diag), addr)
        b.ret(0.0)
        verify_module(module)
        return module

    def make_input(self, rng: random.Random, scale: float = 1.0) -> WorkloadInput:
        n = min(self._dim(22, scale, 8), N_CAP)
        matrix = diagonally_dominant_matrix(rng, n, noise_rel=0.04)
        return WorkloadInput(
            arrays={"a": matrix},
            args=[n],
            output=("a", n * n),
            loop_output=("a", n * n),
        )
