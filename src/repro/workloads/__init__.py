"""repro.workloads — the nine benchmarks of Table 1, rebuilt as IR
programs, plus their input generators."""
from typing import Dict, List

from .base import Workload, WorkloadInput, stable_seed
from .conv1d import Conv1D
from .conv2d import Conv2D
from .sgemm import Sgemm
from .kde import Kde
from .neuralnet import BackProp, ForwardProp
from .blackscholes import BlackScholes
from .lud import Lud
from .yolite import Yolite

#: Paper order (Table 1 / Figure 9).
ALL_WORKLOADS: List[Workload] = [
    Conv1D(),
    Conv2D(),
    Sgemm(),
    Kde(),
    ForwardProp(),
    BackProp(),
    BlackScholes(),
    Lud(),
    Yolite(),
]

WORKLOADS: Dict[str, Workload] = {w.name: w for w in ALL_WORKLOADS}


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


__all__ = [
    "Workload", "WorkloadInput", "stable_seed",
    "Conv1D", "Conv2D", "Sgemm", "Kde", "ForwardProp", "BackProp",
    "BlackScholes", "Lud", "Yolite",
    "ALL_WORKLOADS", "WORKLOADS", "get_workload",
]
