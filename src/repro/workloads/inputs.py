"""Synthetic input generators.

The paper's trend-based predictor exploits *spatio-value similarity*:
neighbouring outputs tend to lie on local trends.  These generators
produce data in that regime with controllable roughness:

* :func:`smooth_series` — sinusoid mixtures plus relative noise (signals,
  images, weights);
* :func:`random_walk` — integrated noise (price-like series);
* :func:`clustered_values` — draws around a few popular centers
  (blackscholes option parameters: poor trends, memoization-friendly).
"""
from __future__ import annotations

import math
import random
from typing import List, Sequence


def smooth_series(
    rng: random.Random,
    n: int,
    base: float = 1.0,
    amplitude: float = 1.0,
    noise_rel: float = 0.05,
    period: float = 40.0,
) -> List[float]:
    """Sum of two incommensurate sinusoids with relative jitter."""
    phase1 = rng.uniform(0, 2 * math.pi)
    phase2 = rng.uniform(0, 2 * math.pi)
    out = []
    for k in range(n):
        v = base + amplitude * (
            math.sin(2 * math.pi * k / period + phase1)
            + 0.4 * math.sin(2 * math.pi * k / (period * 0.37) + phase2)
        )
        v *= 1.0 + rng.uniform(-noise_rel, noise_rel)
        out.append(v)
    return out


def random_walk(
    rng: random.Random,
    n: int,
    start: float = 10.0,
    step_rel: float = 0.02,
    floor: float = 0.05,
) -> List[float]:
    """Multiplicative random walk bounded away from zero."""
    out = []
    v = start
    for _ in range(n):
        v *= 1.0 + rng.uniform(-step_rel, step_rel)
        if v < floor:
            v = floor
        out.append(v)
    return out


def clustered_values(
    rng: random.Random,
    n: int,
    centers: Sequence[float],
    jitter_rel: float = 0.02,
) -> List[float]:
    """Independent draws around a few popular centers (no spatial trend)."""
    out = []
    for _ in range(n):
        c = centers[rng.randrange(len(centers))]
        out.append(c * (1.0 + rng.uniform(-jitter_rel, jitter_rel)))
    return out


def smooth_grid(
    rng: random.Random,
    height: int,
    width: int,
    base: float = 1.0,
    amplitude: float = 1.0,
    noise_rel: float = 0.05,
    period: float = 12.0,
) -> List[float]:
    """Row-major 2-D field, smooth along both axes."""
    phase_y = rng.uniform(0, 2 * math.pi)
    phase_x = rng.uniform(0, 2 * math.pi)
    out = []
    for y in range(height):
        for x in range(width):
            v = base + amplitude * (
                math.sin(2 * math.pi * y / period + phase_y)
                * math.cos(2 * math.pi * x / period + phase_x)
            )
            v *= 1.0 + rng.uniform(-noise_rel, noise_rel)
            out.append(v)
    return out


def diagonally_dominant_matrix(
    rng: random.Random,
    n: int,
    noise_rel: float = 0.1,
) -> List[float]:
    """Row-major n x n matrix safe for LU decomposition without pivoting."""
    cells = smooth_grid(rng, n, n, base=1.0, amplitude=0.8, noise_rel=noise_rel,
                        period=2.2 * n)
    for i in range(n):
        row_sum = sum(abs(cells[i * n + j]) for j in range(n) if j != i)
        cells[i * n + i] = row_sum + 1.0 + rng.uniform(0.0, 0.5)
    return cells


def rough_series(
    rng: random.Random,
    n: int,
    base: float = 1.0,
    amplitude: float = 1.0,
) -> List[float]:
    """A hostile input for trend prediction: independent draws with sign
    flips, no spatial correlation at all.  Used by the robustness study to
    drive run-time management into its conventional-protection fallback."""
    out = []
    for _ in range(n):
        v = base + amplitude * rng.uniform(-1.0, 1.0)
        if rng.random() < 0.5:
            v = -v
        out.append(v)
    return out
