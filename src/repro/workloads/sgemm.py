"""sgemm — general matrix multiplication (Parboil).

Table 1: *nested reduction loops*, detected inside the outer row loop.
"""
from __future__ import annotations

import random

from ..ir import F64, I64, IRBuilder, Function, Module, Reg, verify_module
from .base import Workload, WorkloadInput
from .inputs import smooth_grid

N_CAP = 40


class Sgemm(Workload):
    name = "sgemm"
    domain = "Linear algebra"
    description = "General matrix multiplication"

    def build(self) -> Module:
        module = Module("sgemm")
        module.add_global("a", N_CAP * N_CAP)
        module.add_global("b", N_CAP * N_CAP)
        module.add_global("c", N_CAP * N_CAP)

        func = Function("main", [Reg("n", I64)], F64)
        module.add_function(func)
        b = IRBuilder(func)
        ap = b.mov(b.global_addr("a"), hint="ap")
        bp = b.mov(b.global_addr("b"), hint="bp")
        cp = b.mov(b.global_addr("c"), hint="cp")
        n = func.params[0]

        with b.loop(0, n, hint="row") as i:  # the outer loop
            with b.loop(0, n, hint="col") as j:  # the detected loop
                acc = b.mov(0.0, hint="acc")
                with b.loop(0, n, hint="red") as k:
                    av = b.load(b.padd(ap, b.add(b.mul(i, n), k)))
                    bv = b.load(b.padd(bp, b.add(b.mul(k, n), j)))
                    b.mov(b.fadd(acc, b.fmul(av, bv)), dest=acc)
                b.store(acc, b.padd(cp, b.add(b.mul(i, n), j)))
        b.ret(0.0)
        verify_module(module)
        return module

    def make_input(self, rng: random.Random, scale: float = 1.0) -> WorkloadInput:
        n = min(self._dim(18, scale, 6), N_CAP)
        a = smooth_grid(rng, n, n, base=1.0, amplitude=0.7, noise_rel=0.02, period=9.0)
        bm = smooth_grid(rng, n, n, base=0.8, amplitude=0.6, noise_rel=0.02, period=7.0)
        return WorkloadInput(
            arrays={"a": a, "b": bm},
            args=[n],
            output=("c", n * n),
            loop_output=("c", n * n),
        )
