"""Workload abstraction.

Each of the nine paper benchmarks (Table 1) is a :class:`Workload`: it
builds a fresh IR module, generates training/test inputs (randomly, with
no intersection — the paper's discipline), and describes where the
program's output and the detected loop's output live in memory.
"""
from __future__ import annotations

import abc
import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ir.module import Module
from ..runtime.memory import Memory


def stable_seed(*parts) -> int:
    """Deterministic seed from mixed parts.

    Python's built-in string hashing is salted per process; experiments
    must reproduce across runs, so seeds are derived from CRC32 instead.
    """
    text = "\x1f".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF


@dataclass
class WorkloadInput:
    """One concrete input: arrays to place in memory plus main() arguments."""

    arrays: Dict[str, List[float]]
    args: List
    #: (global name, cell count) of the program's final output
    output: Tuple[str, int]
    #: (global name, cell count) of the detected loop's output region —
    #: used to measure false negatives (Figure 9b)
    loop_output: Tuple[str, int]

    def apply(self, memory: Memory) -> None:
        for name, values in self.arrays.items():
            memory.write_global(name, values)


class Workload(abc.ABC):
    """A benchmark program: module factory + input generator + metadata."""

    #: short name (Table 1 row)
    name: str = ""
    #: application domain (Table 1)
    domain: str = ""
    description: str = ""
    #: entry function
    main: str = "main"
    #: memory cells needed
    memory_size: int = 1 << 16

    @abc.abstractmethod
    def build(self) -> Module:
        """A fresh, unprotected module."""

    @abc.abstractmethod
    def make_input(self, rng: random.Random, scale: float = 1.0) -> WorkloadInput:
        """Generate one input; *scale* shrinks/grows the problem size."""

    # -- convenience ------------------------------------------------------
    def training_inputs(self, count: int = 3, seed: int = 1, scale: float = 1.0) -> List[WorkloadInput]:
        rng = random.Random(stable_seed(seed, self.name, "train"))
        return [self.make_input(rng, scale) for _ in range(count)]

    def test_inputs(self, count: int = 3, seed: int = 2, scale: float = 1.0) -> List[WorkloadInput]:
        # a disjoint stream: training and test inputs never coincide
        rng = random.Random(stable_seed(seed, self.name, "test"))
        return [self.make_input(rng, scale) for _ in range(count)]

    def fresh_memory(self, module: Module, inp: WorkloadInput) -> Memory:
        memory = Memory(self.memory_size)
        memory.load_globals(module)
        inp.apply(memory)
        return memory

    @staticmethod
    def _dim(base: int, scale: float, minimum: int = 4) -> int:
        return max(int(round(base * scale)), minimum)

    def __repr__(self) -> str:
        return f"<Workload {self.name}>"
