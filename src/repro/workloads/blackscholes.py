"""blackscholes — European option pricing (PARSEC).

Table 1: the prediction target is *a function call*
(``BlkSchlsEqEuroNoDiv``), detected inside the outer runs loop.  This is
the one benchmark where approximate memoization applies: option parameters
cluster around popular values, so the quantized lookup table hits almost
always, while the price series has no spatial trend (interpolation alone
performs poorly — Figure 8a).

The cumulative-normal helper is inlined into the pricing function so the
whole expensive computation is a single callee that RSkip can leave
unprotected under prediction.
"""
from __future__ import annotations

import random

from ..ir import CmpPred, F64, I64, IRBuilder, Function, Module, Reg, verify_module
from .base import Workload, WorkloadInput
from .inputs import clustered_values

OPT_CAP = 2048

_INV_SQRT_2PI = 0.3989422804014327
_A1, _A2, _A3, _A4, _A5 = (
    0.319381530, -0.356563782, 1.781477937, -1.821255978, 1.330274429,
)


def _emit_cndf(b: IRBuilder, x: Reg) -> Reg:
    """Inline the Abramowitz-Stegun cumulative normal approximation."""
    ax = b.fabs(x)
    k = b.fdiv(1.0, b.fadd(1.0, b.fmul(0.2316419, ax)))
    poly = b.mov(_A5, hint="poly")
    for coeff in (_A4, _A3, _A2, _A1):
        poly = b.fadd(coeff, b.fmul(k, poly))
    poly = b.fmul(k, poly)
    pdf = b.fmul(_INV_SQRT_2PI, b.exp(b.fneg(b.fmul(0.5, b.fmul(ax, ax)))))
    cnd_pos = b.fsub(1.0, b.fmul(pdf, poly))
    nonneg = b.fcmp(CmpPred.GE, x, 0.0)
    return b.select(nonneg, cnd_pos, b.fsub(1.0, cnd_pos))


class BlackScholes(Workload):
    name = "blackscholes"
    domain = "Finance"
    description = "Stock price prediction model"

    def build(self) -> Module:
        module = Module("blackscholes")
        for g in ("sp", "xs", "rs", "vs", "ts", "ot"):
            module.add_global(g, OPT_CAP)
        module.add_global("prices", OPT_CAP)

        # the expensive user function (the prediction target's callee)
        prot = Function(
            "BlkSchlsEqEuroNoDiv",
            [Reg("s", F64), Reg("x", F64), Reg("r", F64),
             Reg("v", F64), Reg("t", F64), Reg("otype", F64)],
            F64,
        )
        module.add_function(prot)
        pb = IRBuilder(prot)
        s, x, r, v, t, otype = prot.params
        sqrt_t = pb.sqrt(t)
        vol_sqrt_t = pb.fmul(v, sqrt_t)
        d1 = pb.fdiv(
            pb.fadd(pb.log(pb.fdiv(s, x)),
                    pb.fmul(pb.fadd(r, pb.fmul(0.5, pb.fmul(v, v))), t)),
            vol_sqrt_t,
        )
        d2 = pb.fsub(d1, vol_sqrt_t)
        nd1 = _emit_cndf(pb, d1)
        nd2 = _emit_cndf(pb, d2)
        fut = pb.fmul(x, pb.exp(pb.fneg(pb.fmul(r, t))))
        call_price = pb.fsub(pb.fmul(s, nd1), pb.fmul(fut, nd2))
        put_price = pb.fsub(
            pb.fmul(fut, pb.fsub(1.0, nd2)), pb.fmul(s, pb.fsub(1.0, nd1))
        )
        is_put = pb.fcmp(CmpPred.GT, otype, 0.5)
        pb.ret(pb.select(is_put, put_price, call_price))

        func = Function("main", [Reg("n", I64), Reg("runs", I64)], F64)
        module.add_function(func)
        b = IRBuilder(func)
        ptrs = {g: b.mov(b.global_addr(g), hint=g[0] + "p")
                for g in ("sp", "xs", "rs", "vs", "ts", "ot", "prices")}
        n, runs = func.params

        with b.loop(0, runs, hint="run"):
            with b.loop(0, n, hint="opt") as i:  # the detected loop
                args = [b.load(b.padd(ptrs[g], i)) for g in
                        ("sp", "xs", "rs", "vs", "ts", "ot")]
                price = b.call("BlkSchlsEqEuroNoDiv", args)
                b.store(price, b.padd(ptrs["prices"], i))
        b.ret(0.0)
        verify_module(module)
        return module

    def make_input(self, rng: random.Random, scale: float = 1.0) -> WorkloadInput:
        n = min(self._dim(300, scale, 24), OPT_CAP)
        spots = clustered_values(rng, n, (38.0, 44.0, 56.0, 70.0), 0.003)
        strikes = clustered_values(rng, n, (40.0, 52.0, 66.0), 0.002)
        rates = clustered_values(rng, n, (0.025, 0.05), 0.0)
        vols = clustered_values(rng, n, (0.25, 0.4), 0.003)
        times = clustered_values(rng, n, (0.5, 1.0, 2.0), 0.0)
        otypes = [float(rng.random() < 0.4) for _ in range(n)]
        return WorkloadInput(
            arrays={
                "sp": spots, "xs": strikes, "rs": rates,
                "vs": vols, "ts": times, "ot": otypes,
            },
            args=[n, 2],
            output=("prices", n),
            loop_output=("prices", n),
        )
