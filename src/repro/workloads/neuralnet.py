"""forwardprop / backprop — fully connected neural-network layers (Rodinia
backprop).

Table 1: both are *a reduction loop* at the top level (no enclosing loop).
forwardprop computes the sigmoid-activated forward pass of one layer;
backprop computes the hidden-layer deltas from the output deltas.
"""
from __future__ import annotations

import random

from ..ir import F64, I64, IRBuilder, Function, Module, Reg, verify_module
from .base import Workload, WorkloadInput
from .inputs import smooth_grid, smooth_series

IN_CAP = 256
OUT_CAP = 256


class ForwardProp(Workload):
    name = "forwardprop"
    domain = "Machine learning"
    description = "Forward propagation for the fully connected neural network"

    def build(self) -> Module:
        module = Module("forwardprop")
        module.add_global("inp", IN_CAP)
        module.add_global("w", IN_CAP * 64)
        module.add_global("bias", OUT_CAP)
        module.add_global("out", OUT_CAP)

        func = Function("main", [Reg("nin", I64), Reg("nout", I64)], F64)
        module.add_function(func)
        b = IRBuilder(func)
        ip = b.mov(b.global_addr("inp"), hint="ip")
        wp = b.mov(b.global_addr("w"), hint="wp")
        bp = b.mov(b.global_addr("bias"), hint="bp")
        op = b.mov(b.global_addr("out"), hint="op")
        nin, nout = func.params

        with b.loop(0, nout, hint="unit") as j:  # the detected loop
            acc = b.mov(0.0, hint="acc")
            with b.loop(0, nin, hint="red") as i:
                xv = b.load(b.padd(ip, i))
                wv = b.load(b.padd(wp, b.add(b.mul(i, nout), j)))
                b.mov(b.fadd(acc, b.fmul(xv, wv)), dest=acc)
            z = b.fadd(acc, b.load(b.padd(bp, j)))
            act = b.fdiv(1.0, b.fadd(1.0, b.exp(b.fneg(z))))
            b.store(act, b.padd(op, j))
        b.ret(0.0)
        verify_module(module)
        return module

    def make_input(self, rng: random.Random, scale: float = 1.0) -> WorkloadInput:
        nin = min(self._dim(96, scale, 12), IN_CAP)
        nout = min(self._dim(64, scale, 8), 64)
        x = smooth_series(rng, nin, base=0.4, amplitude=0.4, noise_rel=0.02, period=22.0)
        w = smooth_grid(rng, nin, nout, base=0.05, amplitude=0.12, noise_rel=0.03, period=16.0)
        bias = smooth_series(rng, nout, base=0.1, amplitude=0.2, noise_rel=0.05, period=20.0)
        return WorkloadInput(
            arrays={"inp": x, "w": w, "bias": bias},
            args=[nin, nout],
            output=("out", nout),
            loop_output=("out", nout),
        )


class BackProp(Workload):
    name = "backprop"
    domain = "Machine learning"
    description = "Backward propagation for the fully connected neural network"

    def build(self) -> Module:
        module = Module("backprop")
        module.add_global("w", IN_CAP * 64)
        module.add_global("delta", OUT_CAP)
        module.add_global("hidden", IN_CAP)
        module.add_global("dh", IN_CAP)

        func = Function("main", [Reg("nhid", I64), Reg("nout", I64)], F64)
        module.add_function(func)
        b = IRBuilder(func)
        wp = b.mov(b.global_addr("w"), hint="wp")
        dp = b.mov(b.global_addr("delta"), hint="dp")
        hp = b.mov(b.global_addr("hidden"), hint="hp")
        op = b.mov(b.global_addr("dh"), hint="op")
        nhid, nout = func.params

        with b.loop(0, nhid, hint="hid") as i:  # the detected loop
            acc = b.mov(0.0, hint="acc")
            with b.loop(0, nout, hint="red") as j:
                wv = b.load(b.padd(wp, b.add(b.mul(i, nout), j)))
                dv = b.load(b.padd(dp, j))
                b.mov(b.fadd(acc, b.fmul(wv, dv)), dest=acc)
            h = b.load(b.padd(hp, i))
            grad = b.fmul(b.fmul(h, b.fsub(1.0, h)), acc)
            b.store(grad, b.padd(op, i))
        b.ret(0.0)
        verify_module(module)
        return module

    def make_input(self, rng: random.Random, scale: float = 1.0) -> WorkloadInput:
        nhid = min(self._dim(80, scale, 10), IN_CAP)
        nout = min(self._dim(56, scale, 8), 64)
        w = smooth_grid(rng, nhid, nout, base=0.3, amplitude=0.2, noise_rel=0.02, period=34.0)
        delta = smooth_series(rng, nout, base=0.6, amplitude=0.25, noise_rel=0.02, period=40.0)
        hidden = [min(max(v, 0.05), 0.95) for v in
                  smooth_series(rng, nhid, base=0.5, amplitude=0.3, noise_rel=0.02, period=52.0)]
        return WorkloadInput(
            arrays={"w": w, "delta": delta, "hidden": hidden},
            args=[nhid, nout],
            output=("dh", nhid),
            loop_output=("dh", nhid),
        )
