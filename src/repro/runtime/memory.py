"""Flat runtime memory.

One linear array of numeric cells.  Address 0 is reserved (a null guard),
globals are laid out at load time and ``alloc`` bumps a pointer — there is
no free, matching the arena-style allocation of the benchmark programs.

Per the paper's assumption memory is ECC-protected: the fault injector
never flips bits in memory cells at rest, only in register state.
"""
from __future__ import annotations

from typing import Dict, Sequence

from ..ir.module import Module
from .errors import SegfaultError

DEFAULT_SIZE = 1 << 16


class Memory:
    """Bounds-checked flat memory with global layout and bump allocation."""

    def __init__(self, size: int = DEFAULT_SIZE):
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self.cells = [0.0] * size
        self.globals: Dict[str, int] = {}
        self._brk = 8  # skip the null guard region

    # -- layout -----------------------------------------------------------
    def load_globals(self, module: Module) -> None:
        """Lay out and initialize the module's globals."""
        for gvar in module.globals.values():
            base = self.allocate(gvar.size)
            self.globals[gvar.name] = base
            if gvar.init is not None:
                for i, v in enumerate(gvar.init):
                    self.cells[base + i] = v

    def allocate(self, size: int) -> int:
        if size <= 0:
            raise SegfaultError(self._brk, f"allocation of non-positive size {size}")
        base = self._brk
        self._brk += int(size)
        if self._brk > self.size:
            raise SegfaultError(base, "out of memory")
        return base

    def global_addr(self, name: str) -> int:
        try:
            return self.globals[name]
        except KeyError:
            raise SegfaultError(None, f"unknown global @{name}") from None

    # -- access -------------------------------------------------------------
    def load(self, addr) -> float:
        idx = self._check(addr)
        return self.cells[idx]

    def store(self, addr, value) -> None:
        idx = self._check(addr)
        self.cells[idx] = value

    def _check(self, addr) -> int:
        if isinstance(addr, float):
            if not addr.is_integer():
                raise SegfaultError(addr, f"non-integer address {addr!r}")
            addr = int(addr)
        if not isinstance(addr, int):
            raise SegfaultError(addr, f"invalid address {addr!r}")
        if addr < 8 or addr >= self.size:
            raise SegfaultError(addr)
        return addr

    # -- convenience for harnesses ------------------------------------------
    def write_array(self, base: int, values: Sequence[float]) -> None:
        if base < 8 or base + len(values) > self.size:
            raise SegfaultError(base, "array write out of bounds")
        self.cells[base : base + len(values)] = list(values)

    def read_array(self, base: int, count: int) -> list:
        if base < 8 or base + count > self.size:
            raise SegfaultError(base, "array read out of bounds")
        return self.cells[base : base + count]

    def write_global(self, name: str, values: Sequence[float], offset: int = 0) -> None:
        self.write_array(self.global_addr(name) + offset, values)

    def read_global(self, name: str, count: int, offset: int = 0) -> list:
        return self.read_array(self.global_addr(name) + offset, count)
