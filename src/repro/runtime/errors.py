"""Runtime trap hierarchy.

These map one-to-one onto the outcome classes of the paper's fault-injection
study (section 7.2): illegal memory accesses become *Segfault*, abnormal
terminations (arithmetic traps, corrupted control flow, stack overflow)
become *Core dump*, and exceeding the step budget becomes *Hang*.
"""
from __future__ import annotations


class TrapError(Exception):
    """Base class of all runtime traps."""


class SegfaultError(TrapError):
    """Illegal memory access (out-of-bounds or non-integer address)."""

    def __init__(self, address, message: str = ""):
        super().__init__(message or f"segmentation fault at address {address!r}")
        self.address = address


class CoreDumpError(TrapError):
    """System crash / abnormal termination (arithmetic trap, bad call, ...)."""


class HangError(TrapError):
    """The program did not terminate within its step budget."""

    def __init__(self, steps: int):
        super().__init__(f"program exceeded step budget ({steps} dynamic instructions)")
        self.steps = steps


class FaultDetectedError(TrapError):
    """A protection scheme detected an uncorrectable fault (detection-only
    schemes like SWIFT raise this instead of recovering)."""
