"""Superscalar timing model.

The paper's performance argument rests on two micro-architectural effects:

* duplicated instruction streams are *independent*, so an out-of-order core
  hides part of their cost by issuing them in parallel (SWIFT-R runs 3.48x
  the instructions at only 2.33x the time thanks to a 1.47x IPC gain);
* validation code at synchronization points adds *dependent* compares and
  data-dependent branches, which serialize and cap that gain (the conv2d
  effect).

This model captures exactly those effects: an unbounded out-of-order window
with a finite issue width, per-opcode latencies (`repro.analysis.costmodel.
LATENCY`), true register/memory dataflow dependences, an in-order fetch
front end and a 2-bit branch predictor whose mispredictions flush the
front end.  It runs *online* during interpretation — no trace is stored.
"""
from __future__ import annotations

from typing import Dict, Tuple

from ..analysis.costmodel import LATENCY
from ..ir.instructions import Opcode

_LAT = {op: LATENCY[op] for op in Opcode}


#: Named core configurations for sensitivity studies: a narrow in-order
#: core, the default out-of-order core (the evaluation's baseline,
#: modelled on the paper's Xeon E31230), and a wide out-of-order core.
CORE_PRESETS = {
    "inorder-2": {"width": 2, "mispredict_penalty": 8},
    "ooo-4": {"width": 4, "mispredict_penalty": 12},
    "ooo-8": {"width": 8, "mispredict_penalty": 14},
}


class TimingModel:
    """Online cycle-level schedule of the dynamic instruction stream."""

    def __init__(self, width: int = 4, mispredict_penalty: int = 12):
        if width < 1:
            raise ValueError("issue width must be >= 1")
        self.width = width
        self.mispredict_penalty = mispredict_penalty

        self._slots: Dict[int, int] = {}
        self._count = 0
        self._fetch_base = 0  # cycle at which fetch resumed after last flush
        self._fetch_count0 = 0  # instruction count at that point
        self._max_finish = 0
        self._mem_time: Dict[int, int] = {}
        self._branch_state: Dict[Tuple, int] = {}
        self._prune_mark = 0

    @classmethod
    def from_preset(cls, name: str) -> "TimingModel":
        try:
            return cls(**CORE_PRESETS[name])
        except KeyError:
            raise KeyError(
                f"unknown core preset {name!r}; available: {sorted(CORE_PRESETS)}"
            ) from None

    # -- core ---------------------------------------------------------------
    @property
    def fetch_time(self) -> int:
        """Cycle at which the next instruction leaves the front end."""
        return self._fetch_base + (self._count - self._fetch_count0) // self.width

    def issue(self, ready: int, latency: int) -> int:
        """Issue one instruction whose operands are ready at *ready*;
        returns its completion cycle."""
        cycle = ready
        fetch = self.fetch_time
        if fetch > cycle:
            cycle = fetch
        slots = self._slots
        width = self.width
        while slots.get(cycle, 0) >= width:
            cycle += 1
        slots[cycle] = slots.get(cycle, 0) + 1
        self._count += 1
        finish = cycle + latency
        if finish > self._max_finish:
            self._max_finish = finish
        if self._count - self._prune_mark > 65536:
            self._prune(fetch)
        return finish

    def _prune(self, floor: int) -> None:
        """Drop slot entries that can never be targeted again."""
        self._slots = {c: n for c, n in self._slots.items() if c >= floor}
        self._prune_mark = self._count

    def op(self, opcode: Opcode, ready: int) -> int:
        return self.issue(ready, _LAT[opcode])

    # -- memory dependences ----------------------------------------------------
    def load(self, addr: int, ready: int) -> int:
        dep = self._mem_time.get(addr, 0)
        if dep > ready:
            ready = dep
        return self.issue(ready, _LAT[Opcode.LOAD])

    def store(self, addr: int, ready: int) -> int:
        finish = self.issue(ready, _LAT[Opcode.STORE])
        self._mem_time[addr] = finish
        return finish

    # -- branches -----------------------------------------------------------
    def branch(self, static_id: Tuple, taken: bool, ready: int) -> int:
        """Conditional branch through the 2-bit predictor; a misprediction
        stalls fetch until resolution plus the flush penalty."""
        finish = self.issue(ready, _LAT[Opcode.CBR])
        state = self._branch_state.get(static_id, 2)  # weakly taken
        predicted = state >= 2
        if taken:
            if state < 3:
                self._branch_state[static_id] = state + 1
        else:
            if state > 0:
                self._branch_state[static_id] = state - 1
        if predicted != taken:
            resume = finish + self.mispredict_penalty
            if resume > self.fetch_time:
                self._fetch_base = resume
                self._fetch_count0 = self._count
        return finish

    # -- intrinsic cost charging ----------------------------------------------
    def charge(self, opcodes, ready: int) -> int:
        """Issue charged operations (predictor bookkeeping).

        Ops are issued data-parallel at *ready* — validation work for
        different elements is independent, so only issue bandwidth paces
        it — and the latest completion is returned.
        """
        t_end = ready
        for op in opcodes:
            t = self.issue(ready, _LAT[op])
            if t > t_end:
                t_end = t
        return t_end

    # -- results ------------------------------------------------------------
    @property
    def cycles(self) -> int:
        return self._max_finish

    @property
    def instructions(self) -> int:
        return self._count

    @property
    def ipc(self) -> float:
        if self._max_finish == 0:
            return 0.0
        return self._count / self._max_finish
