"""A reference interpreter with execution tracing.

Two jobs:

* **differential testing** — an independent, deliberately simple
  evaluator whose results the fast interpreter must match (the test suite
  runs both over the same programs);
* **debugging** — it records a bounded trace of executed instructions
  (function, block, instruction text, produced value), so a misbehaving
  transform can be diffed against the original program up to the first
  divergence.

It shares :class:`repro.runtime.memory.Memory` and the intrinsic
convention with the fast interpreter but none of its code.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.function import Function
from ..ir.instructions import CmpPred, Instr, Opcode
from ..ir.module import Module
from ..ir.printer import format_instr
from ..ir.values import Const, GlobalAddr, Reg, Value
from .errors import CoreDumpError, HangError
from .memory import Memory

_HUGE_INT = 1 << 128
_INT_MASK64 = (1 << 64) - 1


@dataclass
class TraceEvent:
    step: int
    function: str
    block: str
    text: str
    value: object = None

    def __str__(self) -> str:
        suffix = "" if self.value is None else f"   ; = {self.value!r}"
        return f"{self.step:>8}  @{self.function}/{self.block}: {self.text}{suffix}"


@dataclass
class Trace:
    events: List[TraceEvent] = field(default_factory=list)
    limit: int = 10_000
    truncated: bool = False

    def append(self, event: TraceEvent) -> None:
        if len(self.events) >= self.limit:
            self.truncated = True
            return
        self.events.append(event)

    def render(self, last: Optional[int] = None) -> str:
        events = self.events if last is None else self.events[-last:]
        lines = [str(e) for e in events]
        if self.truncated:
            lines.append(f"... trace truncated at {self.limit} events")
        return "\n".join(lines)

    def first_divergence(self, other: "Trace") -> Optional[int]:
        """Index of the first differing event, or None if one trace is a
        prefix of the other."""
        for k, (a, b) in enumerate(zip(self.events, other.events)):
            same_value = a.value == b.value or (
                isinstance(a.value, float)
                and isinstance(b.value, float)
                and math.isnan(a.value)
                and math.isnan(b.value)
            )
            if a.text != b.text or not same_value:
                return k
        return None


_CMP = {
    CmpPred.EQ: lambda a, b: a == b,
    CmpPred.NE: lambda a, b: a != b,
    CmpPred.LT: lambda a, b: a < b,
    CmpPred.LE: lambda a, b: a <= b,
    CmpPred.GT: lambda a, b: a > b,
    CmpPred.GE: lambda a, b: a >= b,
}


class ReferenceInterpreter:
    """Straight-line, dictionary-dispatch evaluation of the IR.

    No decoding, no timing, no fault hooks — each instruction is handled
    by reading the Instr object directly.  Intentionally boring.
    """

    def __init__(
        self,
        module: Module,
        memory: Optional[Memory] = None,
        max_steps: int = 50_000_000,
        trace: Optional[Trace] = None,
        trace_functions: Optional[Sequence[str]] = None,
    ):
        self.module = module
        self.memory = memory if memory is not None else Memory()
        if not self.memory.globals and module.globals:
            self.memory.load_globals(module)
        self.max_steps = max_steps
        self.steps = 0
        self.trace = trace
        self.trace_functions = set(trace_functions) if trace_functions else None
        self.intrinsics: Dict[str, object] = {}

    def register_intrinsics(self, table) -> None:
        self.intrinsics.update(table)

    # -- evaluation ------------------------------------------------------
    def _value(self, value: Value, regs: Dict[str, object]):
        if isinstance(value, Reg):
            return regs[value.name]
        if isinstance(value, GlobalAddr):
            return self.memory.global_addr(value.name)
        assert isinstance(value, Const)
        return value.value

    def run(self, func_name: str, args: Sequence = ()):
        func = self.module.get_function(func_name)
        return self._call(func, list(args), depth=0)

    def _call(self, func: Function, args, depth: int):
        if depth > 64:
            raise CoreDumpError("call depth exceeded")
        regs = {p.name: a for p, a in zip(func.params, args)}
        label = func.block_order()[0]
        trace_this = self.trace is not None and (
            self.trace_functions is None or func.name in self.trace_functions
        )

        while True:
            block = func.blocks[label]
            jumped = False
            for instr in block.instrs:
                self.steps += 1
                if self.steps > self.max_steps:
                    raise HangError(self.steps)
                result = self._eval(instr, regs, func, depth)
                if trace_this:
                    value = regs.get(instr.dest.name) if instr.dest else None
                    self.trace.append(
                        TraceEvent(self.steps, func.name, label,
                                   format_instr(instr), value)
                    )
                if result is not None:
                    kind, payload = result
                    if kind == "jump":
                        label = payload
                        jumped = True
                        break
                    return payload
            if not jumped:
                raise CoreDumpError(f"block {label} fell through")

    def _eval(self, instr: Instr, regs, func: Function, depth: int):
        op = instr.op
        mem = self.memory
        val = lambda v: self._value(v, regs)  # noqa: E731

        if op is Opcode.MOV:
            regs[instr.dest.name] = val(instr.args[0])
        elif op is Opcode.LOAD:
            regs[instr.dest.name] = mem.load(val(instr.args[0]))
        elif op is Opcode.STORE:
            mem.store(val(instr.args[1]), val(instr.args[0]))
        elif op in (Opcode.ADD, Opcode.FADD):
            regs[instr.dest.name] = val(instr.args[0]) + val(instr.args[1])
        elif op in (Opcode.SUB, Opcode.FSUB):
            regs[instr.dest.name] = val(instr.args[0]) - val(instr.args[1])
        elif op in (Opcode.MUL, Opcode.FMUL):
            r = val(instr.args[0]) * val(instr.args[1])
            # lazy int64 wrap, same policy as the fast interpreter
            if isinstance(r, int) and (r > _HUGE_INT or r < -_HUGE_INT):
                r &= _INT_MASK64
            regs[instr.dest.name] = r
        elif op is Opcode.SDIV:
            a, b = val(instr.args[0]), val(instr.args[1])
            if b == 0:
                raise CoreDumpError("integer division by zero")
            q = abs(a) // abs(b)
            regs[instr.dest.name] = q if (a >= 0) == (b >= 0) else -q
        elif op is Opcode.SREM:
            a, b = val(instr.args[0]), val(instr.args[1])
            if b == 0:
                raise CoreDumpError("integer remainder by zero")
            q = abs(a) // abs(b)
            q = q if (a >= 0) == (b >= 0) else -q
            regs[instr.dest.name] = a - b * q
        elif op is Opcode.FDIV:
            a, b = val(instr.args[0]), val(instr.args[1])
            if b == 0:
                regs[instr.dest.name] = math.nan if a == 0 else math.copysign(math.inf, a)
            else:
                regs[instr.dest.name] = a / b
        elif op is Opcode.FNEG:
            regs[instr.dest.name] = -val(instr.args[0])
        elif op is Opcode.FABS:
            regs[instr.dest.name] = abs(val(instr.args[0]))
        elif op is Opcode.SQRT:
            a = val(instr.args[0])
            regs[instr.dest.name] = math.sqrt(a) if a >= 0 else math.nan
        elif op is Opcode.EXP:
            try:
                regs[instr.dest.name] = math.exp(val(instr.args[0]))
            except OverflowError:
                regs[instr.dest.name] = math.inf
        elif op is Opcode.LOG:
            a = val(instr.args[0])
            try:
                regs[instr.dest.name] = math.log(a)
            except ValueError:
                regs[instr.dest.name] = math.nan
        elif op is Opcode.SIN:
            a = val(instr.args[0])
            regs[instr.dest.name] = math.sin(a) if math.isfinite(a) else math.nan
        elif op is Opcode.COS:
            a = val(instr.args[0])
            regs[instr.dest.name] = math.cos(a) if math.isfinite(a) else math.nan
        elif op is Opcode.FLOOR:
            a = val(instr.args[0])
            regs[instr.dest.name] = math.floor(a) if math.isfinite(a) else a
        elif op is Opcode.SITOFP:
            regs[instr.dest.name] = float(val(instr.args[0]))
        elif op is Opcode.FPTOSI:
            try:
                regs[instr.dest.name] = int(val(instr.args[0]))
            except (ValueError, OverflowError):
                raise CoreDumpError("float-to-int conversion trap") from None
        elif op in (Opcode.ICMP, Opcode.FCMP):
            a, b = val(instr.args[0]), val(instr.args[1])
            regs[instr.dest.name] = 1 if _CMP[instr.pred](a, b) else 0
        elif op is Opcode.SELECT:
            c = val(instr.args[0])
            taken = c != 0 and c == c
            regs[instr.dest.name] = val(instr.args[1]) if taken else val(instr.args[2])
        elif op is Opcode.AND:
            regs[instr.dest.name] = int(val(instr.args[0])) & int(val(instr.args[1]))
        elif op is Opcode.OR:
            regs[instr.dest.name] = int(val(instr.args[0])) | int(val(instr.args[1]))
        elif op is Opcode.XOR:
            regs[instr.dest.name] = int(val(instr.args[0])) ^ int(val(instr.args[1]))
        elif op is Opcode.SHL:
            r = int(val(instr.args[0])) << (int(val(instr.args[1])) & 63)
            if r > _HUGE_INT or r < -_HUGE_INT:
                r &= _INT_MASK64
            regs[instr.dest.name] = r
        elif op is Opcode.LSHR:
            regs[instr.dest.name] = (int(val(instr.args[0])) & ((1 << 64) - 1)) >> (
                int(val(instr.args[1])) & 63
            )
        elif op is Opcode.ALLOC:
            regs[instr.dest.name] = mem.allocate(int(val(instr.args[0])))
        elif op is Opcode.BR:
            return ("jump", instr.labels[0])
        elif op is Opcode.CBR:
            c = val(instr.args[0])
            taken = c != 0 and c == c
            return ("jump", instr.labels[0] if taken else instr.labels[1])
        elif op is Opcode.RET:
            return ("ret", val(instr.args[0]) if instr.args else None)
        elif op is Opcode.CALL:
            callee = self.module.functions.get(instr.callee)
            if callee is None:
                raise CoreDumpError(f"call to unknown function @{instr.callee}")
            result = self._call(callee, [val(a) for a in instr.args], depth + 1)
            if instr.dest is not None:
                regs[instr.dest.name] = result
        elif op is Opcode.INTRIN:
            fn = self.intrinsics.get(instr.callee)
            if fn is None:
                raise CoreDumpError(f"unknown intrinsic {instr.callee!r}")
            result, charge = fn(self, tuple(val(a) for a in instr.args))
            self.steps += len(charge)
            if instr.dest is not None:
                regs[instr.dest.name] = result
        else:  # pragma: no cover - exhaustive
            raise CoreDumpError(f"unhandled opcode {op}")
        return None


def trace_run(
    module: Module,
    func_name: str,
    args: Sequence,
    memory: Optional[Memory] = None,
    limit: int = 10_000,
    intrinsics=None,
    functions: Optional[Sequence[str]] = None,
):
    """Run under the reference interpreter with tracing; returns
    ``(trace, return_value)``."""
    trace = Trace(limit=limit)
    interp = ReferenceInterpreter(
        module, memory=memory, trace=trace, trace_functions=functions
    )
    if intrinsics:
        interp.register_intrinsics(intrinsics)
    value = interp.run(func_name, args)
    return trace, value
