"""Outcome classes of the fault-injection study (paper section 7.2)."""
from __future__ import annotations

import enum
import math
from typing import Sequence


class Outcome(enum.Enum):
    """Five-way classification of a fault-injection run.

    The paper "considers even small output errors as bad quality and only
    100% of output quality as Correct" — :func:`classify_output` therefore
    uses exact equality (up to bitwise float identity) against the golden
    output.
    """

    CORRECT = "Correct"
    SDC = "SDC"
    SEGFAULT = "Segfault"
    CORE_DUMP = "Core dump"
    HANG = "Hang"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def outputs_equal(golden: Sequence[float], observed: Sequence[float]) -> bool:
    """Exact output comparison (NaNs compare equal to NaNs positionally)."""
    if len(golden) != len(observed):
        return False
    for g, o in zip(golden, observed):
        if g == o:
            continue
        if isinstance(g, float) and isinstance(o, float):
            if math.isnan(g) and math.isnan(o):
                continue
        return False
    return True


def classify_output(golden: Sequence[float], observed: Sequence[float]) -> Outcome:
    """Correct vs silent data corruption for a run that terminated cleanly."""
    return Outcome.CORRECT if outputs_equal(golden, observed) else Outcome.SDC
