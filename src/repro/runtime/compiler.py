"""Closure-compiling execution backend.

Lowers each function once into *threaded code*: every basic block becomes
a list of specialized Python closures over a slot-indexed register file
(a plain list — register names are resolved to integer slots at compile
time, so the hot loop never touches a dict).  Operand fetch is specialized
per operand (constant folded into the generated source, register slot
index baked in, global address resolved through a per-run table), and
comparison predicates are baked into the generated expression.  Runs of
straight-line instructions are fused into a single *superinstruction*
closure that bumps ``steps`` and the per-opcode ``counts`` in bulk.

The backend serves **clean mode only** — no fault plan, no timing model,
no profile.  Instrumented runs stay on the reference
:class:`~repro.runtime.interpreter.Interpreter`; the dispatch lives in
:mod:`repro.runtime.backend`.

Observational equivalence with the reference interpreter is a hard
contract (enforced by difftest oracle O4):

* identical ``RunResult.value``, ``steps``, per-opcode ``counts`` and
  memory state for completed runs;
* identical trap behaviour — ``CoreDumpError``/``SegfaultError`` at the
  same instruction, ``HangError`` with the exact same step count (bulk
  accounting commits per fused segment *before* executing it; a segment
  that would cross ``max_steps`` is re-executed instruction-by-instruction
  with reference accounting, so the hang — or any trap that precedes it —
  surfaces exactly where the reference interpreter raises it);
* the same lazy int64 wrap policy (``MUL``/``SHL`` fold back to 64 bits
  once past 2**128) and NaN branch rules (a NaN condition falls through).

Known, documented divergence: after a *trap*, ``steps``/``region_steps``
may over/under-count by part of the final fused segment (the campaigns
only classify the trap type, and hang step counts are exact via replay).

Compiled programs are cached module-fingerprint-keyed (sha256 of the
printed module text), so campaign workers and the difftest runner pay
compilation once per distinct module per process.  As with the reference
interpreter's decoded-instruction cache, transforming a module in place
invalidates nothing by identity — the fingerprint changes, so the next
:func:`compile_module` call recompiles.
"""
from __future__ import annotations

import hashlib
import math
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.function import Function
from ..ir.instructions import Opcode
from ..ir.module import Module
from ..ir.printer import format_module
from ..ir.values import Const, GlobalAddr, Reg
from ..obs.events import enabled as obs_enabled, span as obs_span
from .errors import CoreDumpError, HangError
from .interpreter import (
    _CODE,
    _HUGE_INT,
    _INT_MASK64,
    _PRED,
    DEFAULT_MAX_STEPS,
    MAX_CALL_DEPTH,
    OPCODES,
    OPERAND_ARITY,
    IntrinsicFn,
    RunResult,
)
from .memory import Memory

_CALL = _CODE[Opcode.CALL]
_INTRIN = _CODE[Opcode.INTRIN]
_BR = _CODE[Opcode.BR]
_CBR = _CODE[Opcode.CBR]
_RET = _CODE[Opcode.RET]
_TERMINATORS = (_BR, _CBR, _RET)
#: codes that write a result register (used to route a missing dest to the
#: scratch slot, mirroring the reference interpreter's ``regs[None] = ...``)
_VALUE_OPS = frozenset(
    _CODE[op] for op in Opcode
    if op not in (Opcode.STORE, Opcode.BR, Opcode.CBR, Opcode.RET,
                  Opcode.CALL, Opcode.INTRIN)
)

_CMP_SYMBOL = {0: "==", 1: "!=", 2: "<", 3: "<=", 4: ">", 5: ">="}


def _exp_sat(a):
    try:
        return math.exp(a)
    except OverflowError:
        return math.inf


def _log_sat(a):
    try:
        return math.log(a)
    except ValueError:
        return math.nan


#: globals every generated closure is exec'd against
_BASE_ENV = {
    "CoreDumpError": CoreDumpError,
    "HangError": HangError,
    "_nan": math.nan,
    "_inf": math.inf,
    "_sqrt": math.sqrt,
    "_sin": math.sin,
    "_cos": math.cos,
    "_floor": math.floor,
    "_isfinite": math.isfinite,
    "_copysign": math.copysign,
    "_exp": _exp_sat,
    "_log": _log_sat,
    "_H": _HUGE_INT,
    "_M": _INT_MASK64,
}


# -- record decoding ----------------------------------------------------------
def _decode_function(func: Function, gindex: Dict[str, int]):
    """Lower *func* to per-block instruction records over register slots.

    Returns ``(nregs, nparams, labels, records, undeclared)`` where each
    record is ``[code, dest_slot_or_None, specs, extra]`` and a spec is
    ``("r", slot) | ("c", value) | ("gi", global_index) | ("gn", name)``.
    Blocks are truncated after their first terminator (the reference
    interpreter never executes trailing instructions either).
    """
    slots: Dict[str, int] = {}

    def slot(name: str) -> int:
        s = slots.get(name)
        if s is None:
            s = len(slots)
            slots[name] = s
        return s

    for p in func.params:
        slot(p.name)
    nparams = len(func.params)
    labels = list(func.block_order())
    lindex = {lbl: i for i, lbl in enumerate(labels)}
    undeclared: List[str] = []
    need_scratch = False
    records: List[List[list]] = []

    for lbl in labels:
        recs: List[list] = []
        for instr in func.blocks[lbl].instrs:
            code = _CODE[instr.op]
            want = OPERAND_ARITY[code]
            if want is not None and len(instr.args) not in want:
                raise CoreDumpError(
                    f"@{func.name}:{lbl}: {instr.op.value} expects "
                    f"{' or '.join(map(str, want))} operand(s), "
                    f"got {len(instr.args)}"
                )
            specs = []
            for v in instr.args:
                if isinstance(v, Reg):
                    specs.append(("r", slot(v.name)))
                elif isinstance(v, GlobalAddr):
                    gi = gindex.get(v.name)
                    if gi is None:
                        if v.name not in undeclared:
                            undeclared.append(v.name)
                        specs.append(("gn", v.name))
                    else:
                        specs.append(("gi", gi))
                else:
                    assert isinstance(v, Const)
                    specs.append(("c", v.value))
            if instr.op is Opcode.BR:
                extra = lindex[instr.labels[0]]
            elif instr.op is Opcode.CBR:
                extra = (lindex[instr.labels[0]], lindex[instr.labels[1]])
            elif instr.op in (Opcode.ICMP, Opcode.FCMP):
                extra = _PRED[instr.pred]
            elif instr.op in (Opcode.CALL, Opcode.INTRIN):
                extra = instr.callee
            else:
                extra = None
            if instr.dest is not None:
                dest = slot(instr.dest.name)
            elif code in _VALUE_OPS:
                need_scratch = True
                dest = -1  # patched to the scratch slot below
            else:
                dest = None
            recs.append([code, dest, tuple(specs), extra])
            if code in _TERMINATORS:
                break
        records.append(recs)

    nregs = len(slots)
    if need_scratch:
        scratch = nregs
        nregs += 1
        for recs in records:
            for rec in recs:
                if rec[1] == -1:
                    rec[1] = scratch
    return nregs, nparams, labels, records, undeclared


# -- code generation ----------------------------------------------------------
class _Closure:
    """Source being generated for one closure (fused segment or unit)."""

    def __init__(self):
        self.lines: List[str] = []
        self.consts: List[object] = []
        self.needs: set = set()

    def expr(self, spec) -> str:
        kind, payload = spec
        if kind == "r":
            return f"R[{payload}]"
        if kind == "gi":
            self.needs.add("G")
            return f"G[{payload}]"
        if kind == "gn":
            self.needs.add("mem")
            return f"mem.global_addr({payload!r})"
        v = payload
        if isinstance(v, int):
            return f"({v!r})" if v < 0 else repr(v)
        if isinstance(v, float) and math.isfinite(v):
            return f"({v!r})" if v < 0 else repr(v)
        self.consts.append(v)
        return f"K{len(self.consts) - 1}"


def _emit(cl: _Closure, rec, fell_msg: Optional[str] = None) -> None:
    """Append the statements for one instruction record to *cl*."""
    code, d, specs, extra = rec
    out = cl.lines.append
    ex = cl.expr
    op = OPCODES[code]

    if op in (Opcode.ADD, Opcode.FADD):
        out(f"R[{d}] = {ex(specs[0])} + {ex(specs[1])}")
    elif op in (Opcode.SUB, Opcode.FSUB):
        out(f"R[{d}] = {ex(specs[0])} - {ex(specs[1])}")
    elif op is Opcode.FMUL:
        out(f"R[{d}] = {ex(specs[0])} * {ex(specs[1])}")
    elif op is Opcode.MOV:
        out(f"R[{d}] = {ex(specs[0])}")
    elif op is Opcode.MUL:
        out(f"r = {ex(specs[0])} * {ex(specs[1])}")
        out("if r.__class__ is int and (r > _H or r < -_H):")
        out("    r &= _M")
        out(f"R[{d}] = r")
    elif op is Opcode.LOAD:
        cl.needs.add("cells")
        out(f"a = {ex(specs[0])}")
        out("if a.__class__ is int and 8 <= a < SZ:")
        out(f"    R[{d}] = cells[a]")
        out("else:")
        out(f"    R[{d}] = mem.load(a)")
    elif op is Opcode.STORE:
        cl.needs.add("cells")
        out(f"a = {ex(specs[0])}")
        out(f"b = {ex(specs[1])}")
        out("if b.__class__ is int and 8 <= b < SZ:")
        out("    cells[b] = a")
        out("else:")
        out("    mem.store(b, a)")
    elif op in (Opcode.ICMP, Opcode.FCMP):
        sym = _CMP_SYMBOL[extra]
        out(f"R[{d}] = 1 if {ex(specs[0])} {sym} {ex(specs[1])} else 0")
    elif op is Opcode.CBR:
        ti, fi = extra
        out(f"a = {ex(specs[0])}")
        out(f"return {ti} if (a != 0 and a == a) else {fi}")
    elif op is Opcode.BR:
        out(f"return {extra}")
    elif op is Opcode.RET:
        if specs:
            out(f"return ({ex(specs[0])},)")
        else:
            out("return (None,)")
    elif op is Opcode.SDIV:
        out(f"a = {ex(specs[0])}")
        out(f"b = {ex(specs[1])}")
        out("try:")
        out("    q = abs(a) // abs(b)")
        out("except ZeroDivisionError:")
        out("    raise CoreDumpError('integer division by zero') from None")
        out(f"R[{d}] = q if (a >= 0) == (b >= 0) else -q")
    elif op is Opcode.SREM:
        out(f"a = {ex(specs[0])}")
        out(f"b = {ex(specs[1])}")
        out("try:")
        out("    q = abs(a) // abs(b)")
        out("except ZeroDivisionError:")
        out("    raise CoreDumpError('integer remainder by zero') from None")
        out(f"R[{d}] = a - b * q * (1 if (a >= 0) == (b >= 0) else -1)")
    elif op is Opcode.FDIV:
        out(f"a = {ex(specs[0])}")
        out(f"b = {ex(specs[1])}")
        out("try:")
        out(f"    R[{d}] = a / b")
        out("except ZeroDivisionError:")
        out(f"    R[{d}] = _nan if a == 0 else _copysign(_inf, a)")
    elif op is Opcode.FNEG:
        out(f"R[{d}] = -{ex(specs[0])}")
    elif op is Opcode.FABS:
        out(f"R[{d}] = abs({ex(specs[0])})")
    elif op is Opcode.SQRT:
        out(f"a = {ex(specs[0])}")
        out(f"R[{d}] = _sqrt(a) if a >= 0 else _nan")
    elif op is Opcode.EXP:
        out(f"R[{d}] = _exp({ex(specs[0])})")
    elif op is Opcode.LOG:
        out(f"R[{d}] = _log({ex(specs[0])})")
    elif op is Opcode.SIN:
        out(f"a = {ex(specs[0])}")
        out(f"R[{d}] = _sin(a) if _isfinite(a) else _nan")
    elif op is Opcode.COS:
        out(f"a = {ex(specs[0])}")
        out(f"R[{d}] = _cos(a) if _isfinite(a) else _nan")
    elif op is Opcode.FLOOR:
        out(f"a = {ex(specs[0])}")
        out(f"R[{d}] = _floor(a) if _isfinite(a) else a")
    elif op is Opcode.SITOFP:
        out(f"R[{d}] = float({ex(specs[0])})")
    elif op is Opcode.FPTOSI:
        out("try:")
        out(f"    R[{d}] = int({ex(specs[0])})")
        out("except (ValueError, OverflowError):")
        out("    raise CoreDumpError('float-to-int conversion trap') from None")
    elif op is Opcode.SELECT:
        out(f"a = {ex(specs[0])}")
        out(f"R[{d}] = {ex(specs[1])} if (a != 0 and a == a) else {ex(specs[2])}")
    elif op is Opcode.AND:
        out(f"R[{d}] = int({ex(specs[0])}) & int({ex(specs[1])})")
    elif op is Opcode.OR:
        out(f"R[{d}] = int({ex(specs[0])}) | int({ex(specs[1])})")
    elif op is Opcode.XOR:
        out(f"R[{d}] = int({ex(specs[0])}) ^ int({ex(specs[1])})")
    elif op is Opcode.SHL:
        out(f"r = int({ex(specs[0])}) << (int({ex(specs[1])}) & 63)")
        out("if r > _H or r < -_H:")
        out("    r &= _M")
        out(f"R[{d}] = r")
    elif op is Opcode.LSHR:
        out(f"R[{d}] = (int({ex(specs[0])}) & _M) >> (int({ex(specs[1])}) & 63)")
    elif op is Opcode.ALLOC:
        cl.needs.add("mem")
        out(f"R[{d}] = mem.allocate(int({ex(specs[0])}))")
    else:  # pragma: no cover - CALL/INTRIN never reach the generator
        raise AssertionError(f"cannot generate code for {op}")


def _assemble(name: str, cl: _Closure, acct) -> str:
    """Render one maker function.  *acct* is ``None`` or
    ``(static_count, [(code_index, count), ...])`` for a fused segment that
    owns its block-slice accounting (handle ``H`` is the maker's first
    parameter)."""
    params = []
    if acct is not None:
        params.append("H")
    params.extend(f"K{i}" for i in range(len(cl.consts)))
    lines = [f"def {name}({', '.join(params)}):", "    def _op(R, st):"]
    inner: List[str] = []
    if acct is not None:
        n, pairs = acct
        inner.append(f"steps = st.steps + {n}")
        inner.append("if steps > st.max_steps:")
        inner.append("    return st._hang(H, R)")
        inner.append("st.steps = steps")
        if pairs:
            inner.append("c = st.counts")
            for ci, k in pairs:
                inner.append(f"c[{ci}] += {k}")
    if "G" in cl.needs:
        inner.append("G = st._G")
    if "mem" in cl.needs or "cells" in cl.needs:
        inner.append("mem = st.memory")
    if "cells" in cl.needs:
        inner.append("cells = mem.cells")
        inner.append("SZ = mem.size")
    inner.extend(cl.lines)
    if not inner:
        inner.append("pass")
    lines.extend("        " + ln for ln in inner)
    lines.append("    return _op")
    return "\n".join(lines)


def _make_call(code: int, callee: str, fetch, dest: Optional[int]):
    """Runtime closure for a ``call``: own accounting (exact hang step),
    argument fetch, dispatch through the executor's compiled-module cache."""

    def _op(R, st):
        steps = st.steps + 1
        if steps > st.max_steps:
            raise HangError(steps)
        st.steps = steps
        st.counts[code] += 1
        vals = []
        ap = vals.append
        for k, p in fetch:
            if k == 0:
                ap(R[p])
            elif k == 1:
                ap(p)
            elif k == 2:
                ap(st._G[p])
            else:
                ap(st.memory.global_addr(p))
        rv = st._call(callee, vals)
        if dest is not None:
            R[dest] = rv

    return _op


def _make_intrin(code: int, name: str, fetch, dest: Optional[int]):
    """Runtime closure for an ``intrin``: dispatches to the registered
    intrinsic and charges its opcode list, exactly like the reference
    interpreter (charges bump ``steps`` but never the hang check)."""

    def _op(R, st):
        steps = st.steps + 1
        if steps > st.max_steps:
            raise HangError(steps)
        st.steps = steps
        counts = st.counts
        counts[code] += 1
        fn = st.intrinsics.get(name)
        if fn is None:
            raise CoreDumpError(f"unknown intrinsic {name!r}")
        vals = []
        ap = vals.append
        for k, p in fetch:
            if k == 0:
                ap(R[p])
            elif k == 1:
                ap(p)
            elif k == 2:
                ap(st._G[p])
            else:
                ap(st.memory.global_addr(p))
        rv, charge = fn(st, tuple(vals))
        n = len(charge)
        if n:
            cmap = _CODE
            for op in charge:
                counts[cmap[op]] += 1
            st.steps = steps + n
            st.charged += n
        if dest is not None:
            R[dest] = rv

    return _op


def _fetch_spec(specs) -> Tuple[Tuple[int, object], ...]:
    """Operand specs in the compact numeric form the factories loop over:
    0=register slot, 1=constant value, 2=global index, 3=global name."""
    out = []
    for kind, payload in specs:
        if kind == "r":
            out.append((0, payload))
        elif kind == "c":
            out.append((1, payload))
        elif kind == "gi":
            out.append((2, payload))
        else:
            out.append((3, payload))
    return tuple(out)


class CompiledFunction:
    """One function lowered to per-block closure lists."""

    __slots__ = ("name", "nregs", "nparams", "labels", "blocks",
                 "block_sizes", "undeclared", "records", "_replay")

    def __init__(self, name, nregs, nparams, labels, blocks, block_sizes,
                 undeclared, records):
        self.name = name
        self.nregs = nregs
        self.nparams = nparams
        self.labels = labels
        self.blocks = blocks            # tuple of tuples of closures
        self.block_sizes = block_sizes  # counted instructions per block
        self.undeclared = undeclared    # globals referenced but not declared
        self.records = records          # decoded records (for hang replay)
        self._replay: Dict[int, list] = {}

    def replay_units(self, bi: int) -> list:
        """Per-instruction closures for block *bi* (lazy; hang path only)."""
        units = self._replay.get(bi)
        if units is None:
            units = _compile_units(self.name, self.labels[bi], self.records[bi])
            self._replay[bi] = units
        return units


def _compile_units(fname: str, lbl: str, recs) -> list:
    """Fuse-width-1, accounting-free closures used by the hang replay.
    CALL/INTRIN positions hold ``None`` — they do their own exact
    accounting and are never part of a replayed fused segment."""
    src_parts: List[str] = []
    makers: List[Optional[Tuple[str, list]]] = []
    for i, rec in enumerate(recs):
        if rec[0] in (_CALL, _INTRIN):
            makers.append(None)
            continue
        cl = _Closure()
        _emit(cl, rec)
        name = f"_u{i}"
        src_parts.append(_assemble(name, cl, None))
        makers.append((name, cl.consts))
    env = dict(_BASE_ENV)
    if src_parts:
        code = compile("\n".join(src_parts),
                       f"<repro-replay:@{fname}:{lbl}>", "exec")
        exec(code, env)
    units = []
    for rec, mk in zip(recs, makers):
        if mk is None:
            units.append((rec[0], None))
        else:
            name, consts = mk
            units.append((rec[0], env[name](*consts)))
    return units


def _compile_function(cm: "CompiledModule", func: Function) -> CompiledFunction:
    nregs, nparams, labels, records, undeclared = _decode_function(
        func, cm.gindex
    )
    src_parts: List[str] = []
    #: per block: list of ("mk", name, args) | ("obj", closure)
    pending_blocks: List[list] = []
    handles: List[list] = []
    serial = 0

    for bi, (lbl, recs) in enumerate(zip(labels, records)):
        pending: list = []
        terminated = bool(recs) and recs[-1][0] in _TERMINATORS

        # split into fused generated segments and call/intrin closures
        i = 0
        n = len(recs)
        while i < n:
            rec = recs[i]
            if rec[0] == _CALL:
                pending.append(("obj", _make_call(
                    rec[0], rec[3], _fetch_spec(rec[2]), rec[1])))
                i += 1
                continue
            if rec[0] == _INTRIN:
                pending.append(("obj", _make_intrin(
                    rec[0], rec[3], _fetch_spec(rec[2]), rec[1])))
                i += 1
                continue
            start = i
            cl = _Closure()
            count_pairs: Dict[int, int] = {}
            while i < n and recs[i][0] not in (_CALL, _INTRIN):
                _emit(cl, recs[i])
                count_pairs[recs[i][0]] = count_pairs.get(recs[i][0], 0) + 1
                i += 1
            seg = i - start
            handle = [None, bi, start, seg]
            handles.append(handle)
            name = f"_mk{serial}"
            serial += 1
            src_parts.append(_assemble(
                name, cl, (seg, sorted(count_pairs.items()))))
            pending.append(("mk", name, [handle] + cl.consts))

        if not terminated:
            # mirror the reference interpreter's fell-through trap; also the
            # sole closure of an empty block
            msg = (f"block {lbl} of @{func.name} fell through "
                   f"without terminator")
            cl = _Closure()
            cl.lines.append(f"raise CoreDumpError({msg!r})")
            name = f"_mk{serial}"
            serial += 1
            src_parts.append(_assemble(name, cl, None))
            pending.append(("mk", name, []))
        pending_blocks.append(pending)

    env = dict(_BASE_ENV)
    if src_parts:
        code = compile("\n".join(src_parts),
                       f"<repro-compiled:@{func.name}>", "exec")
        exec(code, env)

    blocks = tuple(
        tuple(
            item[1] if item[0] == "obj" else env[item[1]](*item[2])
            for item in pending
        )
        for pending in pending_blocks
    )
    block_sizes = tuple(len(recs) for recs in records)
    cf = CompiledFunction(func.name, nregs, nparams, tuple(labels), blocks,
                          block_sizes, tuple(undeclared), records)
    for handle in handles:
        handle[0] = cf
    return cf


# -- the compiled module and its cache ----------------------------------------
class CompiledModule:
    """Threaded-code form of a module; functions compile lazily on first
    call, mirroring the reference interpreter's per-function decode."""

    def __init__(self, module: Module, fingerprint: str):
        self.module = module
        self.fingerprint = fingerprint
        self.global_names = list(module.globals)
        self.gindex = {n: i for i, n in enumerate(self.global_names)}
        self._functions: Dict[str, Optional[CompiledFunction]] = {}
        # compiled modules are shared across serve executor threads; the
        # lazy per-function compile must publish exactly one closure set
        self._compile_lock = threading.Lock()

    def function(self, name: str) -> Optional[CompiledFunction]:
        cf = self._functions.get(name)
        if cf is None and name not in self._functions:
            with self._compile_lock:
                if name not in self._functions:
                    func = self.module.functions.get(name)
                    self._functions[name] = (
                        _compile_function(self, func)
                        if func is not None else None
                    )
            cf = self._functions[name]
        return cf


def module_fingerprint(module: Module) -> str:
    """sha256 of the printed module text — the compile-cache key."""
    return hashlib.sha256(format_module(module).encode("utf-8")).hexdigest()


_CACHE_CAP = 32
_COMPILE_CACHE: "OrderedDict[str, CompiledModule]" = OrderedDict()
#: LRU reorder + eviction are multi-step OrderedDict mutations; the serve
#: daemon's executor threads compile concurrently, so they must serialize.
_COMPILE_CACHE_LOCK = threading.Lock()


def compile_module(module: Module) -> CompiledModule:
    """The (cached) compiled form of *module*.

    Keyed by :func:`module_fingerprint`, so two textually identical modules
    share one compiled program and an in-place transform naturally misses
    the stale entry.  The cache is per process; campaign pool workers each
    hold their own, next to their prepared-program caches.
    """
    fp = module_fingerprint(module)
    with _COMPILE_CACHE_LOCK:
        cm = _COMPILE_CACHE.get(fp)
        if cm is None:
            cm = CompiledModule(module, fp)
            _COMPILE_CACHE[fp] = cm
            while len(_COMPILE_CACHE) > _CACHE_CAP:
                _COMPILE_CACHE.popitem(last=False)
        else:
            _COMPILE_CACHE.move_to_end(fp)
    return cm


def clear_compile_cache() -> None:
    with _COMPILE_CACHE_LOCK:
        _COMPILE_CACHE.clear()


# -- the executor -------------------------------------------------------------
class CompiledExecutor:
    """Clean-mode drop-in for :class:`Interpreter`.

    Exposes the same running state (``steps``, ``counts``, ``region_steps``,
    ``intrinsics``, ``memory``) and the same ``run``/``register_intrinsic``
    surface.  ``fault_region`` is supported (bulk per-block accounting) so
    golden campaign runs can measure their injection window; fault *plans*,
    timing and profiling are not — those runs belong to the reference
    interpreter (see :mod:`repro.runtime.backend`).
    """

    def __init__(
        self,
        module: Module,
        memory: Optional[Memory] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        fault_region=None,
    ):
        self.module = module
        self.memory = memory if memory is not None else Memory()
        if not self.memory.globals and module.globals:
            self.memory.load_globals(module)
        self.max_steps = max_steps
        self.steps = 0
        self.counts: List[int] = [0] * len(OPCODES)
        self.intrinsics: Dict[str, IntrinsicFn] = {}
        self.timing = None
        self.fault_plan = None
        self.fault_region = fault_region
        self.region_steps = 0
        #: dynamic steps charged by intrinsics (they never enter
        #: ``region_steps``, matching the reference accounting)
        self.charged = 0
        self._cm = compile_module(module)
        self._G: Optional[List[int]] = None
        self._depth = 0
        self._overlays: Dict[str, list] = {}
        self._resolved: set = set()

    # -- public API -----------------------------------------------------------
    def register_intrinsic(self, name: str, fn: IntrinsicFn) -> None:
        self.intrinsics[name] = fn

    def register_intrinsics(self, table: Dict[str, IntrinsicFn]) -> None:
        self.intrinsics.update(table)

    def count_dict(self) -> Dict[Opcode, int]:
        return {op: self.counts[i] for i, op in enumerate(OPCODES) if self.counts[i]}

    def run(self, func_name: str, args: Sequence = ()) -> RunResult:
        func = self.module.get_function(func_name)
        if len(args) != len(func.params):
            raise TypeError(
                f"@{func_name} expects {len(func.params)} arguments, got {len(args)}"
            )
        if self._G is None:
            mem = self.memory
            self._G = [mem.global_addr(n) for n in self._cm.global_names]
        # the compiled backend only ever serves clean runs, so (unlike the
        # reference interpreter) every run may carry a timing span
        if obs_enabled():
            with obs_span(f"compiled.run:@{func_name}"):
                value = self._invoke(self._cm.function(func_name), list(args))
        else:
            value = self._invoke(self._cm.function(func_name), list(args))
        if self.fault_region is None:
            # region None means "everything is in region" for the reference
            # interpreter — every architectural step, never intrinsic charges
            self.region_steps = self.steps - self.charged
        return RunResult(
            value=value,
            steps=self.steps,
            counts=self.count_dict(),
            cycles=0,
            ipc=0.0,
            region_steps=self.region_steps,
        )

    # -- internal -------------------------------------------------------------
    def _call(self, name: str, vals: list):
        cf = self._cm.function(name)
        if cf is None:
            raise CoreDumpError(f"call to unknown function @{name}")
        return self._invoke(cf, vals)

    def _invoke(self, cf: CompiledFunction, args: list):
        depth = self._depth
        if depth > MAX_CALL_DEPTH:
            raise CoreDumpError(f"call depth exceeded in @{cf.name}")
        self._depth = depth + 1
        try:
            if cf.undeclared and cf.name not in self._resolved:
                # the reference interpreter resolves global operands at
                # decode time; fault identically before executing anything
                for name in cf.undeclared:
                    self.memory.global_addr(name)
                self._resolved.add(cf.name)
            R = [None] * cf.nregs
            np = cf.nparams
            if np:
                R[:np] = args
            blocks = cf.blocks
            if self.fault_region is None:
                bi = 0
                while True:
                    for op in blocks[bi]:
                        r = op(R, self)
                    if r.__class__ is int:
                        bi = r
                    else:
                        return r[0]
            overlay = self._overlay(cf)
            bi = 0
            while True:
                for op in blocks[bi]:
                    r = op(R, self)
                self.region_steps += overlay[bi]
                if r.__class__ is int:
                    bi = r
                else:
                    return r[0]
        finally:
            self._depth = depth

    def _overlay(self, cf: CompiledFunction) -> list:
        ov = self._overlays.get(cf.name)
        if ov is None:
            region = self.fault_region
            contains = region.contains
            ov = [
                n if contains(cf.name, lbl) else 0
                for lbl, n in zip(cf.labels, cf.block_sizes)
            ]
            self._overlays[cf.name] = ov
        return ov

    def _hang(self, handle, R):
        """Replay a fused segment that would cross ``max_steps`` with
        exact reference accounting: the hang — or any trap the reference
        interpreter would hit first — surfaces at the precise step."""
        cf, bi, start, count = handle
        units = cf.replay_units(bi)
        region = self.fault_region
        in_region = region is not None and region.contains(
            cf.name, cf.labels[bi]
        )
        max_steps = self.max_steps
        counts = self.counts
        steps = self.steps
        for code, unit in units[start:start + count]:
            steps += 1
            if steps > max_steps:
                self.steps = steps
                raise HangError(steps)
            self.steps = steps
            counts[code] += 1
            if in_region:
                self.region_steps += 1
            unit(R, self)
        raise AssertionError("hang replay completed without trapping")  # pragma: no cover
