"""Lane-vectorized batch execution backend (``--backend batch``).

Fault campaigns execute thousands of *near-identical* trials: same
module, same input, one distinct :class:`~repro.runtime.faults.FaultPlan`
each.  This backend runs N such trials as N *lanes* of a single lockstep
execution — Elzar's SIMD-lane replication turned sideways, across trials
instead of within one.

Representation
==============

Lanes that have executed the same instruction sequence since launch form
a *group*: one frame stack, one ``steps``/``region_steps`` counter (the
counts are lane-invariant within a group by construction).  The key
observation is that lanes only *differ* downstream of their injected
fault: until a lane's trigger fires — and after it whenever the flip was
masked — every register and memory cell is bit-identical across the
group.  The representation exploits that:

* A register slot whose lanes all hold the same value is stored as the
  **raw Python scalar**; operations between uniform slots execute once
  per *group*, not once per lane.  Only slots actually touched by
  injected-fault dataflow widen into per-lane columns — numpy **object**
  arrays, one element per lane.  Object dtype is load-bearing: every
  elementwise ufunc dispatches to the operands' *Python* dunders, so
  results stay bit-exact Python ints/floats, with the reference
  interpreter's arbitrary-precision integers and lazy 64-bit wrap
  intact.  No ``np.int64``/``np.float64`` ever enters a register file:
  comparison results come back as bool-dtype arrays and are routed
  through ``astype(int64).astype(object)``, and scalar operands are
  pre-wrapped as 0-d object arrays before broadcasting.
* Memory is layered copy-on-write over one shared read-only **template**
  (the initial image every lane starts from): a per-group ``gmem`` dict
  holds uniform stores, a per-lane overlay dict holds divergent stores,
  and a per-group ``dirty`` set (a conservative superset of the
  divergently-written addresses) picks the resolution path.  A clean
  load or store is two dict operations *per group*; no per-lane memory
  images are ever materialized.

Divergence and retirement
=========================

* A conditional branch whose lanes disagree (or an intrinsic whose
  charge lists differ in length) **splits** the group; each child keeps
  executing independently.  Split groups are never re-merged: after a
  divergent branch the lanes' ``steps`` counters differ, so any merged
  group would have to give up the exact per-lane step accounting the O5
  oracle pins.  At each split/retirement the surviving group's columns
  are re-collapsed to scalars where the remaining lanes agree — the
  usual case, since the one divergent lane just left.
* A lane that traps **retires** with its outcome (`segfault`,
  `coredump`, `hang`, or detected) while the rest of its group keeps
  running; exceeding ``max_steps`` retires the whole group as `hang`.
  Retired and finished lanes expose their memory as a :class:`_LaneMem`
  view (overlay → group layer → template) via ``lane_memory``.
* A group at or below ``SCALAR_CUTOFF`` lanes leaves lockstep: each of
  its lanes finishes on a slot-indexed scalar loop that mirrors the
  reference interpreter instruction-for-instruction.  A faulted lane
  that hangs burns through ``HANG_FACTOR`` baseline budgets alone — the
  scalar continuation keeps that tail at reference-interpreter speed.

Per-lane faults follow :meth:`Interpreter._inject` to the letter: the
trigger fires when ``region_steps - 1 == plan.step`` *before* operand
fetch, value flips pick a victim across the frame stack's name-sorted
live registers modelling a ``REGISTER_FILE_SIZE``-slot physical file
(a flip on a uniform slot widens it into a column), branch faults invert
the lane's next conditional, address faults XOR a bit into the lane's
next memory access.

Intrinsics are called with ``None`` as their interpreter argument: every
in-tree intrinsic (the rskip.* closures and the SWIFT checkers) closes
over its own runtime state and ignores the parameter, and the batch
machine has no single interpreter object to hand over.  A shared
intrinsics table whose arguments are uniform is invoked once per group.

Known divergences from the reference interpreter (documented, not
observable in campaign tallies): per-opcode counts, timing and profiling
are not maintained (campaign trials never read them), and reading a
never-written register — impossible in verified IR — fails with a
different exception than the reference's ``KeyError``.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.function import Function
from ..ir.module import Module
from ..ir.values import Const, GlobalAddr, Reg
from .errors import CoreDumpError, FaultDetectedError, HangError, SegfaultError, TrapError
from .faults import CONTROL_KINDS, SKIP_KINDS, FaultPlan, Region, flip_value
from .interpreter import (
    _CODE,
    _HUGE_INT,
    _INT_MASK64,
    _PRED,
    DEFAULT_MAX_STEPS,
    MAX_CALL_DEPTH,
    OPERAND_ARITY,
    REGISTER_FILE_SIZE,
)

# the same hoisted opcode indices the reference dispatch chain uses
from .interpreter import (  # noqa: F401
    _ADD, _ALLOC, _AND, _BR, _CALL, _CBR, _COS, _EXP, _FABS, _FADD, _FCMP,
    _FDIV, _FLOOR, _FMUL, _FNEG, _FPTOSI, _FSUB, _ICMP, _INTRIN, _LOAD,
    _LOG, _LSHR, _MOV, _MUL, _OR, _RET, _SDIV, _SELECT, _SHL, _SIN,
    _SITOFP, _SQRT, _SREM, _STORE, _SUB, _XOR,
)
from .memory import Memory

#: Exceptions that retire a lane instead of crashing the batch — exactly
#: the set ``_run_once`` maps to trial outcomes on the reference path.
_LANE_TRAPS = (TrapError, OverflowError, MemoryError, RecursionError)

#: Groups at or below this many lanes run the scalar continuation loop.
#: Break-even sits where the fixed dispatch cost per group instruction
#: exceeds the summed per-lane scalar cost; measured on the paper
#: workloads the crossover is at a handful of lanes.
SCALAR_CUTOFF = 6

#: Sentinel for register slots no instruction has written yet (the
#: reference interpreter's "name not in the frame dict").  ``None`` is a
#: legal register value (a void call's result), so absence needs its own
#: marker.
_UNDEF = object()

#: Sentinel for dict-chain lookups where ``None`` is a legal value.
_MISS = object()


@dataclass
class LaneResult:
    """What one lane of a batched run produced (mirrors the observable
    state of one reference-interpreter trial)."""

    value: object
    steps: int
    region_steps: int
    #: ``None`` | ``"segfault"`` | ``"coredump"`` | ``"hang"``
    trap: Optional[str] = None
    detected: bool = False
    finished: bool = False


def _classify_trap(exc: BaseException) -> Tuple[Optional[str], bool]:
    """(trap kind, detected) of a lane-retiring exception — the same
    mapping ``fault_campaign._run_once`` applies per trial."""
    if isinstance(exc, FaultDetectedError):
        return None, True
    if isinstance(exc, SegfaultError):
        return "segfault", False
    if isinstance(exc, HangError):
        return "hang", False
    return "coredump", False


def _check_addr(addr, size: int) -> int:
    """``Memory._check`` restated as a free function: same coercions,
    same exception classes, same messages."""
    if isinstance(addr, float):
        if not addr.is_integer():
            raise SegfaultError(addr, f"non-integer address {addr!r}")
        addr = int(addr)
    if not isinstance(addr, int):
        raise SegfaultError(addr, f"invalid address {addr!r}")
    if addr < 8 or addr >= size:
        raise SegfaultError(addr)
    return addr


def _try_collapse(col: np.ndarray, n: int):
    """The uniform value of a column, or ``_MISS`` if its lanes differ.

    Conservative on purpose: NaNs compare unequal and stay columns, and
    equal values of different types (``1`` vs ``1.0``) are not merged —
    integer and float diverge under later ``sdiv``/``srem``.
    """
    first = col[0]
    if first is None:
        for x in col:
            if x is not None:
                return _MISS
        return None
    eq = col == first
    if not eq.all():
        return _MISS
    t = type(first)
    for x in col:
        if type(x) is not t:
            return _MISS
    return first


class _SpCol:
    """A *sparse* lane column: one uniform base value plus a small dict
    of per-row exceptions.  This is the shape injected-fault taint takes
    — one lane differs, the rest agree — and it keeps every op on a
    tainted register O(#divergent lanes) instead of O(#lanes)."""

    __slots__ = ("base", "exc")

    def __init__(self, base, exc):
        self.base = base
        self.exc = exc              # row index -> value


def _dense(sp: _SpCol, n: int) -> np.ndarray:
    col = np.empty(n, dtype=object)
    col[:] = sp.base
    for r, v in sp.exc.items():
        col[r] = v
    return col


def _at(x, i: int):
    """Element ``i`` of a scalar, sparse or dense column."""
    cls = x.__class__
    if cls is np.ndarray:
        return x[i]
    if cls is _SpCol:
        return x.exc.get(i, x.base)
    return x


class _LaneMem:
    """One lane's composed memory view: overlay → group layer → template.

    Mirrors :class:`Memory`'s access API (same checks, same exception
    messages) so campaign result readers and the scalar continuation
    loop are oblivious to the layering.  Writes always land in the
    lane's private overlay — the group layer and template are frozen by
    the time a :class:`_LaneMem` exists.
    """

    __slots__ = ("cells", "globals", "size", "gmem", "ov", "_brk")

    def __init__(self, cells, globals_, size, gmem, ov, brk):
        self.cells = cells          # shared template cells (read-only)
        self.globals = globals_
        self.size = size
        self.gmem = gmem            # group write layer (frozen)
        self.ov = ov                # this lane's private overlay
        self._brk = brk

    # -- access (Memory API) ------------------------------------------------
    def load(self, addr):
        idx = self._check(addr)
        val = self.ov.get(idx, _MISS)
        if val is _MISS:
            val = self.gmem.get(idx, _MISS)
            if val is _MISS:
                val = self.cells[idx]
        return val

    def store(self, addr, value) -> None:
        self.ov[self._check(addr)] = value

    def _check(self, addr) -> int:
        if isinstance(addr, float):
            if not addr.is_integer():
                raise SegfaultError(addr, f"non-integer address {addr!r}")
            addr = int(addr)
        if not isinstance(addr, int):
            raise SegfaultError(addr, f"invalid address {addr!r}")
        if addr < 8 or addr >= self.size:
            raise SegfaultError(addr)
        return addr

    def allocate(self, size: int) -> int:
        if size <= 0:
            raise SegfaultError(self._brk, f"allocation of non-positive size {size}")
        base = self._brk
        self._brk += int(size)
        if self._brk > self.size:
            raise SegfaultError(base, "out of memory")
        return base

    def global_addr(self, name: str) -> int:
        try:
            return self.globals[name]
        except KeyError:
            raise SegfaultError(None, f"unknown global @{name}") from None

    # -- convenience for harnesses ------------------------------------------
    def read_array(self, base: int, count: int) -> list:
        if base < 8 or base + count > self.size:
            raise SegfaultError(base, "array read out of bounds")
        ov = self.ov
        gmem = self.gmem
        cells = self.cells
        out = []
        for idx in range(base, base + count):
            val = ov.get(idx, _MISS)
            if val is _MISS:
                val = gmem.get(idx, _MISS)
                if val is _MISS:
                    val = cells[idx]
            out.append(val)
        return out

    def write_array(self, base: int, values: Sequence) -> None:
        if base < 8 or base + len(values) > self.size:
            raise SegfaultError(base, "array write out of bounds")
        for i, v in enumerate(values):
            self.ov[base + i] = v

    def read_global(self, name: str, count: int, offset: int = 0) -> list:
        return self.read_array(self.global_addr(name) + offset, count)

    def write_global(self, name: str, values: Sequence, offset: int = 0) -> None:
        self.write_array(self.global_addr(name) + offset, values)


class _Frame:
    """One function activation of a lane group: per slot either a raw
    scalar (uniform across lanes), a lane column (np object array), or
    ``_UNDEF``."""

    __slots__ = ("fname", "blocks", "names", "slot_of", "regs",
                 "label", "pc", "ret_dest")

    def __init__(self, fname, blocks, names, slot_of, regs, label, ret_dest):
        self.fname = fname
        self.blocks = blocks
        self.names = names          # slot index -> register name
        self.slot_of = slot_of      # register name -> slot index
        self.regs = regs            # per-slot scalar | column | _UNDEF
        self.label = label
        self.pc = 0
        self.ret_dest = ret_dest    # caller slot for the return value


class _SFrame:
    """One function activation of a single scalar-continuation lane."""

    __slots__ = ("fname", "blocks", "names", "regs", "label", "pc", "ret_dest")

    def __init__(self, fname, blocks, names, regs, label, pc, ret_dest):
        self.fname = fname
        self.blocks = blocks
        self.names = names
        self.regs = regs            # per-slot scalars (_UNDEF = unwritten)
        self.label = label
        self.pc = pc
        self.ret_dest = ret_dest


class _Group:
    """Converged lanes: same position, same history, shared counters,
    and a shared copy-on-write memory layer."""

    __slots__ = ("rows", "frames", "steps", "region_steps", "trigs", "tptr",
                 "gmem", "dirty", "brk", "brks", "row_of")

    def __init__(self, rows, frames, steps, region_steps, trigs):
        self.rows: List[int] = rows          # lane ids, group-row order
        self.frames: List[_Frame] = frames   # outermost first
        self.steps = steps
        self.region_steps = region_steps
        #: pending fault triggers, sorted by step: (plan.step, lane id)
        self.trigs: List[Tuple[int, int]] = trigs
        self.tptr = 0
        self.gmem: dict = {}       # uniform stores (addr -> value)
        #: divergently-stored addrs -> the lane ids holding overlay
        #: entries there (a conservative superset: lanes may have left)
        self.dirty: Dict[int, set] = {}
        self.brk = 8               # uniform bump pointer...
        self.brks = None           # ...or a per-lane column of pointers
        self.row_of: Dict[int, int] = {lane: i for i, lane in enumerate(rows)}


class BatchExecutor:
    """Execute one module over N lanes sharing one template memory, each
    lane with its own fault plan, memory overlay and intrinsics table.

    ``intrinsics`` may be ``None`` (no intrinsics), one shared table
    (stateless checkers — UNSAFE/SWIFT/SWIFT-R), or a sequence of
    per-lane tables (RSkip predictors carry per-trial state).

    ``run`` returns one :class:`LaneResult` per lane; final memory state
    is read through :meth:`lane_memory`, whose view composes the lane's
    overlay, its group's write layer and the shared template.
    """

    def __init__(
        self,
        module: Module,
        template: Memory,
        n_lanes: int,
        fault_plans: Optional[Sequence[Optional[FaultPlan]]] = None,
        fault_region: Optional[Region] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        intrinsics=None,
    ):
        if n_lanes <= 0:
            raise ValueError("a batch needs at least one lane")
        self.module = module
        self.n_lanes = n_lanes
        if not template.globals and module.globals:
            template.load_globals(module)
        self._template = template
        self._tcells = template.cells
        self._globals = template.globals
        self._size = template.size
        if fault_plans is None:
            fault_plans = [None] * n_lanes
        if len(fault_plans) != n_lanes:
            raise ValueError("one fault plan (or None) per lane required")
        self._plans = list(fault_plans)
        if intrinsics is None:
            self._shared = True
            self._tables: List[dict] = [{}] * n_lanes
        elif isinstance(intrinsics, dict):
            self._shared = True
            self._tables = [intrinsics] * n_lanes
        else:
            tables = list(intrinsics)
            if len(tables) != n_lanes:
                raise ValueError("one intrinsics table per lane required")
            self._shared = False
            self._tables = tables
        self.fault_region = fault_region
        self.max_steps = max_steps
        self._invert = [False] * n_lanes
        self._corrupt: List[Optional[int]] = [None] * n_lanes
        # live counts let the hot loop skip per-lane flag checks entirely
        self._n_invert = 0
        self._n_corrupt = 0
        # instruction-skip / control-flow fault state: remaining dynamic
        # instructions to drop, and the pending wrong-target pick.  Lanes
        # carrying these leave lockstep the moment the trigger fires (their
        # instruction stream diverges), so only the scalar loop reads them.
        self._skip = [0] * n_lanes
        self._cf: List[Optional[float]] = [None] * n_lanes
        #: per function: ({label: next label in layout order}, block order) —
        #: what a skipped terminator falls through to
        self._succ: Dict[str, tuple] = {}
        self._ovs: List[dict] = [dict() for _ in range(n_lanes)]
        self._results: List[Optional[LaneResult]] = [None] * n_lanes
        self._lmems: List[Optional[_LaneMem]] = [None] * n_lanes
        self._dcache: Dict[str, tuple] = {}

    def lane_memory(self, lane: int) -> _LaneMem:
        """The composed memory view of a finished or retired lane."""
        lm = self._lmems[lane]
        if lm is None:
            raise ValueError(f"lane {lane} has not finished")
        return lm

    # -- decoding -----------------------------------------------------------
    def _decode(self, func: Function) -> tuple:
        """Slot-indexed mirror of ``Interpreter._decode``: same opcode
        indices, same arity contract, same region flags; register names
        become dense slot indices (parameters first, then first-use
        order) and constants carry a pre-built 0-d object array so ufunc
        broadcasting never coerces them to numpy scalars."""
        cached = self._dcache.get(func.name)
        if cached is not None:
            return cached
        region = self.fault_region
        template = self._template
        slot_of: Dict[str, int] = {}
        names: List[str] = []

        def slot(name: str) -> int:
            s = slot_of.get(name)
            if s is None:
                s = len(names)
                slot_of[name] = s
                names.append(name)
            return s

        for p in func.params:
            slot(p.name)
        blocks: Dict[str, list] = {}
        for label in func.block_order():
            in_region = True if region is None else region.contains(func.name, label)
            decoded = []
            for idx, instr in enumerate(func.blocks[label].instrs):
                ops = []
                for a in instr.args:
                    if isinstance(a, Reg):
                        ops.append((True, slot(a.name), None))
                    elif isinstance(a, GlobalAddr):
                        addr = template.global_addr(a.name)
                        ops.append((False, addr, np.array(addr, dtype=object)))
                    else:
                        assert isinstance(a, Const)
                        ops.append((False, a.value, np.array(a.value, dtype=object)))
                code = _CODE[instr.op]
                want = OPERAND_ARITY[code]
                if want is not None and len(ops) not in want:
                    raise CoreDumpError(
                        f"@{func.name}:{label}: {instr.op.value} expects "
                        f"{' or '.join(map(str, want))} operand(s), got {len(ops)}"
                    )
                dest = slot(instr.dest.name) if instr.dest is not None else None
                if code == _BR:
                    extra = instr.labels[0]
                elif code == _CBR:
                    extra = ((func.name, label, idx), instr.labels[0], instr.labels[1])
                elif code in (_CALL, _INTRIN):
                    extra = instr.callee
                elif code in (_ICMP, _FCMP):
                    extra = _PRED[instr.pred]
                else:
                    extra = None
                decoded.append((code, dest, tuple(ops), extra, in_region))
            blocks[label] = decoded
        order = tuple(func.block_order())
        self._succ[func.name] = (
            {lab: (order[i + 1] if i + 1 < len(order) else None)
             for i, lab in enumerate(order)},
            order,
        )
        entry = order[0]
        result = (entry, blocks, names, slot_of)
        self._dcache[func.name] = result
        return result

    def _make_frame(self, func: Function, ret_dest: Optional[int]) -> _Frame:
        entry, blocks, names, slot_of = self._decode(func)
        regs = [_UNDEF] * len(names)
        return _Frame(func.name, blocks, names, slot_of, regs, entry, ret_dest)

    # -- fault machinery ----------------------------------------------------
    def _fire_triggers(self, g: _Group) -> List[int]:
        """Inject every plan whose trigger step just elapsed (mirrors the
        ``region_steps - 1 == plan.step`` check before operand fetch).
        Returns the lanes whose plan forces them out of lockstep (skip and
        control-flow kinds): their stream diverges at this instruction, so
        the caller must peel them off to the scalar loop."""
        want = g.region_steps - 1
        row_of = g.row_of
        peel: List[int] = []
        while g.tptr < len(g.trigs) and g.trigs[g.tptr][0] == want:
            lane = g.trigs[g.tptr][1]
            g.tptr += 1
            row = row_of.get(lane)
            if row is None:
                continue  # lane retired before its trigger
            if self._inject_lane(g, row, lane):
                peel.append(lane)
        return peel

    def _inject_lane(self, g: _Group, row: int, lane: int) -> bool:
        """One lane's SEU — the exact victim-selection walk of
        ``Interpreter._inject`` over this group's frame stack.  A flip
        landing on a uniform slot widens it into a column (unless the
        flip was masked and the value is unchanged).  Returns whether the
        lane must leave lockstep (skip / control-flow kinds)."""
        plan = self._plans[lane]
        if plan.kind == "branch":
            if not self._invert[lane]:
                self._invert[lane] = True
                self._n_invert += 1
            return False
        if plan.kind == "addr":
            if self._corrupt[lane] is None:
                self._n_corrupt += 1
            self._corrupt[lane] = plan.bit
            return False
        if plan.kind in SKIP_KINDS:
            self._skip[lane] = plan.burst_len
            return True
        if plan.kind == "cf":
            self._cf[lane] = plan.pick
            return True
        slots: List[Tuple[list, int]] = []
        for frame in g.frames:
            fregs = frame.regs
            named = sorted(
                (frame.names[s], s)
                for s in range(len(fregs)) if fregs[s] is not _UNDEF
            )
            slots.extend((fregs, s) for _name, s in named)
        if not slots:
            return False
        nfile = max(REGISTER_FILE_SIZE, len(slots))
        k = int(plan.pick * nfile)
        if k >= len(slots):
            return False  # landed on a slot holding no live value: masked
        fregs, s = slots[k]
        col = fregs[s]
        cls = col.__class__
        if cls is np.ndarray:
            col[row] = flip_value(col[row], plan.bit)
        elif cls is _SpCol:
            cur = col.exc.get(row, col.base)
            col.exc[row] = flip_value(cur, plan.bit)
        else:
            nv = flip_value(col, plan.bit)
            if nv is not col:  # flip_value returns its input when masked
                fregs[s] = _SpCol(col, {row: nv})
        return False

    def _scalar_inject(self, lane: int, frames: List[_SFrame],
                       plan: FaultPlan) -> None:
        """Scalar-path twin of :meth:`_inject_lane`."""
        if plan.kind == "branch":
            if not self._invert[lane]:
                self._invert[lane] = True
                self._n_invert += 1
            return
        if plan.kind == "addr":
            if self._corrupt[lane] is None:
                self._n_corrupt += 1
            self._corrupt[lane] = plan.bit
            return
        if plan.kind in SKIP_KINDS:
            self._skip[lane] = plan.burst_len
            return
        if plan.kind == "cf":
            self._cf[lane] = plan.pick
            return
        slots: List[Tuple[list, int]] = []
        for fr in frames:
            fregs = fr.regs
            named = sorted(
                (fr.names[s], s)
                for s in range(len(fregs)) if fregs[s] is not _UNDEF
            )
            slots.extend((fregs, s) for _name, s in named)
        if not slots:
            return
        nfile = max(REGISTER_FILE_SIZE, len(slots))
        k = int(plan.pick * nfile)
        if k >= len(slots):
            return
        fregs, s = slots[k]
        fregs[s] = flip_value(fregs[s], plan.bit)

    def _retarget_lane(self, lane: int, fname: str, correct: str) -> str:
        """Consume a pending control-flow fault: pick a wrong-but-valid
        block of the current function (``Interpreter._retarget`` twin)."""
        pick = self._cf[lane]
        self._cf[lane] = None
        candidates = [lab for lab in self._succ[fname][1] if lab != correct]
        if not candidates:
            return correct
        return candidates[int(pick * len(candidates)) % len(candidates)]

    # -- retirement / splitting --------------------------------------------
    def _bind_lane(self, lane: int, gmem: dict, brk) -> None:
        """Freeze a finished/retired lane's memory view."""
        self._lmems[lane] = _LaneMem(
            self._tcells, self._globals, self._size,
            gmem, self._ovs[lane], brk)

    def _prune_dirty(self, g: _Group) -> None:
        """Drop dirty addresses no surviving lane has an overlay entry
        for (their writers retired or forked away) so clean loads at
        those addresses return to the uniform fast path."""
        dirty = g.dirty
        if not dirty:
            return
        row_of = g.row_of
        for idx, writers in list(dirty.items()):
            for lane in writers:
                if lane in row_of:
                    break
            else:
                del dirty[idx]

    def _retire_rows(self, g: _Group, dead: Dict[int, BaseException]) -> List[int]:
        """Record outcomes for trapped rows, compress the group, and
        return the surviving row indices (old numbering).  Retirees
        share one snapshot of the group write layer (the group lives on
        and keeps mutating it); survivors' columns re-collapse to
        scalars where the departures made them uniform again."""
        snap = None
        brks = g.brks
        for row, exc in dead.items():
            trap, det = _classify_trap(exc)
            lane = g.rows[row]
            self._results[lane] = LaneResult(
                None, g.steps, g.region_steps, trap, det)
            if snap is None:
                snap = dict(g.gmem)
            self._bind_lane(lane, snap, brks[row] if brks is not None else g.brk)
        keep = [i for i in range(len(g.rows)) if i not in dead]
        g.rows[:] = [g.rows[i] for i in keep]
        g.row_of = {lane: i for i, lane in enumerate(g.rows)}
        n = len(keep)
        if n:
            big = n > SCALAR_CUTOFF
            remap = {old: j for j, old in enumerate(keep)}
            for frame in g.frames:
                regs = frame.regs
                for s, col in enumerate(regs):
                    cls = col.__class__
                    if cls is np.ndarray:
                        ncol = col[keep]
                        if big:
                            val = _try_collapse(ncol, n)
                            if val is not _MISS:
                                regs[s] = val
                                continue
                        regs[s] = ncol
                    elif cls is _SpCol:
                        nexc = {}
                        for r, v in col.exc.items():
                            nr = remap.get(r)
                            if nr is not None:
                                nexc[nr] = v
                        regs[s] = _SpCol(col.base, nexc) if nexc else col.base
            if brks is not None:
                nb = brks[keep]
                val = _try_collapse(nb, n)
                if val is not _MISS:
                    g.brk = val
                    g.brks = None
                else:
                    g.brks = nb
            self._prune_dirty(g)
        return keep

    def _retire_all(self, g: _Group, exc: BaseException) -> None:
        trap, det = _classify_trap(exc)
        brks = g.brks
        for i, lane in enumerate(g.rows):
            self._results[lane] = LaneResult(None, g.steps, g.region_steps, trap, det)
            self._bind_lane(lane, g.gmem, brks[i] if brks is not None else g.brk)
        g.rows[:] = []

    def _fork(self, g: _Group, sel: List[int], reuse: bool) -> _Group:
        """A child group of the selected rows, at the parent's position.
        The first child of a split (``reuse=True``) adopts the parent's
        write layer wholesale; later children take copies.  Columns that
        became uniform within the child collapse back to scalars."""
        rows = [g.rows[i] for i in sel]
        n = len(rows)
        big = n > SCALAR_CUTOFF
        remap = {old: j for j, old in enumerate(sel)}
        frames = []
        for fr in g.frames:
            nregs = []
            for col in fr.regs:
                cls = col.__class__
                if cls is np.ndarray:
                    ncol = col[sel]
                    if big:
                        val = _try_collapse(ncol, n)
                        if val is not _MISS:
                            nregs.append(val)
                            continue
                    nregs.append(ncol)
                elif cls is _SpCol:
                    nexc = {}
                    for r, v in col.exc.items():
                        nr = remap.get(r)
                        if nr is not None:
                            nexc[nr] = v
                    nregs.append(_SpCol(col.base, nexc) if nexc else col.base)
                else:
                    nregs.append(col)
            nf = _Frame(fr.fname, fr.blocks, fr.names, fr.slot_of, nregs,
                        fr.label, fr.ret_dest)
            nf.pc = fr.pc
            frames.append(nf)
        lanes = set(rows)
        trigs = [t for t in g.trigs[g.tptr:] if t[1] in lanes]
        child = _Group(rows, frames, g.steps, g.region_steps, trigs)
        if reuse:
            child.gmem = g.gmem
            child.dirty = g.dirty
        else:
            child.gmem = dict(g.gmem)
            child.dirty = {idx: set(wr) for idx, wr in g.dirty.items()}
        child.brk = g.brk
        if g.brks is not None:
            nb = g.brks[sel]
            val = _try_collapse(nb, n)
            if val is not _MISS:
                child.brk = val
            else:
                child.brks = nb
        if big:
            self._prune_dirty(child)
        return child

    # -- public API ---------------------------------------------------------
    def run(self, func_name: str = "main", args: Sequence = ()) -> List[LaneResult]:
        func = self.module.get_function(func_name)
        if len(args) != len(func.params):
            raise TypeError(
                f"@{func_name} expects {len(func.params)} arguments, got {len(args)}"
            )
        frame = self._make_frame(func, None)
        for p, value in zip(func.params, args):
            # one launch, one argument vector: parameters are uniform
            frame.regs[frame.slot_of[p.name]] = value
        trigs = sorted(
            (plan.step, lane)
            for lane, plan in enumerate(self._plans) if plan is not None
        )
        group = _Group(list(range(self.n_lanes)), [frame], 0, 0, trigs)
        group.brk = self._template._brk
        work = [group]
        # Python float math on lane values sets hardware FP flags (inf*0,
        # overflowing divides) that numpy reports as RuntimeWarnings after
        # each object-loop ufunc; the values themselves are the exact
        # Python results, so the flags carry no information here.
        with np.errstate(all="ignore"):
            while work:
                self._run_group(work.pop(), work)
        results = []
        for lane in range(self.n_lanes):
            res = self._results[lane]
            assert res is not None, f"lane {lane} neither finished nor retired"
            results.append(res)
        return results

    # -- the lockstep machine ----------------------------------------------
    def _run_group(self, g: _Group, work: List[_Group]) -> None:
        """Run one group until every lane retires/finishes or it splits."""
        module = self.module
        tables = self._tables
        ovs = self._ovs
        tcells = self._tcells
        rows = g.rows
        max_steps = self.max_steps
        msize = self._size
        frame = g.frames[-1]
        # counters live in locals on the hot path; every call that reads
        # or publishes them syncs the group first
        steps = g.steps
        rsteps = g.region_steps
        ntrig1 = (g.trigs[g.tptr][0] + 1) if g.tptr < len(g.trigs) else -9

        while True:
            instrs = frame.blocks[frame.label]
            num = len(instrs)
            pc = frame.pc
            regs = frame.regs
            while pc < num:
                L = len(rows)
                if L <= SCALAR_CUTOFF:
                    frame.pc = pc
                    g.steps = steps
                    g.region_steps = rsteps
                    self._scalar_finish(g)
                    return
                code, dest, ops, extra, in_region = instrs[pc]
                pc += 1
                steps += 1
                if steps > max_steps:
                    g.steps = steps
                    g.region_steps = rsteps
                    self._retire_all(g, HangError(steps))
                    return
                if in_region:
                    rsteps += 1
                    if rsteps == ntrig1:
                        g.steps = steps
                        g.region_steps = rsteps
                        peel = self._fire_triggers(g)
                        if peel:
                            # skip/cf lanes diverge at this very instruction,
                            # which has not executed yet: rewind it so both
                            # children re-fetch it — the lockstep rest runs it
                            # normally, the peeled lanes drop/retarget it on
                            # the scalar loop (triggers at this step are all
                            # consumed, so nothing re-fires)
                            frame.pc = pc - 1
                            g.steps = steps - 1
                            g.region_steps = rsteps - 1
                            peel_set = set(peel)
                            sel_rest = [i for i, ln in enumerate(rows)
                                        if ln not in peel_set]
                            sel_peel = [i for i, ln in enumerate(rows)
                                        if ln in peel_set]
                            if sel_rest:
                                work.append(self._fork(g, sel_rest, True))
                            faulted = self._fork(g, sel_peel, not sel_rest)
                            self._scalar_finish(faulted)
                            return
                        ntrig1 = (g.trigs[g.tptr][0] + 1) \
                            if g.tptr < len(g.trigs) else -9

                # ---- value ops ------------------------------------------
                if code <= _SELECT:
                    k, v, _o = ops[0]
                    a = regs[v] if k else v
                    nops = len(ops)
                    b = c = None
                    cls = a.__class__
                    dense = cls is np.ndarray
                    sp = cls is _SpCol
                    if nops > 1:
                        k, v, _o = ops[1]
                        b = regs[v] if k else v
                        cls = b.__class__
                        if cls is np.ndarray:
                            dense = True
                        elif cls is _SpCol:
                            sp = True
                        if nops > 2:
                            k, v, _o = ops[2]
                            c = regs[v] if k else v
                            cls = c.__class__
                            if cls is np.ndarray:
                                dense = True
                            elif cls is _SpCol:
                                sp = True

                    if not dense and not sp:
                        # every operand uniform: execute once per group
                        try:
                            if code == _FMUL:
                                res = a * b
                            elif code == _FADD or code == _ADD:
                                res = a + b
                            elif code == _FSUB or code == _SUB:
                                res = a - b
                            elif code == _MOV:
                                res = a
                            elif code == _MUL:
                                res = a * b
                                if isinstance(res, int) and \
                                        (res > _HUGE_INT or res < -_HUGE_INT):
                                    res &= _INT_MASK64
                            elif code == _ICMP or code == _FCMP:
                                if extra == 2:
                                    r = a < b
                                elif extra == 0:
                                    r = a == b
                                elif extra == 4:
                                    r = a > b
                                elif extra == 3:
                                    r = a <= b
                                elif extra == 5:
                                    r = a >= b
                                else:
                                    r = a != b
                                res = 1 if r else 0
                            else:
                                res = _uop(code, extra, a, b, c)
                        except _LANE_TRAPS as exc:
                            g.steps = steps
                            g.region_steps = rsteps
                            self._retire_all(g, exc)
                            return
                        regs[dest] = res
                        continue

                    if not dense:
                        # ---- sparse operands: base once, then exceptions
                        if code == _MOV:
                            regs[dest] = _SpCol(a.base, dict(a.exc))
                            continue
                        rows_u = set(a.exc) if a.__class__ is _SpCol else set()
                        if b is not None and b.__class__ is _SpCol:
                            rows_u.update(b.exc)
                        if c is not None and c.__class__ is _SpCol:
                            rows_u.update(c.exc)
                        if len(rows_u) * 4 < L:
                            try:
                                rbase = _sop(code, extra, _at(a, -1),
                                             _at(b, -1), _at(c, -1))
                                rexc = {}
                                tb = rbase.__class__
                                for r in rows_u:
                                    rv_ = _sop(code, extra, _at(a, r),
                                               _at(b, r), _at(c, r))
                                    if rv_.__class__ is tb and rv_ == rbase:
                                        continue  # lane reconverged: drop
                                    rexc[r] = rv_
                                regs[dest] = \
                                    _SpCol(rbase, rexc) if rexc else rbase
                                continue
                            except _LANE_TRAPS:
                                pass  # refine per lane on the dense path
                        # exception set too wide (or a lane trapped):
                        # materialize and take the dense path below

                    # ---- divergent operands: vectorized path ------------
                    if a.__class__ is _SpCol:
                        a = _dense(a, L)
                    if b is not None and b.__class__ is _SpCol:
                        b = _dense(b, L)
                    if c is not None and c.__class__ is _SpCol:
                        c = _dense(c, L)
                    if code == _MOV:
                        regs[dest] = a.copy()  # a is the column here
                        continue
                    if a.__class__ is np.ndarray:
                        av = a
                    elif ops[0][0]:
                        av = np.array(a, dtype=object)  # uniform reg value
                    else:
                        av = ops[0][2]                  # pre-wrapped const
                    if nops > 1:
                        if b.__class__ is np.ndarray:
                            bv = b
                        elif ops[1][0]:
                            bv = np.array(b, dtype=object)
                        else:
                            bv = ops[1][2]

                    res = None
                    try:
                        if code == _FMUL:
                            res = np.multiply(av, bv)
                        elif code == _FADD or code == _ADD:
                            res = np.add(av, bv)
                        elif code == _FSUB or code == _SUB:
                            res = np.subtract(av, bv)
                        elif code == _MUL:
                            res = np.multiply(av, bv)
                            if res.__class__ is np.ndarray:
                                for i in range(L):
                                    r = res[i]
                                    if r.__class__ is int and \
                                            (r > _HUGE_INT or r < -_HUGE_INT):
                                        res[i] = r & _INT_MASK64
                            elif isinstance(res, int) and \
                                    (res > _HUGE_INT or res < -_HUGE_INT):
                                res &= _INT_MASK64
                        elif code == _ICMP or code == _FCMP:
                            if extra == 2:
                                r = av < bv
                            elif extra == 0:
                                r = av == bv
                            elif extra == 4:
                                r = av > bv
                            elif extra == 3:
                                r = av <= bv
                            elif extra == 5:
                                r = av >= bv
                            else:
                                r = av != bv
                            # bool-dtype result -> native Python 1/0 ints
                            # (astype(object) materializes Python int)
                            if r.__class__ is np.ndarray:
                                res = r.astype(np.int64).astype(object)
                            else:  # 0d-0d compare collapsed to scalar
                                res = 1 if r else 0
                        elif code == _FDIV:
                            res = np.divide(av, bv)
                    except _LANE_TRAPS:
                        res = None  # refine per lane below
                    except ZeroDivisionError:
                        res = None

                    if res is not None:
                        if res.__class__ is not np.ndarray:
                            col = np.empty(L, dtype=object)
                            col[:] = res
                            res = col
                        elif res.ndim == 0:
                            col = np.empty(L, dtype=object)
                            col[:] = res.item()
                            res = col
                        regs[dest] = res
                        continue

                    # per-lane: cold ops and lane-local trap refinement
                    srcs = []
                    for x in (a, b, c)[:nops]:
                        if x.__class__ is np.ndarray:
                            srcs.append((x, None))
                        else:
                            srcs.append((None, x))
                    out = np.empty(L, dtype=object)
                    dead = None
                    for i in range(L):
                        try:
                            out[i] = _scalar_eval(code, extra, srcs, i)
                        except _LANE_TRAPS as exc:
                            if dead is None:
                                dead = {}
                            dead[i] = exc
                    if dead is not None:
                        g.steps = steps
                        g.region_steps = rsteps
                        keep = self._retire_rows(g, dead)
                        if not rows:
                            return
                        out = out[keep]
                    regs[dest] = out
                    continue

                # ---- memory ops (copy-on-write layers) ------------------
                if code == _LOAD:
                    k, v, _o = ops[0]
                    a = regs[v] if k else v
                    gmem = g.gmem
                    cls = a.__class__
                    if cls is not np.ndarray and cls is not _SpCol \
                            and not self._n_corrupt:
                        # uniform address, no pending addr faults
                        if type(a) is int and 8 <= a < msize:
                            idx = a
                        else:
                            try:
                                idx = _check_addr(a, msize)
                            except SegfaultError as exc:
                                g.steps = steps
                                g.region_steps = rsteps
                                self._retire_all(g, exc)
                                return
                        vbase = gmem.get(idx, _MISS)
                        if vbase is _MISS:
                            vbase = tcells[idx]
                        writers = g.dirty.get(idx)
                        if writers is None:
                            regs[dest] = vbase
                            continue
                        row_of = g.row_of
                        rexc = {}
                        tb = vbase.__class__
                        for lane in writers:
                            r = row_of.get(lane)
                            if r is None:
                                continue  # writer retired or forked away
                            v_ = ovs[lane][idx]
                            if v_.__class__ is tb and v_ == vbase:
                                continue
                            rexc[r] = v_
                        regs[dest] = _SpCol(vbase, rexc) if rexc else vbase
                        continue
                    if cls is _SpCol and not self._n_corrupt:
                        # near-uniform address: resolve the base once and
                        # the exception lanes' own addresses individually
                        try:
                            ab = a.base
                            if type(ab) is int and 8 <= ab < msize:
                                idx = ab
                            else:
                                idx = _check_addr(ab, msize)
                            vbase = gmem.get(idx, _MISS)
                            if vbase is _MISS:
                                vbase = tcells[idx]
                            rexc = {}
                            writers = g.dirty.get(idx)
                            if writers:
                                row_of = g.row_of
                                for lane in writers:
                                    r = row_of.get(lane)
                                    if r is not None:
                                        rexc[r] = ovs[lane][idx]
                            for r, av_ in a.exc.items():
                                if type(av_) is int and 8 <= av_ < msize:
                                    idx2 = av_
                                else:
                                    idx2 = _check_addr(av_, msize)
                                v_ = ovs[rows[r]].get(idx2, _MISS)
                                if v_ is _MISS:
                                    v_ = gmem.get(idx2, _MISS)
                                    if v_ is _MISS:
                                        v_ = tcells[idx2]
                                rexc[r] = v_
                            tb = vbase.__class__
                            for r in [r for r, v_ in rexc.items()
                                      if v_.__class__ is tb and v_ == vbase]:
                                del rexc[r]
                            regs[dest] = \
                                _SpCol(vbase, rexc) if rexc else vbase
                            continue
                        except SegfaultError:
                            a = _dense(a, L)  # a lane traps: refine below
                    # column address and/or an addr-fault window is open
                    acol = a if a.__class__ is np.ndarray else None
                    corrupt = self._corrupt
                    out = np.empty(L, dtype=object)
                    dead = None
                    for i in range(L):
                        addr = acol[i] if acol is not None else _at(a, i)
                        lane = rows[i]
                        if corrupt[lane] is not None:
                            bit = corrupt[lane]
                            corrupt[lane] = None
                            self._n_corrupt -= 1
                            if isinstance(addr, int):
                                addr = addr ^ (1 << (bit % 24))
                        try:
                            if type(addr) is int and 8 <= addr < msize:
                                idx = addr
                            else:
                                idx = _check_addr(addr, msize)
                        except SegfaultError as exc:
                            if dead is None:
                                dead = {}
                            dead[i] = exc
                            continue
                        val = ovs[lane].get(idx, _MISS)
                        if val is _MISS:
                            val = gmem.get(idx, _MISS)
                            if val is _MISS:
                                val = tcells[idx]
                        out[i] = val
                    if dead is not None:
                        g.steps = steps
                        g.region_steps = rsteps
                        keep = self._retire_rows(g, dead)
                        if not rows:
                            return
                        out = out[keep]
                        L = len(rows)
                    val = _try_collapse(out, L)
                    regs[dest] = out if val is _MISS else val
                    continue

                if code == _STORE:
                    k, v, _o = ops[0]
                    val0 = regs[v] if k else v
                    ka, va, _o = ops[1]
                    addr0 = regs[va] if ka else va
                    gmem = g.gmem
                    dirty = g.dirty
                    if addr0.__class__ is not np.ndarray \
                            and addr0.__class__ is not _SpCol \
                            and not self._n_corrupt:
                        if type(addr0) is int and 8 <= addr0 < msize:
                            idx = addr0
                        else:
                            try:
                                idx = _check_addr(addr0, msize)
                            except SegfaultError as exc:
                                g.steps = steps
                                g.region_steps = rsteps
                                self._retire_all(g, exc)
                                return
                        vcls = val0.__class__
                        if vcls is not np.ndarray and vcls is not _SpCol:
                            # uniform store: lands in the group layer and
                            # re-cleans any stale per-lane overlay entries
                            writers = dirty.pop(idx, None)
                            if writers:
                                row_of = g.row_of
                                for lane in writers:
                                    if lane in row_of:
                                        ovs[lane].pop(idx, None)
                            gmem[idx] = val0
                        elif vcls is _SpCol:
                            # near-uniform store: base to the group layer,
                            # exception lanes to their overlays
                            old = dirty.get(idx)
                            if old:
                                row_of = g.row_of
                                for lane in old:
                                    if lane in row_of:
                                        ovs[lane].pop(idx, None)
                            vb = val0.base
                            tb = vb.__class__
                            wr = set()
                            for r, v_ in val0.exc.items():
                                if v_.__class__ is tb and v_ == vb:
                                    continue
                                lane = rows[r]
                                ovs[lane][idx] = v_
                                wr.add(lane)
                            if wr:
                                dirty[idx] = wr
                            elif old:
                                dirty.pop(idx, None)
                            gmem[idx] = vb
                        else:
                            for i in range(L):
                                ovs[rows[i]][idx] = val0[i]
                            dirty[idx] = set(rows)
                        continue
                    acol = addr0 if addr0.__class__ is np.ndarray else None
                    vcol = val0 if val0.__class__ is np.ndarray else None
                    corrupt = self._corrupt
                    dead = None
                    for i in range(L):
                        addr = acol[i] if acol is not None else _at(addr0, i)
                        lane = rows[i]
                        if corrupt[lane] is not None:
                            bit = corrupt[lane]
                            corrupt[lane] = None
                            self._n_corrupt -= 1
                            if isinstance(addr, int):
                                addr = addr ^ (1 << (bit % 24))
                        try:
                            if type(addr) is int and 8 <= addr < msize:
                                idx = addr
                            else:
                                idx = _check_addr(addr, msize)
                        except SegfaultError as exc:
                            if dead is None:
                                dead = {}
                            dead[i] = exc
                            continue
                        ovs[lane][idx] = \
                            vcol[i] if vcol is not None else _at(val0, i)
                        wr = dirty.get(idx)
                        if wr is None:
                            dirty[idx] = {lane}
                        else:
                            wr.add(lane)
                    if dead is not None:
                        g.steps = steps
                        g.region_steps = rsteps
                        self._retire_rows(g, dead)
                        if not rows:
                            return
                    continue

                # ---- control flow ---------------------------------------
                if code == _CBR:
                    k, v, _o = ops[0]
                    a = regs[v] if k else v
                    cls = a.__class__
                    if cls is _SpCol and not self._n_invert:
                        # near-uniform condition: only exception lanes can
                        # disagree with the base direction
                        tb = a.base != 0 and a.base == a.base
                        div = sorted(
                            r for r, v_ in a.exc.items()
                            if (v_ != 0 and v_ == v_) != tb)
                        if not div:
                            frame.label = extra[1] if tb else extra[2]
                            frame.pc = 0
                            break
                        div_set = set(div)
                        others = [i for i in range(L) if i not in div_set]
                        taken_sel, fall_sel = \
                            (others, div) if tb else (div, others)
                    else:
                        if cls is np.ndarray:
                            takens = [x != 0 and x == x for x in a]
                        elif cls is _SpCol:
                            tb = a.base != 0 and a.base == a.base
                            takens = [tb] * L
                            for r, v_ in a.exc.items():
                                takens[r] = v_ != 0 and v_ == v_
                        else:
                            t0 = a != 0 and a == a  # NaN falls through
                            if not self._n_invert:
                                frame.label = extra[1] if t0 else extra[2]
                                frame.pc = 0
                                break
                            takens = [t0] * L
                        if self._n_invert:
                            invert = self._invert
                            for i in range(L):
                                lane = rows[i]
                                if invert[lane]:
                                    takens[i] = not takens[i]
                                    invert[lane] = False
                                    self._n_invert -= 1
                        first = takens[0]
                        if takens.count(first) == L:
                            frame.label = extra[1] if first else extra[2]
                            frame.pc = 0
                            break
                        taken_sel = [i for i, t in enumerate(takens) if t]
                        fall_sel = [i for i, t in enumerate(takens) if not t]
                    frame.pc = pc
                    g.steps = steps
                    g.region_steps = rsteps
                    pairs = [(taken_sel, extra[1]), (fall_sel, extra[2])]
                    if len(fall_sel) > len(taken_sel):
                        pairs.reverse()  # bigger child adopts the layers
                    for j, (sel, target) in enumerate(pairs):
                        child = self._fork(g, sel, j == 0)
                        top = child.frames[-1]
                        top.label = target
                        top.pc = 0
                        work.append(child)
                    return

                if code == _BR:
                    frame.label = extra
                    frame.pc = 0
                    break

                if code == _RET:
                    n = len(ops)
                    rv = None
                    if n:
                        k, v, _o = ops[0]
                        rv = regs[v] if k else v
                    g.frames.pop()
                    if not g.frames:
                        g.steps = steps
                        g.region_steps = rsteps
                        gmem = g.gmem
                        brks = g.brks
                        for i in range(L):
                            lane = rows[i]
                            self._results[lane] = LaneResult(
                                _at(rv, i),
                                g.steps, g.region_steps, None, False, True)
                            self._bind_lane(
                                lane, gmem,
                                brks[i] if brks is not None else g.brk)
                        g.rows[:] = []
                        return
                    caller = g.frames[-1]
                    rd = frame.ret_dest
                    if rd is not None:
                        rcls = rv.__class__
                        if rcls is np.ndarray:
                            caller.regs[rd] = rv.copy()
                        elif rcls is _SpCol:
                            caller.regs[rd] = _SpCol(rv.base, dict(rv.exc))
                        else:
                            caller.regs[rd] = rv
                    frame = caller
                    break

                if code == _CALL:
                    callee = module.functions.get(extra)
                    if callee is None:
                        g.steps = steps
                        g.region_steps = rsteps
                        self._retire_all(
                            g, CoreDumpError(f"call to unknown function @{extra}"))
                        return
                    if len(g.frames) > MAX_CALL_DEPTH:
                        g.steps = steps
                        g.region_steps = rsteps
                        self._retire_all(
                            g, CoreDumpError(f"call depth exceeded in @{callee.name}"))
                        return
                    frame.pc = pc
                    nf = self._make_frame(callee, dest)
                    for p, (k, v, _o) in zip(callee.params, ops):
                        s = nf.slot_of[p.name]
                        if k:
                            x = regs[v]
                            xcls = x.__class__
                            if xcls is np.ndarray:
                                nf.regs[s] = x.copy()
                            elif xcls is _SpCol:
                                nf.regs[s] = _SpCol(x.base, dict(x.exc))
                            else:
                                nf.regs[s] = x
                        else:
                            nf.regs[s] = v
                    g.frames.append(nf)
                    frame = nf
                    break

                if code == _INTRIN:
                    vals = []
                    uni = True
                    for k, v, _o in ops:
                        x = regs[v] if k else v
                        xcls = x.__class__
                        if xcls is np.ndarray or xcls is _SpCol:
                            uni = False
                        vals.append(x)
                    if uni and self._shared:
                        # one stateless table, identical arguments: the
                        # whole group is a single call
                        fn = tables[0].get(extra)
                        if fn is None:
                            g.steps = steps
                            g.region_steps = rsteps
                            self._retire_all(
                                g, CoreDumpError(f"unknown intrinsic {extra!r}"))
                            return
                        try:
                            rv, charge = fn(None, tuple(vals))
                        except _LANE_TRAPS as exc:
                            g.steps = steps
                            g.region_steps = rsteps
                            self._retire_all(g, exc)
                            return
                        if dest is not None:
                            regs[dest] = rv
                        steps += len(charge)
                        continue
                    out = np.empty(L, dtype=object)
                    clens = [0] * L
                    dead = None
                    for i in range(L):
                        lane = rows[i]
                        try:
                            fn = tables[lane].get(extra)
                            if fn is None:
                                raise CoreDumpError(f"unknown intrinsic {extra!r}")
                            lvals = tuple(_at(x, i) for x in vals)
                            rv, charge = fn(None, lvals)
                            out[i] = rv
                            clens[i] = len(charge)
                        except _LANE_TRAPS as exc:
                            if dead is None:
                                dead = {}
                            dead[i] = exc
                    if dead is not None:
                        g.steps = steps
                        g.region_steps = rsteps
                        keep = self._retire_rows(g, dead)
                        if not rows:
                            return
                        out = out[keep]
                        clens = [clens[i] for i in keep]
                        L = len(rows)
                    if dest is not None:
                        val = _try_collapse(out, L)
                        regs[dest] = out if val is _MISS else val
                    lens = set(clens)
                    if len(lens) == 1:
                        steps += clens[0]
                        continue
                    # state-dependent predictor charges diverged: split
                    frame.pc = pc
                    g.steps = steps
                    g.region_steps = rsteps
                    first = True
                    for clen in sorted(lens):
                        sel = [i for i, cl in enumerate(clens) if cl == clen]
                        child = self._fork(g, sel, first)
                        first = False
                        child.steps += clen
                        work.append(child)
                    return

                if code == _ALLOC:
                    k, v, _o = ops[0]
                    a = regs[v] if k else v
                    if a.__class__ is not np.ndarray \
                            and a.__class__ is not _SpCol and g.brks is None:
                        sz = int(a)
                        if sz <= 0:
                            g.steps = steps
                            g.region_steps = rsteps
                            self._retire_all(g, SegfaultError(
                                g.brk, f"allocation of non-positive size {sz}"))
                            return
                        base = g.brk
                        g.brk = base + sz
                        if g.brk > msize:
                            g.steps = steps
                            g.region_steps = rsteps
                            self._retire_all(g, SegfaultError(base, "out of memory"))
                            return
                        regs[dest] = base
                        continue
                    if g.brks is None:
                        brks = np.empty(L, dtype=object)
                        brks[:] = g.brk
                        g.brks = brks
                    else:
                        brks = g.brks
                    out = np.empty(L, dtype=object)
                    dead = None
                    for i in range(L):
                        sz = int(_at(a, i))
                        try:
                            base = brks[i]
                            if sz <= 0:
                                raise SegfaultError(
                                    base, f"allocation of non-positive size {sz}")
                            nb = base + sz
                            brks[i] = nb  # the reference bumps before the check
                            if nb > msize:
                                raise SegfaultError(base, "out of memory")
                            out[i] = base
                        except _LANE_TRAPS as exc:
                            if dead is None:
                                dead = {}
                            dead[i] = exc
                    if dead is not None:
                        g.steps = steps
                        g.region_steps = rsteps
                        keep = self._retire_rows(g, dead)
                        if not rows:
                            return
                        out = out[keep]
                    regs[dest] = out
                    continue

                g.steps = steps
                g.region_steps = rsteps
                self._retire_all(g, CoreDumpError(
                    f"unimplemented opcode index {code}"))
                return
            else:
                g.steps = steps
                g.region_steps = rsteps
                self._retire_all(g, CoreDumpError(
                    f"block {frame.label} of @{frame.fname} fell through "
                    f"without terminator"
                ))
                return

    # -- scalar continuation ------------------------------------------------
    def _scalar_finish(self, g: _Group) -> None:
        """Hand every lane of a small group to the per-lane scalar loop.
        Each lane gets its own composed memory view over the group's now-
        frozen write layer; further stores land in the lane overlay."""
        pending = {}
        for step, lane in g.trigs[g.tptr:]:
            pending[lane] = step
        brks = g.brks
        for i, lane in enumerate(g.rows):
            self._bind_lane(lane, g.gmem,
                            brks[i] if brks is not None else g.brk)
            frames = [
                _SFrame(fr.fname, fr.blocks, fr.names,
                        [_at(col, i) for col in fr.regs],
                        fr.label, fr.pc, fr.ret_dest)
                for fr in g.frames
            ]
            self._results[lane] = self._run_scalar_lane(
                lane, frames, g.steps, g.region_steps, pending.get(lane))
        g.rows[:] = []

    def _run_scalar_lane(
        self,
        lane: int,
        frames: List[_SFrame],
        steps: int,
        region_steps: int,
        pending: Optional[int],
    ) -> LaneResult:
        """Finish one lane on a slot-indexed scalar loop.

        This is the reference interpreter's ``_exec`` restated over the
        batch decode (slot lists instead of name dicts) so it can resume
        from mid-execution state; every operator expression, trap
        conversion and counter update matches instruction-for-instruction.
        """
        mem = self._lmems[lane]
        table = self._tables[lane]
        module = self.module
        max_steps = self.max_steps
        plan = self._plans[lane]
        invert = self._invert
        corrupt = self._corrupt
        skip_left = self._skip
        cf = self._cf
        may_skip = plan is not None and plan.kind in SKIP_KINDS
        may_ctrl = plan is not None and plan.kind in CONTROL_KINDS

        frame = frames[-1]
        blocks = frame.blocks
        label = frame.label
        instrs = blocks[label]
        num = len(instrs)
        pc = frame.pc
        regs = frame.regs
        try:
            while True:
                if pc == num:
                    raise CoreDumpError(
                        f"block {label} of @{frame.fname} fell through "
                        f"without terminator"
                    )
                code, dest, ops, extra, in_region = instrs[pc]
                pc += 1
                steps += 1
                if steps > max_steps:
                    raise HangError(steps)
                if in_region:
                    region_steps += 1
                    if pending is not None and region_steps - 1 == pending:
                        pending = None
                        self._scalar_inject(lane, frames, plan)
                if may_skip and skip_left[lane]:
                    # drop this instruction's effects; a dropped terminator
                    # falls through to the next block in layout order
                    skip_left[lane] -= 1
                    if code == _BR or code == _CBR or code == _RET:
                        nxt = self._succ[frame.fname][0][label]
                        if nxt is None:
                            raise CoreDumpError(
                                f"block {label} of @{frame.fname} fell "
                                f"through without terminator")
                        label = nxt
                        instrs = blocks[label]
                        num = len(instrs)
                        pc = 0
                        frame.label = label
                    continue

                n = len(ops)
                if n > 0:
                    k, v, _o = ops[0]
                    a = regs[v] if k else v
                    if may_ctrl and a is _UNDEF:
                        raise CoreDumpError(
                            f"read of uninitialized register "
                            f"%{frame.names[v]}")
                    if n > 1:
                        k, v, _o = ops[1]
                        b = regs[v] if k else v
                        if may_ctrl and b is _UNDEF:
                            raise CoreDumpError(
                                f"read of uninitialized register "
                                f"%{frame.names[v]}")

                if code == _LOAD:
                    if corrupt[lane] is not None:
                        bit = corrupt[lane]
                        corrupt[lane] = None
                        self._n_corrupt -= 1
                        if isinstance(a, int):
                            a = a ^ (1 << (bit % 24))
                    regs[dest] = mem.load(a)
                    continue
                if code == _FMUL:
                    regs[dest] = a * b
                elif code == _FADD:
                    regs[dest] = a + b
                elif code == _FSUB:
                    regs[dest] = a - b
                elif code == _ADD:
                    regs[dest] = a + b
                elif code == _MOV:
                    regs[dest] = a
                elif code == _MUL:
                    r = a * b
                    if isinstance(r, int) and (r > _HUGE_INT or r < -_HUGE_INT):
                        r &= _INT_MASK64
                    regs[dest] = r
                elif code == _SUB:
                    regs[dest] = a - b
                elif code == _ICMP or code == _FCMP:
                    if extra == 2:
                        r = a < b
                    elif extra == 0:
                        r = a == b
                    elif extra == 4:
                        r = a > b
                    elif extra == 3:
                        r = a <= b
                    elif extra == 5:
                        r = a >= b
                    else:
                        r = a != b
                    regs[dest] = 1 if r else 0
                elif code == _CBR:
                    taken = a != 0 and a == a  # NaN condition falls through
                    if invert[lane]:
                        taken = not taken
                        invert[lane] = False
                        self._n_invert -= 1
                    label = extra[1] if taken else extra[2]
                    if cf[lane] is not None:
                        label = self._retarget_lane(lane, frame.fname, label)
                    instrs = blocks[label]
                    num = len(instrs)
                    pc = 0
                    frame.label = label
                elif code == _BR:
                    label = extra
                    if cf[lane] is not None:
                        label = self._retarget_lane(lane, frame.fname, label)
                    instrs = blocks[label]
                    num = len(instrs)
                    pc = 0
                    frame.label = label
                elif code == _STORE:
                    if corrupt[lane] is not None:
                        bit = corrupt[lane]
                        corrupt[lane] = None
                        self._n_corrupt -= 1
                        if isinstance(b, int):
                            b = b ^ (1 << (bit % 24))
                    mem.store(b, a)
                elif code == _RET:
                    value = a if n else None
                    frames.pop()
                    if not frames:
                        return LaneResult(
                            value, steps, region_steps, None, False, True)
                    rd = frame.ret_dest
                    frame = frames[-1]
                    blocks = frame.blocks
                    label = frame.label
                    instrs = blocks[label]
                    num = len(instrs)
                    pc = frame.pc
                    regs = frame.regs
                    if rd is not None:
                        regs[rd] = value
                elif code == _CALL:
                    callee = module.functions.get(extra)
                    if callee is None:
                        raise CoreDumpError(f"call to unknown function @{extra}")
                    if len(frames) > MAX_CALL_DEPTH:
                        raise CoreDumpError(
                            f"call depth exceeded in @{callee.name}")
                    frame.label = label
                    frame.pc = pc
                    entry, cblocks, cnames, _slot_of = self._decode(callee)
                    cregs = [_UNDEF] * len(cnames)
                    # parameters occupy slots 0..P-1 in declaration order
                    # (decode assigns them first); surplus args truncate
                    # exactly like the reference's zip
                    for j in range(min(len(callee.params), n)):
                        k, v, _o = ops[j]
                        x = regs[v] if k else v
                        if may_ctrl and x is _UNDEF:
                            raise CoreDumpError(
                                f"read of uninitialized register "
                                f"%{frame.names[v]}")
                        cregs[j] = x
                    nf = _SFrame(callee.name, cblocks, cnames, cregs,
                                 entry, 0, dest)
                    frames.append(nf)
                    frame = nf
                    blocks = cblocks
                    label = entry
                    instrs = blocks[label]
                    num = len(instrs)
                    pc = 0
                    regs = cregs
                elif code == _INTRIN:
                    fn = table.get(extra)
                    if fn is None:
                        raise CoreDumpError(f"unknown intrinsic {extra!r}")
                    vals = tuple(regs[v] if k else v for k, v, _o in ops)
                    if may_ctrl:
                        for x, (k, v, _o) in zip(vals, ops):
                            if x is _UNDEF:
                                raise CoreDumpError(
                                    f"read of uninitialized register "
                                    f"%{frame.names[v]}")
                    rv, charge = fn(None, vals)
                    steps += len(charge)
                    if dest is not None:
                        regs[dest] = rv
                elif code == _SDIV:
                    try:
                        q = abs(a) // abs(b)
                        regs[dest] = q if (a >= 0) == (b >= 0) else -q
                    except ZeroDivisionError:
                        raise CoreDumpError("integer division by zero") from None
                elif code == _SREM:
                    try:
                        regs[dest] = a - b * (abs(a) // abs(b)) * (
                            1 if (a >= 0) == (b >= 0) else -1)
                    except ZeroDivisionError:
                        raise CoreDumpError("integer remainder by zero") from None
                elif code == _FDIV:
                    try:
                        regs[dest] = a / b
                    except ZeroDivisionError:
                        regs[dest] = math.nan if a == 0 else math.copysign(math.inf, a)
                elif code == _FNEG:
                    regs[dest] = -a
                elif code == _FABS:
                    regs[dest] = abs(a)
                elif code == _SQRT:
                    regs[dest] = math.sqrt(a) if a >= 0 else math.nan
                elif code == _EXP:
                    try:
                        regs[dest] = math.exp(a)
                    except OverflowError:
                        regs[dest] = math.inf
                elif code == _LOG:
                    try:
                        regs[dest] = math.log(a)
                    except ValueError:
                        regs[dest] = math.nan
                elif code == _SIN:
                    regs[dest] = math.sin(a) if math.isfinite(a) else math.nan
                elif code == _COS:
                    regs[dest] = math.cos(a) if math.isfinite(a) else math.nan
                elif code == _FLOOR:
                    regs[dest] = math.floor(a) if math.isfinite(a) else a
                elif code == _SITOFP:
                    regs[dest] = float(a)
                elif code == _FPTOSI:
                    try:
                        regs[dest] = int(a)
                    except (ValueError, OverflowError):
                        raise CoreDumpError("float-to-int conversion trap") from None
                elif code == _SELECT:
                    k, v, _o = ops[2]
                    c = regs[v] if k else v
                    if may_ctrl and c is _UNDEF:
                        raise CoreDumpError(
                            f"read of uninitialized register "
                            f"%{frame.names[v]}")
                    regs[dest] = b if (a != 0 and a == a) else c
                elif code == _AND:
                    regs[dest] = int(a) & int(b)
                elif code == _OR:
                    regs[dest] = int(a) | int(b)
                elif code == _XOR:
                    regs[dest] = int(a) ^ int(b)
                elif code == _SHL:
                    r = int(a) << (int(b) & 63)
                    if r > _HUGE_INT or r < -_HUGE_INT:
                        r &= _INT_MASK64
                    regs[dest] = r
                elif code == _LSHR:
                    regs[dest] = (int(a) & _INT_MASK64) >> (int(b) & 63)
                elif code == _ALLOC:
                    regs[dest] = mem.allocate(int(a))
                else:  # pragma: no cover - all opcodes handled above
                    raise CoreDumpError(f"unimplemented opcode index {code}")
        except _LANE_TRAPS as exc:
            trap, det = _classify_trap(exc)
            return LaneResult(None, steps, region_steps, trap, det)


def _uop(code: int, extra, a, b, c):
    """Uniform-group dispatch for value ops outside the inlined hot set,
    mirroring the reference chain expression-for-expression (including
    every trap conversion)."""
    if code == _SDIV:
        try:
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q
        except ZeroDivisionError:
            raise CoreDumpError("integer division by zero") from None
    if code == _SREM:
        try:
            return a - b * (abs(a) // abs(b)) * (1 if (a >= 0) == (b >= 0) else -1)
        except ZeroDivisionError:
            raise CoreDumpError("integer remainder by zero") from None
    if code == _FDIV:
        try:
            return a / b
        except ZeroDivisionError:
            return math.nan if a == 0 else math.copysign(math.inf, a)
    if code == _FNEG:
        return -a
    if code == _FABS:
        return abs(a)
    if code == _SQRT:
        return math.sqrt(a) if a >= 0 else math.nan
    if code == _EXP:
        try:
            return math.exp(a)
        except OverflowError:
            return math.inf
    if code == _LOG:
        try:
            return math.log(a)
        except ValueError:
            return math.nan
    if code == _SIN:
        return math.sin(a) if math.isfinite(a) else math.nan
    if code == _COS:
        return math.cos(a) if math.isfinite(a) else math.nan
    if code == _FLOOR:
        return math.floor(a) if math.isfinite(a) else a
    if code == _SITOFP:
        return float(a)
    if code == _FPTOSI:
        try:
            return int(a)
        except (ValueError, OverflowError):
            raise CoreDumpError("float-to-int conversion trap") from None
    if code == _SELECT:
        return b if (a != 0 and a == a) else c
    if code == _AND:
        return int(a) & int(b)
    if code == _OR:
        return int(a) | int(b)
    if code == _XOR:
        return int(a) ^ int(b)
    if code == _SHL:
        r = int(a) << (int(b) & 63)
        if r > _HUGE_INT or r < -_HUGE_INT:
            r &= _INT_MASK64
        return r
    if code == _LSHR:
        return (int(a) & _INT_MASK64) >> (int(b) & 63)
    raise CoreDumpError(f"unimplemented opcode index {code}")


def _sop(code: int, extra, a, b, c):
    """One scalar application of any value op (hot ops inlined, the
    cold tail delegated to ``_uop``), mirroring the reference dispatch
    chain expression-for-expression including every trap conversion."""
    if code == _ADD or code == _FADD:
        return a + b
    if code == _SUB or code == _FSUB:
        return a - b
    if code == _FMUL:
        return a * b
    if code == _MOV:
        return a
    if code == _MUL:
        r = a * b
        if isinstance(r, int) and (r > _HUGE_INT or r < -_HUGE_INT):
            r &= _INT_MASK64
        return r
    if code == _ICMP or code == _FCMP:
        if extra == 2:
            r = a < b
        elif extra == 0:
            r = a == b
        elif extra == 4:
            r = a > b
        elif extra == 3:
            r = a <= b
        elif extra == 5:
            r = a >= b
        else:
            r = a != b
        return 1 if r else 0
    return _uop(code, extra, a, b, c)


def _scalar_eval(code: int, extra, srcs, i: int):
    """One lane of a vector-path value op.  Used for cold ops and
    per-lane trap refinement."""
    col, const = srcs[0]
    a = col[i] if col is not None else const
    b = c = None
    if len(srcs) > 1:
        col, const = srcs[1]
        b = col[i] if col is not None else const
        if len(srcs) > 2:
            col, const = srcs[2]
            c = col[i] if col is not None else const
    return _sop(code, extra, a, b, c)
