"""First-order energy accounting.

The paper motivates software-only protection partly by energy: redundant
multithreading "generally suffers from high energy consumption" because
every duplicated instruction costs energy whether or not the core can hide
its latency.  The same logic says instruction counts, not IPC, drive a
protection scheme's energy overhead — SWIFT-R's 3.5x instructions cost
~3.5x dynamic energy even though its wall-clock overhead is only 2.3x,
while RSkip's skipped re-computations save energy one-for-one.

The model is deliberately first-order: a per-opcode energy table (scaled
to an ALU op = 1.0), dynamic counts in, picojoule-equivalents out, plus a
static leakage term proportional to cycles when a timing model ran.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..ir.instructions import Opcode

#: Dynamic energy per operation, normalized to one ALU op.  Ratios follow
#: the usual energy-per-op folklore: memory access is an order of
#: magnitude above arithmetic; transcendentals are iterative.
ENERGY: Dict[Opcode, float] = {
    Opcode.MOV: 0.3,
    Opcode.ADD: 1.0,
    Opcode.SUB: 1.0,
    Opcode.MUL: 3.0,
    Opcode.SDIV: 12.0,
    Opcode.SREM: 12.0,
    Opcode.AND: 0.6,
    Opcode.OR: 0.6,
    Opcode.XOR: 0.6,
    Opcode.SHL: 0.8,
    Opcode.LSHR: 0.8,
    Opcode.FADD: 2.0,
    Opcode.FSUB: 2.0,
    Opcode.FMUL: 4.0,
    Opcode.FDIV: 14.0,
    Opcode.FNEG: 0.5,
    Opcode.FABS: 0.5,
    Opcode.SQRT: 15.0,
    Opcode.EXP: 25.0,
    Opcode.LOG: 25.0,
    Opcode.SIN: 25.0,
    Opcode.COS: 25.0,
    Opcode.FLOOR: 2.0,
    Opcode.SITOFP: 2.0,
    Opcode.FPTOSI: 2.0,
    Opcode.ICMP: 1.0,
    Opcode.FCMP: 2.0,
    Opcode.SELECT: 1.0,
    Opcode.LOAD: 10.0,
    Opcode.STORE: 10.0,
    Opcode.ALLOC: 2.0,
    Opcode.BR: 1.0,
    Opcode.CBR: 1.5,
    Opcode.CALL: 3.0,
    Opcode.RET: 1.5,
    Opcode.INTRIN: 3.0,
}

#: Static (leakage) energy per cycle, in the same ALU-op units.
LEAKAGE_PER_CYCLE = 0.5


@dataclass
class EnergyEstimate:
    dynamic: float
    static: float

    @property
    def total(self) -> float:
        return self.dynamic + self.static

    def normalized(self, baseline: "EnergyEstimate") -> float:
        return self.total / baseline.total if baseline.total else 0.0


def estimate_energy(
    counts: Mapping[Opcode, int],
    cycles: int = 0,
    energy_table: Optional[Mapping[Opcode, float]] = None,
) -> EnergyEstimate:
    """Energy of an execution from its per-opcode dynamic counts.

    *counts* is :attr:`repro.runtime.interpreter.RunResult.counts`; pass
    the run's ``cycles`` to include leakage (zero when no timing model
    ran — the comparison is then dynamic-energy only).
    """
    table = energy_table if energy_table is not None else ENERGY
    dynamic = sum(table.get(op, 1.0) * n for op, n in counts.items())
    return EnergyEstimate(dynamic=dynamic, static=LEAKAGE_PER_CYCLE * cycles)
