"""Per-function execution profiling.

Attaches to the interpreter (``Interpreter(..., profile=Profile())``) and
attributes dynamic instructions to functions — inclusive (with callees)
and exclusive (self only) — plus call counts.  The evaluation uses it to
verify where the protection overhead actually lands (e.g. how many
instructions the outlined ``body.dup`` re-computations consume).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Profile:
    """Aggregated per-function counters."""

    inclusive: Dict[str, int] = field(default_factory=dict)
    exclusive: Dict[str, int] = field(default_factory=dict)
    calls: Dict[str, int] = field(default_factory=dict)

    def record(self, name: str, total: int, self_steps: int) -> None:
        self.inclusive[name] = self.inclusive.get(name, 0) + total
        self.exclusive[name] = self.exclusive.get(name, 0) + self_steps
        self.calls[name] = self.calls.get(name, 0) + 1

    def share(self, name: str) -> float:
        """Exclusive share of all executed instructions."""
        total = sum(self.exclusive.values())
        return self.exclusive.get(name, 0) / total if total else 0.0

    def top(self, n: int = 10) -> List[tuple]:
        """(name, exclusive, inclusive, calls) rows, hottest first.

        Ties on exclusive steps break on the name, so the rendered order
        never depends on dict-insertion (i.e. first-call) order.
        """
        return sorted(
            (
                (name, self.exclusive.get(name, 0), self.inclusive.get(name, 0),
                 self.calls.get(name, 0))
                for name in self.inclusive
            ),
            key=lambda row: (-row[1], row[0]),
        )[:n]

    def render(self, n: int = 10, name_width: int = 32) -> str:
        """Aligned table of the top-*n* rows.

        The name column widens to the longest rendered name up to twice
        *name_width*; anything longer is head-truncated (keeping the
        suffix — outlined clones like ``…body.dup`` differ at the tail).
        """
        rows = self.top(n)
        width = max([name_width] + [len(name) for name, *_ in rows])
        width = min(width, 2 * name_width)
        lines = [f"{'function':{width}s} {'self':>10s} {'total':>10s} {'calls':>8s}"]
        for name, self_steps, total, calls in rows:
            if len(name) > width:
                name = "…" + name[-(width - 1):]
            lines.append(f"{name:{width}s} {self_steps:>10d} {total:>10d} {calls:>8d}")
        return "\n".join(lines)
