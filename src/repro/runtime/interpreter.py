"""IR interpreter.

Executes a module function-by-function while maintaining the three pieces
of state every experiment needs:

* **dynamic instruction counts** per opcode (Figure 7c's metric — exact);
* an optional **timing model** (`repro.runtime.scheduler.TimingModel`) fed
  with true dataflow dependences, producing cycles and IPC (Figures 7b/7d);
* **fault-injection hooks** implementing the SEU model of
  `repro.runtime.faults` (Figure 9).

Intrinsics (``intrin`` instructions) dispatch to Python callables registered
with :meth:`Interpreter.register_intrinsic`; each returns its result plus a
list of opcodes to *charge*, so predictor bookkeeping shows up in both the
instruction counts and the cycle model (DESIGN.md: "predictor cost
charging").
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.function import Function
from ..ir.instructions import CmpPred, Opcode
from ..ir.module import Module
from ..ir.values import Const, GlobalAddr, Reg
from ..obs.events import enabled as obs_enabled, span as obs_span
from .errors import CoreDumpError, HangError
from .faults import CONTROL_KINDS, SKIP_KINDS, FaultPlan, Region, flip_value
from .memory import Memory
from .profiling import Profile
from .scheduler import TimingModel

OPCODES: List[Opcode] = list(Opcode)
_CODE: Dict[Opcode, int] = {op: i for i, op in enumerate(OPCODES)}

# frequently used opcode indices, hoisted for the dispatch chain
_MOV = _CODE[Opcode.MOV]
_ADD = _CODE[Opcode.ADD]
_SUB = _CODE[Opcode.SUB]
_MUL = _CODE[Opcode.MUL]
_SDIV = _CODE[Opcode.SDIV]
_SREM = _CODE[Opcode.SREM]
_AND = _CODE[Opcode.AND]
_OR = _CODE[Opcode.OR]
_XOR = _CODE[Opcode.XOR]
_SHL = _CODE[Opcode.SHL]
_LSHR = _CODE[Opcode.LSHR]
_FADD = _CODE[Opcode.FADD]
_FSUB = _CODE[Opcode.FSUB]
_FMUL = _CODE[Opcode.FMUL]
_FDIV = _CODE[Opcode.FDIV]
_FNEG = _CODE[Opcode.FNEG]
_FABS = _CODE[Opcode.FABS]
_SQRT = _CODE[Opcode.SQRT]
_EXP = _CODE[Opcode.EXP]
_LOG = _CODE[Opcode.LOG]
_SIN = _CODE[Opcode.SIN]
_COS = _CODE[Opcode.COS]
_FLOOR = _CODE[Opcode.FLOOR]
_SITOFP = _CODE[Opcode.SITOFP]
_FPTOSI = _CODE[Opcode.FPTOSI]
_ICMP = _CODE[Opcode.ICMP]
_FCMP = _CODE[Opcode.FCMP]
_SELECT = _CODE[Opcode.SELECT]
_LOAD = _CODE[Opcode.LOAD]
_STORE = _CODE[Opcode.STORE]
_ALLOC = _CODE[Opcode.ALLOC]
_BR = _CODE[Opcode.BR]
_CBR = _CODE[Opcode.CBR]
_CALL = _CODE[Opcode.CALL]
_RET = _CODE[Opcode.RET]
_INTRIN = _CODE[Opcode.INTRIN]

_PRED = {
    CmpPred.EQ: 0,
    CmpPred.NE: 1,
    CmpPred.LT: 2,
    CmpPred.LE: 3,
    CmpPred.GT: 4,
    CmpPred.GE: 5,
}

_HUGE_INT = 1 << 128
_INT_MASK64 = (1 << 64) - 1

#: Operand-count contract per opcode index, enforced at decode time.
#: ``None`` means variadic (CALL/INTRIN take any number of arguments);
#: a tuple lists the accepted counts (RET may be void).
OPERAND_ARITY: List[Optional[Tuple[int, ...]]] = [None] * len(OPCODES)
for _op, _n in {
    Opcode.MOV: 1,
    Opcode.ADD: 2, Opcode.SUB: 2, Opcode.MUL: 2,
    Opcode.SDIV: 2, Opcode.SREM: 2,
    Opcode.AND: 2, Opcode.OR: 2, Opcode.XOR: 2,
    Opcode.SHL: 2, Opcode.LSHR: 2,
    Opcode.FADD: 2, Opcode.FSUB: 2, Opcode.FMUL: 2, Opcode.FDIV: 2,
    Opcode.FNEG: 1, Opcode.FABS: 1, Opcode.SQRT: 1, Opcode.EXP: 1,
    Opcode.LOG: 1, Opcode.SIN: 1, Opcode.COS: 1, Opcode.FLOOR: 1,
    Opcode.SITOFP: 1, Opcode.FPTOSI: 1,
    Opcode.ICMP: 2, Opcode.FCMP: 2, Opcode.SELECT: 3,
    Opcode.LOAD: 1, Opcode.STORE: 2, Opcode.ALLOC: 1,
    Opcode.BR: 0, Opcode.CBR: 1,
}.items():
    OPERAND_ARITY[_CODE[_op]] = (_n,)
OPERAND_ARITY[_CODE[Opcode.RET]] = (0, 1)

DEFAULT_MAX_STEPS = 200_000_000
MAX_CALL_DEPTH = 64
#: Physical register file modelled by the SEU injector: flips landing on
#: slots that hold no live program value are architecturally masked.
REGISTER_FILE_SIZE = 64

#: Intrinsic signature: (interp, args) -> (result, charge_opcodes)
IntrinsicFn = Callable[["Interpreter", Tuple], Tuple[object, Sequence[Opcode]]]


@dataclass
class RunResult:
    """Everything a single program execution produced."""

    value: object
    steps: int
    counts: Dict[Opcode, int]
    cycles: int = 0
    ipc: float = 0.0
    region_steps: int = 0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def dynamic_instructions(self) -> int:
        return self.steps


class Interpreter:
    """One execution context over a module.

    Create a fresh interpreter after transforming the module — decoded
    instruction caches are built lazily per function and are not
    invalidated.
    """

    def __init__(
        self,
        module: Module,
        memory: Optional[Memory] = None,
        timing: Optional[TimingModel] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        fault_plan: Optional[FaultPlan] = None,
        fault_region: Optional[Region] = None,
        profile: Optional["Profile"] = None,
    ):
        self.module = module
        self.memory = memory if memory is not None else Memory()
        if not self.memory.globals and module.globals:
            self.memory.load_globals(module)
        self.timing = timing
        self.max_steps = max_steps
        self.steps = 0
        self.counts: List[int] = [0] * len(OPCODES)
        self.intrinsics: Dict[str, IntrinsicFn] = {}
        self._dcache: Dict[str, Tuple[str, Dict[str, list]]] = {}

        self.fault_plan = fault_plan
        self.fault_region = fault_region
        self.region_steps = 0
        self._fault_pending = fault_plan is not None
        self._invert_next_cbr = False
        self._corrupt_next_mem: Optional[int] = None
        #: remaining dynamic instructions to drop (skip / skip-burst)
        self._skip_left = 0
        #: pending control-flow retarget pick (cf kind), consumed at the
        #: next executed branch
        self._cf_pick: Optional[float] = None
        #: layout-successor map and block order per decoded function,
        #: used by the skip fall-through and cf retarget machinery
        self._succ: Dict[str, Tuple[Dict[str, Optional[str]], Tuple[str, ...]]] = {}
        #: active register frames, callee last — the SEU injector picks a
        #: victim across the whole stack, modelling one shared physical
        #: register file (stale caller values soak up many upsets)
        self._frames: List[Dict[str, object]] = []
        #: owning function name per active frame, parallel to ``_frames``
        #: (lets scope-aware injectors — O3's protocol-region flips — pick
        #: victims only from frames of designated functions)
        self._frame_funcs: List[str] = []
        self.profile = profile
        self._prof_stack: List[List[int]] = []
        #: optional per-block execution counts ((func, label) -> visits);
        #: assign a dict to enable (used by the vulnerability analysis)
        self.block_counts: Optional[Dict[Tuple[str, str], int]] = None
        #: optional trace of every in-region dynamic instruction as
        #: (opcode index, dest register name); assign a list to enable.
        #: This is the counting pre-run of the O6 exhaustive skip checker:
        #: entry *i* names the instruction a plan with ``step == i`` hits.
        self.site_trace: Optional[List[Tuple[int, Optional[str]]]] = None
        #: optional owner trace of every in-region dynamic instruction as
        #: (function name, block label); assign anything with ``append``
        #: to enable (repro.eval.sections passes a run-length recorder).
        #: Entry *i* names the static location a plan with ``step == i``
        #: would trigger at — the counting pre-run of the incremental
        #: campaign's section partition.
        self.section_trace = None

    # -- public API -----------------------------------------------------------
    def register_intrinsic(self, name: str, fn: IntrinsicFn) -> None:
        self.intrinsics[name] = fn

    def register_intrinsics(self, table: Dict[str, IntrinsicFn]) -> None:
        self.intrinsics.update(table)

    def run(self, func_name: str, args: Sequence = ()) -> RunResult:
        func = self.module.get_function(func_name)
        if len(args) != len(func.params):
            raise TypeError(
                f"@{func_name} expects {len(func.params)} arguments, got {len(args)}"
            )
        times = [0] * len(args)
        # span clean runs only: faulted trials emit their own per-trial
        # events and a per-run span would swamp the manifest
        if self.fault_plan is None and obs_enabled():
            with obs_span(f"ref.run:@{func_name}"):
                value, _ = self._run_function(func, list(args), times, depth=0)
        elif self.fault_plan is not None and self.fault_plan.kind in CONTROL_KINDS:
            # dropped defs and illegal control edges can reach a register
            # no path has written; verified IR cannot, so the raw KeyError
            # here is always fault-induced and classifies as a coredump
            try:
                value, _ = self._run_function(func, list(args), times, depth=0)
            except KeyError as exc:
                raise CoreDumpError(
                    f"read of uninitialized register %{exc.args[0]}") from None
        else:
            value, _ = self._run_function(func, list(args), times, depth=0)
        tm = self.timing
        return RunResult(
            value=value,
            steps=self.steps,
            counts=self.count_dict(),
            cycles=tm.cycles if tm else 0,
            ipc=tm.ipc if tm else 0.0,
            region_steps=self.region_steps,
        )

    def count_dict(self) -> Dict[Opcode, int]:
        return {op: self.counts[i] for i, op in enumerate(OPCODES) if self.counts[i]}

    # -- decoding -------------------------------------------------------------
    def _decode(self, func: Function) -> Tuple[str, Dict[str, list]]:
        cached = self._dcache.get(func.name)
        if cached is not None:
            return cached
        region = self.fault_region
        blocks: Dict[str, list] = {}
        for label in func.block_order():
            in_region = True if region is None else region.contains(func.name, label)
            decoded = []
            for idx, instr in enumerate(func.blocks[label].instrs):
                ops = []
                for a in instr.args:
                    if isinstance(a, Reg):
                        ops.append((True, a.name))
                    elif isinstance(a, GlobalAddr):
                        ops.append((False, self.memory.global_addr(a.name)))
                    else:
                        assert isinstance(a, Const)
                        ops.append((False, a.value))
                code = _CODE[instr.op]
                want = OPERAND_ARITY[code]
                if want is not None and len(ops) not in want:
                    raise CoreDumpError(
                        f"@{func.name}:{label}: {instr.op.value} expects "
                        f"{' or '.join(map(str, want))} operand(s), got {len(ops)}"
                    )
                dest = instr.dest.name if instr.dest is not None else None
                if instr.op is Opcode.BR:
                    extra = instr.labels[0]
                elif instr.op is Opcode.CBR:
                    extra = ((func.name, label, idx), instr.labels[0], instr.labels[1])
                elif instr.op in (Opcode.CALL, Opcode.INTRIN):
                    extra = instr.callee
                elif instr.op in (Opcode.ICMP, Opcode.FCMP):
                    extra = _PRED[instr.pred]
                else:
                    extra = None
                decoded.append((code, dest, tuple(ops), extra, in_region))
            blocks[label] = decoded
        order = tuple(func.block_order())
        nextmap: Dict[str, Optional[str]] = {
            lab: (order[i + 1] if i + 1 < len(order) else None)
            for i, lab in enumerate(order)
        }
        self._succ[func.name] = (nextmap, order)
        entry = order[0]
        self._dcache[func.name] = (entry, blocks)
        return entry, blocks

    # -- fault machinery ---------------------------------------------------
    def _inject(self, regs: Dict[str, object]) -> None:
        plan = self.fault_plan
        self._fault_pending = False
        if plan.kind == "branch":
            self._invert_next_cbr = True
            return
        if plan.kind == "addr":
            self._corrupt_next_mem = plan.bit
            return
        if plan.kind in SKIP_KINDS:
            # the triggered instruction itself is the first one dropped
            self._skip_left = plan.burst_len
            return
        if plan.kind == "cf":
            self._cf_pick = plan.pick
            return
        slots = []
        for frame in self._frames:
            slots.extend((frame, name) for name in sorted(frame))
        if not slots:
            slots = [(regs, name) for name in sorted(regs)]
        if not slots:
            return
        # the SEU lands somewhere in a fixed-size physical register file;
        # slots not currently holding live program values absorb the flip
        # (architectural masking — the dominant effect in the paper's
        # UNSAFE runs)
        nfile = max(REGISTER_FILE_SIZE, len(slots))
        k = int(plan.pick * nfile)
        if k >= len(slots):
            return
        frame, name = slots[k]
        frame[name] = flip_value(frame[name], plan.bit)

    # -- execution -----------------------------------------------------------
    def _run_function(
        self,
        func: Function,
        args: List,
        arg_times: List[int],
        depth: int,
    ) -> Tuple[object, int]:
        if depth > MAX_CALL_DEPTH:
            raise CoreDumpError(f"call depth exceeded in @{func.name}")
        entry, blocks = self._decode(func)

        regs: Dict[str, object] = {}
        times: Dict[str, int] = {}
        tm = self.timing
        for p, a, t in zip(func.params, args, arg_times):
            regs[p.name] = a
            if tm:
                times[p.name] = t

        self._frames.append(regs)
        self._frame_funcs.append(func.name)
        if self.profile is None:
            try:
                return self._exec(func, entry, blocks, regs, times, depth)
            finally:
                self._frames.pop()
                self._frame_funcs.pop()

        child_steps = [0]
        self._prof_stack.append(child_steps)
        start = self.steps
        try:
            return self._exec(func, entry, blocks, regs, times, depth)
        finally:
            self._frames.pop()
            self._frame_funcs.pop()
            self._prof_stack.pop()
            total = self.steps - start
            self.profile.record(func.name, total, total - child_steps[0])
            if self._prof_stack:
                self._prof_stack[-1][0] += total

    def _exec(
        self,
        func: Function,
        entry: str,
        blocks: Dict[str, list],
        regs: Dict[str, object],
        times: Dict[str, int],
        depth: int,
    ) -> Tuple[object, int]:
        tm = self.timing
        memory = self.memory
        counts = self.counts
        max_steps = self.max_steps
        label = entry
        block_counts = self.block_counts
        fname = func.name
        fault_plan = self.fault_plan
        site_trace = self.site_trace
        section_trace = self.section_trace
        # skip faults are serviced entirely within the _exec whose trigger
        # armed them (entering a frame needs an executed CALL, leaving one
        # an executed RET — both impossible mid-burst), so the hot loop
        # only pays the pending-skip check when this plan can arm one
        may_skip = fault_plan is not None and fault_plan.kind in SKIP_KINDS
        # steps/region_steps live in locals for the hot loop; the finally
        # below writes them back on every exit (return, trap, hang) and
        # nested calls sync through self, so callers — including fault
        # campaigns inspecting a trapped run — always observe exact totals
        steps = self.steps
        region_steps = self.region_steps

        try:
            while True:
                if block_counts is not None:
                    key = (fname, label)
                    block_counts[key] = block_counts.get(key, 0) + 1
                for code, dest, ops, extra, in_region in blocks[label]:
                    steps += 1
                    if steps > max_steps:
                        raise HangError(steps)
                    counts[code] += 1
                    if in_region:
                        region_steps += 1
                        if site_trace is not None:
                            site_trace.append((code, dest))
                        if section_trace is not None:
                            section_trace.append((fname, label))
                        if self._fault_pending and region_steps - 1 == fault_plan.step:
                            self._inject(regs)
                    if may_skip and self._skip_left:
                        # drop this instruction: it is fetched and counted
                        # but has no architectural effect.  A dropped
                        # terminator falls through to the next block in
                        # layout order (the PC just advances).
                        self._skip_left -= 1
                        if code == _BR or code == _CBR or code == _RET:
                            nxt = self._succ[fname][0][label]
                            if nxt is None:
                                raise CoreDumpError(
                                    f"block {label} of @{fname} fell "
                                    f"through without terminator")
                            label = nxt
                            break
                        continue

                    # ---- operand fetch --------------------------------------
                    n = len(ops)
                    if n > 0:
                        k, v = ops[0]
                        a = regs[v] if k else v
                        if n > 1:
                            k, v = ops[1]
                            b = regs[v] if k else v

                    # ---- dispatch -------------------------------------------
                    if code == _LOAD:
                        if self._corrupt_next_mem is not None:
                            a = self._corrupt_addr(a)
                        val = memory.load(a)
                        regs[dest] = val
                        if tm:
                            times[dest] = tm.load(a, times.get(ops[0][1], 0) if ops[0][0] else 0)
                        continue
                    if code == _FMUL:
                        regs[dest] = a * b
                    elif code == _FADD:
                        regs[dest] = a + b
                    elif code == _FSUB:
                        regs[dest] = a - b
                    elif code == _ADD:
                        regs[dest] = a + b
                    elif code == _MOV:
                        regs[dest] = a
                    elif code == _MUL:
                        r = a * b
                        if isinstance(r, int) and (r > _HUGE_INT or r < -_HUGE_INT):
                            r &= _INT_MASK64
                        regs[dest] = r
                    elif code == _SUB:
                        regs[dest] = a - b
                    elif code == _ICMP or code == _FCMP:
                        if extra == 2:
                            r = a < b
                        elif extra == 0:
                            r = a == b
                        elif extra == 4:
                            r = a > b
                        elif extra == 3:
                            r = a <= b
                        elif extra == 5:
                            r = a >= b
                        else:
                            r = a != b
                        regs[dest] = 1 if r else 0
                    elif code == _CBR:
                        taken = a != 0 and a == a  # NaN condition falls through
                        if self._invert_next_cbr:
                            taken = not taken
                            self._invert_next_cbr = False
                        if tm:
                            tm.branch(extra[0], taken, times.get(ops[0][1], 0) if ops[0][0] else 0)
                        label = extra[1] if taken else extra[2]
                        if self._cf_pick is not None:
                            label = self._retarget(fname, label)
                        break
                    elif code == _BR:
                        if tm:
                            tm.op(Opcode.BR, 0)
                        label = extra
                        if self._cf_pick is not None:
                            label = self._retarget(fname, label)
                        break
                    elif code == _STORE:
                        if self._corrupt_next_mem is not None:
                            b = self._corrupt_addr(b)
                        memory.store(b, a)
                        if tm:
                            ready = 0
                            if ops[0][0]:
                                ready = times.get(ops[0][1], 0)
                            if ops[1][0]:
                                t2 = times.get(ops[1][1], 0)
                                if t2 > ready:
                                    ready = t2
                            tm.store(b, ready)
                        continue
                    elif code == _RET:
                        if tm:
                            tm.op(Opcode.RET, 0)
                        if n:
                            rt = 0
                            if tm and ops[0][0]:
                                rt = times.get(ops[0][1], 0)
                            return a, rt
                        return None, 0
                    elif code == _CALL:
                        callee = self.module.functions.get(extra)
                        if callee is None:
                            raise CoreDumpError(f"call to unknown function @{extra}")
                        vals, vts = [], []
                        for k, v in ops:
                            vals.append(regs[v] if k else v)
                            vts.append(times.get(v, 0) if (tm and k) else 0)
                        if tm:
                            tm.op(Opcode.CALL, max(vts) if vts else 0)
                        self.steps = steps
                        self.region_steps = region_steps
                        try:
                            rv, rt = self._run_function(callee, vals, vts, depth + 1)
                        finally:
                            steps = self.steps
                            region_steps = self.region_steps
                        if dest is not None:
                            regs[dest] = rv
                            if tm:
                                times[dest] = rt
                        continue
                    elif code == _INTRIN:
                        fn = self.intrinsics.get(extra)
                        if fn is None:
                            raise CoreDumpError(f"unknown intrinsic {extra!r}")
                        vals = tuple(regs[v] if k else v for k, v in ops)
                        self.steps = steps
                        self.region_steps = region_steps
                        try:
                            rv, charge = fn(self, vals)
                        finally:
                            steps = self.steps
                            region_steps = self.region_steps
                        for op in charge:
                            counts[_CODE[op]] += 1
                        steps += len(charge)
                        if tm:
                            ready = 0
                            for k, v in ops:
                                if k:
                                    t2 = times.get(v, 0)
                                    if t2 > ready:
                                        ready = t2
                            t_end = tm.charge(charge, ready)
                            tm.op(Opcode.INTRIN, ready)
                            if dest is not None:
                                times[dest] = t_end
                        if dest is not None:
                            regs[dest] = rv
                        continue
                    elif code == _SDIV:
                        try:
                            q = abs(a) // abs(b)
                            regs[dest] = q if (a >= 0) == (b >= 0) else -q
                        except ZeroDivisionError:
                            raise CoreDumpError("integer division by zero") from None
                    elif code == _SREM:
                        try:
                            regs[dest] = a - b * (abs(a) // abs(b)) * (1 if (a >= 0) == (b >= 0) else -1)
                        except ZeroDivisionError:
                            raise CoreDumpError("integer remainder by zero") from None
                    elif code == _FDIV:
                        try:
                            regs[dest] = a / b
                        except ZeroDivisionError:
                            regs[dest] = math.nan if a == 0 else math.copysign(math.inf, a)
                    elif code == _FNEG:
                        regs[dest] = -a
                    elif code == _FABS:
                        regs[dest] = abs(a)
                    elif code == _SQRT:
                        regs[dest] = math.sqrt(a) if a >= 0 else math.nan
                    elif code == _EXP:
                        try:
                            regs[dest] = math.exp(a)
                        except OverflowError:
                            regs[dest] = math.inf
                    elif code == _LOG:
                        try:
                            regs[dest] = math.log(a)
                        except ValueError:
                            regs[dest] = math.nan
                    elif code == _SIN:
                        regs[dest] = math.sin(a) if math.isfinite(a) else math.nan
                    elif code == _COS:
                        regs[dest] = math.cos(a) if math.isfinite(a) else math.nan
                    elif code == _FLOOR:
                        regs[dest] = math.floor(a) if math.isfinite(a) else a
                    elif code == _SITOFP:
                        regs[dest] = float(a)
                    elif code == _FPTOSI:
                        try:
                            regs[dest] = int(a)
                        except (ValueError, OverflowError):
                            raise CoreDumpError("float-to-int conversion trap") from None
                    elif code == _SELECT:
                        k, v = ops[2]
                        c = regs[v] if k else v
                        regs[dest] = b if (a != 0 and a == a) else c
                    elif code == _AND:
                        regs[dest] = int(a) & int(b)
                    elif code == _OR:
                        regs[dest] = int(a) | int(b)
                    elif code == _XOR:
                        regs[dest] = int(a) ^ int(b)
                    elif code == _SHL:
                        # same lazy-wrap policy as MUL: results may exceed 64
                        # bits transiently, but are folded back once they pass
                        # 2**128 so repeated shifts cannot grow without bound
                        r = int(a) << (int(b) & 63)
                        if r > _HUGE_INT or r < -_HUGE_INT:
                            r &= _INT_MASK64
                        regs[dest] = r
                    elif code == _LSHR:
                        regs[dest] = (int(a) & _INT_MASK64) >> (int(b) & 63)
                    elif code == _ALLOC:
                        regs[dest] = memory.allocate(int(a))
                    else:  # pragma: no cover - all opcodes handled above
                        raise CoreDumpError(f"unimplemented opcode index {code}")

                    # ---- timing for the plain register-register ops ---------
                    if tm and dest is not None:
                        ready = 0
                        for k, v in ops:
                            if k:
                                t2 = times.get(v, 0)
                                if t2 > ready:
                                    ready = t2
                        times[dest] = tm.op(OPCODES[code], ready)
                else:
                    raise CoreDumpError(
                        f"block {label} of @{func.name} fell through without terminator"
                    )
        finally:
            self.steps = steps
            self.region_steps = region_steps

    def _corrupt_addr(self, addr):
        bit = self._corrupt_next_mem
        self._corrupt_next_mem = None
        if isinstance(addr, int):
            return addr ^ (1 << (bit % 24))
        return addr

    def _retarget(self, fname: str, correct: str) -> str:
        """Consume a pending ``cf`` fault: the branch lands on a
        wrong-but-valid block of the same function, chosen by the plan's
        pick over the function's block order.  A single-block function
        offers no wrong target, so the fault is architecturally masked."""
        pick = self._cf_pick
        self._cf_pick = None
        candidates = [lab for lab in self._succ[fname][1] if lab != correct]
        if not candidates:
            return correct
        return candidates[int(pick * len(candidates)) % len(candidates)]


def run_program(
    module: Module,
    func_name: str = "main",
    args: Sequence = (),
    memory: Optional[Memory] = None,
    timing: bool = False,
    width: int = 4,
    max_steps: int = DEFAULT_MAX_STEPS,
    intrinsics: Optional[Dict[str, IntrinsicFn]] = None,
) -> RunResult:
    """One-shot convenience wrapper: build an interpreter, run, return result."""
    tm = TimingModel(width=width) if timing else None
    interp = Interpreter(module, memory=memory, timing=tm, max_steps=max_steps)
    if intrinsics:
        interp.register_intrinsics(intrinsics)
    return interp.run(func_name, args)
