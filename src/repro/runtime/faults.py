"""Single-event-upset fault model (paper section 7.2).

One bit flip per run, injected into the architectural state of the
simulated core at a uniformly random point of the (optionally restricted)
dynamic instruction stream.  Three fault kinds model where the upset
lands:

* ``VALUE`` — a random bit of a random *register* of the current frame
  (live or stale; stale hits are how faults get architecturally masked);
* ``BRANCH`` — the next conditional branch takes the wrong direction
  (modelling the opcode-field flips the paper names as the residual
  failures of software-only schemes);
* ``ADDRESS`` — the next memory access uses a corrupted effective address
  (address-generation upset after validation).

Memory cells at rest are never touched: the paper assumes ECC DRAM/caches.
"""
from __future__ import annotations

import math
import random
import struct
from dataclasses import dataclass
from typing import FrozenSet, Tuple

_INT_MASK = (1 << 64) - 1
_INT_SIGN = 1 << 63

#: Default mix of fault kinds: register-file upsets dominate; a small share
#: lands in control and address generation (paper: "no dedicated mechanism
#: to protect special registers").
DEFAULT_KIND_WEIGHTS = (("value", 0.90), ("branch", 0.05), ("addr", 0.05))


def flip_int(value: int, bit: int) -> int:
    """Flip *bit* of a 64-bit two's-complement integer."""
    raw = value & _INT_MASK
    raw ^= 1 << (bit & 63)
    if raw & _INT_SIGN:
        return raw - (1 << 64)
    return raw


def flip_float(value: float, bit: int) -> float:
    """Flip *bit* of an IEEE-754 double.

    A value that cannot round-trip through a 64-bit double (e.g. a
    Python bignum reaching the float flipper) is returned unchanged —
    the flip is architecturally masked, like flips of non-numeric
    register state.  It must *not* be replaced by a zeroed bit pattern:
    that would turn a masked fault into a fabricated corruption that no
    modelled SEU could produce.
    """
    try:
        raw = struct.unpack("<Q", struct.pack("<d", value))[0]
    except (OverflowError, ValueError, struct.error):
        return value
    raw ^= 1 << (bit & 63)
    return struct.unpack("<d", struct.pack("<Q", raw))[0]


def flip_value(value, bit: int):
    if isinstance(value, int):
        return flip_int(value, bit)
    if isinstance(value, float):
        return flip_float(value, bit)
    return value  # non-numeric register state is not modelled


@dataclass
class FaultPlan:
    """A fully determined injection: where (dynamic step within the region),
    what kind, which bit, and a uniform pick to choose the register."""

    step: int
    kind: str = "value"
    bit: int = 0
    pick: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("value", "branch", "addr"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.step < 0:
            raise ValueError("fault step must be non-negative")


def random_plan(
    rng: random.Random,
    region_steps: int,
    kind_weights: Tuple = DEFAULT_KIND_WEIGHTS,
) -> FaultPlan:
    """Draw a uniformly random fault plan for a run whose restricted region
    executes *region_steps* dynamic instructions."""
    if region_steps <= 0:
        raise ValueError("region executes no instructions; nothing to inject into")
    total = 0.0
    for _name, w in kind_weights:
        if w <= 0:
            raise ValueError(
                f"kind_weights entries must be positive, got {_name}={w!r}")
        total += w
    if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
        raise ValueError(
            f"kind_weights must sum to 1.0, got {total!r}; a silent "
            f"renormalization would skew the drawn fault mix")
    x = rng.random()
    kind = kind_weights[-1][0]
    acc = 0.0
    for name, w in kind_weights:
        acc += w
        if x < acc:
            kind = name
            break
    return FaultPlan(
        step=rng.randrange(region_steps),
        kind=kind,
        bit=rng.randrange(64),
        pick=rng.random(),
    )


class Region:
    """Restricts injection (and region-step counting) to parts of a module.

    ``funcs`` are matched by function name; ``blocks`` by (function, label)
    pairs.  An instruction is *in region* when its function matches or its
    specific block matches.  The paper injects faults "only into the
    detected loops"; the harness builds a Region from each scheme's
    detected-loop blocks (plus the outlined body functions for RSkip).
    """

    __slots__ = ("funcs", "blocks")

    def __init__(self, funcs=(), blocks=()):
        self.funcs: FrozenSet[str] = frozenset(funcs)
        self.blocks: FrozenSet[Tuple[str, str]] = frozenset(blocks)

    def contains(self, func_name: str, label: str) -> bool:
        return func_name in self.funcs or (func_name, label) in self.blocks

    def __bool__(self) -> bool:
        return bool(self.funcs or self.blocks)

    def __repr__(self) -> str:
        return f"<Region funcs={sorted(self.funcs)} blocks={len(self.blocks)}>"
