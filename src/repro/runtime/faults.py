"""Single-event-upset and instruction-skip fault models (paper section 7.2).

One fault per run, injected into the architectural state of the simulated
core at a uniformly random point of the (optionally restricted) dynamic
instruction stream.  The SEU kinds model where a bit-flip upset lands:

* ``value`` — a random bit of a random *register* of the current frame
  (live or stale; stale hits are how faults get architecturally masked);
* ``branch`` — the next conditional branch takes the wrong direction
  (modelling the opcode-field flips the paper names as the residual
  failures of software-only schemes);
* ``addr`` — the next memory access uses a corrupted effective address
  (address-generation upset after validation).

The adversarial kinds model the instruction-skip / control-flow attacks
Moro et al. formally verify countermeasures against (clock/voltage
glitches that suppress or redirect instructions rather than flipping
stored bits):

* ``skip`` — the triggered dynamic instruction is fetched and counted but
  its architectural effects are dropped (no register write, no store, no
  call, no control transfer; a skipped terminator falls through to the
  next block in layout order);
* ``skip-burst`` — ``burst_len`` consecutive dynamic instructions are
  dropped, starting at the trigger;
* ``cf`` — the next executed branch (``br`` or either direction of a
  ``cbr``) is retargeted to a wrong-but-valid block of the same function,
  chosen by ``pick``.

Memory cells at rest are never touched: the paper assumes ECC DRAM/caches.
"""
from __future__ import annotations

import math
import random
import struct
from dataclasses import dataclass
from typing import FrozenSet, Tuple

_INT_MASK = (1 << 64) - 1
_INT_SIGN = 1 << 63

#: Every fault kind the engines honor.
FAULT_KINDS = ("value", "branch", "addr", "skip", "skip-burst", "cf")

#: Kinds that drop instructions (and can therefore leave registers
#: unwritten — both engines turn reads of such registers into coredumps).
SKIP_KINDS = ("skip", "skip-burst")

#: Kinds that corrupt the instruction stream itself rather than stored
#: bits; these force a lane out of lockstep in the batch engine.
CONTROL_KINDS = ("skip", "skip-burst", "cf")

#: Default mix of fault kinds: register-file upsets dominate; a small share
#: lands in control and address generation (paper: "no dedicated mechanism
#: to protect special registers").
DEFAULT_KIND_WEIGHTS = (("value", 0.90), ("branch", 0.05), ("addr", 0.05))

#: A mix that adds the Moro-style glitch attacks to the paper's SEU model —
#: the "adversarial" campaign table (skips dominate the non-SEU share the
#: way they dominate published glitch characterizations).
ADVERSARIAL_KIND_WEIGHTS = (
    ("value", 0.55), ("branch", 0.05), ("addr", 0.05),
    ("skip", 0.20), ("skip-burst", 0.10), ("cf", 0.05),
)


def flip_int(value: int, bit: int) -> int:
    """Flip *bit* of a 64-bit two's-complement integer."""
    raw = value & _INT_MASK
    raw ^= 1 << (bit & 63)
    if raw & _INT_SIGN:
        return raw - (1 << 64)
    return raw


def flip_float(value: float, bit: int) -> float:
    """Flip *bit* of an IEEE-754 double.

    A value that cannot round-trip through a 64-bit double (e.g. a
    Python bignum reaching the float flipper) is returned unchanged —
    the flip is architecturally masked, like flips of non-numeric
    register state.  It must *not* be replaced by a zeroed bit pattern:
    that would turn a masked fault into a fabricated corruption that no
    modelled SEU could produce.
    """
    try:
        raw = struct.unpack("<Q", struct.pack("<d", value))[0]
    except (OverflowError, ValueError, struct.error):
        return value
    raw ^= 1 << (bit & 63)
    return struct.unpack("<d", struct.pack("<Q", raw))[0]


def flip_value(value, bit: int):
    if isinstance(value, int):
        return flip_int(value, bit)
    if isinstance(value, float):
        return flip_float(value, bit)
    return value  # non-numeric register state is not modelled


@dataclass
class FaultPlan:
    """A fully determined injection: where (dynamic step within the region),
    what kind, which bit, a uniform pick to choose the register (or the
    wrong branch target for ``cf``), and for ``skip-burst`` how many
    consecutive dynamic instructions to drop."""

    step: int
    kind: str = "value"
    bit: int = 0
    pick: float = 0.0
    burst_len: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.step < 0:
            raise ValueError("fault step must be non-negative")
        if self.burst_len < 1:
            raise ValueError(
                f"burst_len must be >= 1, got {self.burst_len}; a zero or "
                f"negative burst would arm a skip window that never closes")
        if self.burst_len != 1 and self.kind != "skip-burst":
            raise ValueError(
                f"burst_len applies to 'skip-burst' plans only "
                f"(kind={self.kind!r})")
        if not 0 <= self.bit < 64:
            raise ValueError(f"bit must be in [0, 64), got {self.bit}")
        if not 0.0 <= self.pick <= 1.0:
            raise ValueError(f"pick must be in [0.0, 1.0], got {self.pick!r}")


def random_plan(
    rng: random.Random,
    region_steps: int,
    kind_weights: Tuple = DEFAULT_KIND_WEIGHTS,
) -> FaultPlan:
    """Draw a uniformly random fault plan for a run whose restricted region
    executes *region_steps* dynamic instructions."""
    if region_steps <= 0:
        raise ValueError("region executes no instructions; nothing to inject into")
    total = 0.0
    for _name, w in kind_weights:
        if w <= 0:
            raise ValueError(
                f"kind_weights entries must be positive, got {_name}={w!r}")
        total += w
    if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
        raise ValueError(
            f"kind_weights must sum to 1.0, got {total!r}; a silent "
            f"renormalization would skew the drawn fault mix")
    x = rng.random()
    kind = kind_weights[-1][0]
    acc = 0.0
    for name, w in kind_weights:
        acc += w
        if x < acc:
            kind = name
            break
    # the step/bit/pick draw order predates the skip kinds; the burst
    # draw comes last so plans for the original kinds are byte-identical
    # to what older campaigns drew at the same seed
    step = rng.randrange(region_steps)
    bit = rng.randrange(64)
    pick = rng.random()
    burst = rng.randrange(2, 5) if kind == "skip-burst" else 1
    return FaultPlan(step=step, kind=kind, bit=bit, pick=pick, burst_len=burst)


class Region:
    """Restricts injection (and region-step counting) to parts of a module.

    ``funcs`` are matched by function name; ``blocks`` by (function, label)
    pairs.  An instruction is *in region* when its function matches or its
    specific block matches.  The paper injects faults "only into the
    detected loops"; the harness builds a Region from each scheme's
    detected-loop blocks (plus the outlined body functions for RSkip).
    """

    __slots__ = ("funcs", "blocks")

    def __init__(self, funcs=(), blocks=()):
        self.funcs: FrozenSet[str] = frozenset(funcs)
        self.blocks: FrozenSet[Tuple[str, str]] = frozenset(blocks)

    def contains(self, func_name: str, label: str) -> bool:
        return func_name in self.funcs or (func_name, label) in self.blocks

    def __bool__(self) -> bool:
        return bool(self.funcs or self.blocks)

    def __repr__(self) -> str:
        return f"<Region funcs={sorted(self.funcs)} blocks={len(self.blocks)}>"
