"""Execution-backend dispatch.

Three backends execute IR:

* ``ref`` — the reference :class:`~repro.runtime.interpreter.Interpreter`:
  tree-walking, instrumented (timing model, SEU fault injection,
  profiling).  The semantics oracle.
* ``compiled`` — the closure-compiling backend of
  :mod:`repro.runtime.compiler`: clean mode only, observationally
  identical and several times faster.
* ``batch`` — the lane-vectorized batch engine of
  :mod:`repro.runtime.batch`: runs a whole block of fault-injection
  trials in lockstep over one instruction stream.  It applies at the
  campaign-chunk level (``repro.eval.fault_campaign`` routes trial
  blocks through it when it is the default backend); a single
  :func:`make_executor` call cannot express "many trials", so here
  ``batch`` behaves like ``compiled`` for clean runs and like ``ref``
  for instrumented ones.

:func:`make_executor` picks the backend: any *instrumented* request
(a fault plan, a timing model, or a profile) always routes to the
reference interpreter — the SEU model and cycle model stay bit-exact —
while clean runs (golden runs, QoS training sweeps, difftest oracle
re-execution, the unfaulted side of campaign trials) use the compiled
backend unless the default says otherwise.

The default backend is, in order: the value set via
:func:`set_default_backend` (the CLI's ``--backend`` flag), the
``REPRO_BACKEND`` environment variable (inherited by campaign pool
workers), else ``compiled``.
"""
from __future__ import annotations

import os
from typing import Optional

from ..ir.module import Module
from .compiler import CompiledExecutor
from .interpreter import DEFAULT_MAX_STEPS, Interpreter
from .memory import Memory

BACKENDS = ("ref", "compiled", "batch")

_default: Optional[str] = None


def default_backend() -> str:
    """The backend clean runs use when none is requested explicitly."""
    if _default is not None:
        return _default
    env = os.environ.get("REPRO_BACKEND", "").strip().lower()
    return env if env in BACKENDS else "compiled"


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default backend."""
    global _default
    if name is not None and name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose from {BACKENDS}")
    _default = name


def make_executor(
    module: Module,
    memory: Optional[Memory] = None,
    timing=None,
    max_steps: int = DEFAULT_MAX_STEPS,
    fault_plan=None,
    fault_region=None,
    profile=None,
    backend: Optional[str] = None,
):
    """An execution context for *module* on the right backend.

    Instrumented runs (any of *fault_plan*, *timing*, *profile* set) are
    always served by the reference interpreter; clean runs go to the
    compiled backend unless ``backend="ref"`` (or the process default)
    forces the reference.
    """
    if backend is None:
        backend = default_backend()
    elif backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if (fault_plan is not None or timing is not None or profile is not None
            or backend == "ref"):
        return Interpreter(
            module, memory=memory, timing=timing, max_steps=max_steps,
            fault_plan=fault_plan, fault_region=fault_region, profile=profile,
        )
    return CompiledExecutor(
        module, memory=memory, max_steps=max_steps, fault_region=fault_region,
    )
