"""repro.runtime — execution substrate: flat memory, the IR interpreter,
the superscalar timing model and the SEU fault injector."""
from .errors import (
    CoreDumpError,
    FaultDetectedError,
    HangError,
    SegfaultError,
    TrapError,
)
from .memory import DEFAULT_SIZE, Memory
from .outcomes import Outcome, classify_output, outputs_equal
from .energy import ENERGY, EnergyEstimate, LEAKAGE_PER_CYCLE, estimate_energy
from .profiling import Profile
from .tracer import ReferenceInterpreter, Trace, TraceEvent, trace_run
from .scheduler import TimingModel
from .faults import (
    ADVERSARIAL_KIND_WEIGHTS,
    CONTROL_KINDS,
    DEFAULT_KIND_WEIGHTS,
    FAULT_KINDS,
    FaultPlan,
    Region,
    SKIP_KINDS,
    flip_float,
    flip_int,
    flip_value,
    random_plan,
)
from .interpreter import (
    DEFAULT_MAX_STEPS,
    Interpreter,
    IntrinsicFn,
    MAX_CALL_DEPTH,
    OPCODES,
    OPERAND_ARITY,
    RunResult,
    run_program,
)
from .compiler import (
    CompiledExecutor,
    CompiledModule,
    clear_compile_cache,
    compile_module,
    module_fingerprint,
)
from .batch import BatchExecutor, LaneResult
from .backend import (
    BACKENDS,
    default_backend,
    make_executor,
    set_default_backend,
)

__all__ = [
    "CoreDumpError", "FaultDetectedError", "HangError", "SegfaultError", "TrapError",
    "DEFAULT_SIZE", "Memory",
    "Outcome", "classify_output", "outputs_equal",
    "ENERGY", "EnergyEstimate", "LEAKAGE_PER_CYCLE", "estimate_energy",
    "Profile", "TimingModel",
    "ReferenceInterpreter", "Trace", "TraceEvent", "trace_run",
    "ADVERSARIAL_KIND_WEIGHTS", "CONTROL_KINDS", "DEFAULT_KIND_WEIGHTS",
    "FAULT_KINDS", "FaultPlan", "Region", "SKIP_KINDS",
    "flip_float", "flip_int", "flip_value", "random_plan",
    "DEFAULT_MAX_STEPS", "Interpreter", "IntrinsicFn", "MAX_CALL_DEPTH",
    "OPCODES", "OPERAND_ARITY", "RunResult", "run_program",
    "CompiledExecutor", "CompiledModule", "clear_compile_cache",
    "compile_module", "module_fingerprint",
    "BatchExecutor", "LaneResult",
    "BACKENDS", "default_backend", "make_executor", "set_default_backend",
]
