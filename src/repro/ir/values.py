"""IR values: virtual registers and constants.

The IR is a register machine (not SSA): a virtual register may be assigned
more than once, which keeps loop-carried values simple (no phi nodes) and
makes the duplication transforms plain register-renaming clones.
"""
from __future__ import annotations

from .types import Type


class Value:
    """Base class for anything an instruction can read."""

    __slots__ = ("ty",)

    ty: Type

    @property
    def is_reg(self) -> bool:
        return isinstance(self, Reg)

    @property
    def is_const(self) -> bool:
        return isinstance(self, Const)


class Reg(Value):
    """A virtual register, unique by name within a function.

    Create registers through :meth:`repro.ir.function.Function.new_reg` (or
    the builder) so names stay unique; the constructor is public only for
    the parser.
    """

    __slots__ = ("name",)

    def __init__(self, name: str, ty: Type):
        if ty is Type.VOID:
            raise ValueError("registers cannot have void type")
        self.name = name
        self.ty = ty

    def __repr__(self) -> str:
        return f"%{self.name}:{self.ty}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Reg) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("reg", self.name))


class Const(Value):
    """An immediate constant of integer or float type."""

    __slots__ = ("value",)

    def __init__(self, value, ty: Type):
        if ty is Type.VOID:
            raise ValueError("constants cannot have void type")
        if ty.is_int:
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError(f"integer constant requires int, got {value!r}")
        else:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TypeError(f"float constant requires number, got {value!r}")
            value = float(value)
        self.value = value
        self.ty = ty

    def __repr__(self) -> str:
        return f"{self.value}:{self.ty}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Const)
            and other.ty is self.ty
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("const", self.ty, self.value))


class GlobalAddr(Value):
    """The address of a named module-level array (always PTR-typed).

    The concrete address is resolved when the module is loaded into a
    :class:`repro.runtime.memory.Memory`.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name
        self.ty = Type.PTR

    def __repr__(self) -> str:
        return f"@{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GlobalAddr) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("global", self.name))


def i64(value: int) -> Const:
    """Shorthand for an I64 constant."""
    return Const(int(value), Type.I64)


def f64(value: float) -> Const:
    """Shorthand for an F64 constant."""
    return Const(float(value), Type.F64)
