"""Convenient construction of IR functions.

``IRBuilder`` keeps an insertion point (a basic block) and offers one method
per opcode, each returning the destination register.  Structured helpers
(:meth:`IRBuilder.loop`, :meth:`IRBuilder.if_then_else`) build the common
loop and conditional shapes of the paper's benchmarks.
"""
from __future__ import annotations

import contextlib
from typing import Callable, Iterator, Optional, Sequence, Union

from .basicblock import BasicBlock
from .function import Function
from .instructions import CmpPred, Instr, Opcode
from .types import F64, I64, PTR, Type, VOID
from .values import Const, GlobalAddr, Reg, Value

Operand = Union[Value, int, float]


class IRBuilder:
    """Builds instructions into a function at a movable insertion point."""

    def __init__(self, func: Function, block: Optional[BasicBlock] = None):
        self.func = func
        if block is None:
            block = func.add_block("entry") if not func.blocks else func.entry
        self.block = block

    # -- positioning -----------------------------------------------------
    def at_end(self, block: BasicBlock) -> "IRBuilder":
        self.block = block
        return self

    def new_block(self, hint: str = "bb") -> BasicBlock:
        return self.func.add_block(self.func.new_label(hint))

    # -- operand coercion -------------------------------------------------
    @staticmethod
    def _coerce(value: Operand, ty: Type) -> Value:
        if isinstance(value, Value):
            return value
        if ty.is_float:
            return Const(float(value), F64)
        return Const(int(value), ty)

    def _value(self, value: Operand) -> Value:
        """Coerce a bare Python number to a constant (int -> i64)."""
        if isinstance(value, Value):
            return value
        if isinstance(value, bool):
            return Const(int(value), I64)
        if isinstance(value, int):
            return Const(value, I64)
        return Const(float(value), F64)

    def _emit(self, instr: Instr) -> Optional[Reg]:
        self.block.append(instr)
        return instr.dest

    def _binop(self, op: Opcode, a: Operand, b: Operand, ty: Type, hint: str) -> Reg:
        av, bv = self._coerce(a, ty), self._coerce(b, ty)
        dest = self.func.new_reg(ty, hint)
        self._emit(Instr(op, dest=dest, args=(av, bv)))
        return dest

    def _unop(self, op: Opcode, a: Operand, ty: Type, hint: str) -> Reg:
        av = self._coerce(a, ty)
        dest = self.func.new_reg(ty, hint)
        self._emit(Instr(op, dest=dest, args=(av,)))
        return dest

    # -- data movement ----------------------------------------------------
    def mov(self, value: Operand, dest: Optional[Reg] = None, hint: str = "v") -> Reg:
        val = self._value(value)
        if dest is None:
            dest = self.func.new_reg(val.ty, hint)
        self._emit(Instr(Opcode.MOV, dest=dest, args=(val,)))
        return dest

    # -- integer arithmetic -------------------------------------------------
    def add(self, a: Operand, b: Operand, hint: str = "add") -> Reg:
        return self._binop(Opcode.ADD, a, b, I64, hint)

    def sub(self, a: Operand, b: Operand, hint: str = "sub") -> Reg:
        return self._binop(Opcode.SUB, a, b, I64, hint)

    def mul(self, a: Operand, b: Operand, hint: str = "mul") -> Reg:
        return self._binop(Opcode.MUL, a, b, I64, hint)

    def sdiv(self, a: Operand, b: Operand, hint: str = "div") -> Reg:
        return self._binop(Opcode.SDIV, a, b, I64, hint)

    def srem(self, a: Operand, b: Operand, hint: str = "rem") -> Reg:
        return self._binop(Opcode.SREM, a, b, I64, hint)

    def and_(self, a: Operand, b: Operand, hint: str = "and") -> Reg:
        return self._binop(Opcode.AND, a, b, I64, hint)

    def or_(self, a: Operand, b: Operand, hint: str = "or") -> Reg:
        return self._binop(Opcode.OR, a, b, I64, hint)

    def xor(self, a: Operand, b: Operand, hint: str = "xor") -> Reg:
        return self._binop(Opcode.XOR, a, b, I64, hint)

    def shl(self, a: Operand, b: Operand, hint: str = "shl") -> Reg:
        return self._binop(Opcode.SHL, a, b, I64, hint)

    def lshr(self, a: Operand, b: Operand, hint: str = "shr") -> Reg:
        return self._binop(Opcode.LSHR, a, b, I64, hint)

    # -- pointer arithmetic (ADD/MUL on PTR produce PTR) -------------------
    def padd(self, base: Operand, offset: Operand, hint: str = "addr") -> Reg:
        """base + offset -> ptr; the idiom for address computation."""
        bv = self._value(base)
        ov = self._value(offset)
        dest = self.func.new_reg(PTR, hint)
        self._emit(Instr(Opcode.ADD, dest=dest, args=(bv, ov)))
        return dest

    # -- float arithmetic ---------------------------------------------------
    def fadd(self, a: Operand, b: Operand, hint: str = "fadd") -> Reg:
        return self._binop(Opcode.FADD, a, b, F64, hint)

    def fsub(self, a: Operand, b: Operand, hint: str = "fsub") -> Reg:
        return self._binop(Opcode.FSUB, a, b, F64, hint)

    def fmul(self, a: Operand, b: Operand, hint: str = "fmul") -> Reg:
        return self._binop(Opcode.FMUL, a, b, F64, hint)

    def fdiv(self, a: Operand, b: Operand, hint: str = "fdiv") -> Reg:
        return self._binop(Opcode.FDIV, a, b, F64, hint)

    def fneg(self, a: Operand, hint: str = "fneg") -> Reg:
        return self._unop(Opcode.FNEG, a, F64, hint)

    def fabs(self, a: Operand, hint: str = "fabs") -> Reg:
        return self._unop(Opcode.FABS, a, F64, hint)

    def sqrt(self, a: Operand, hint: str = "sqrt") -> Reg:
        return self._unop(Opcode.SQRT, a, F64, hint)

    def exp(self, a: Operand, hint: str = "exp") -> Reg:
        return self._unop(Opcode.EXP, a, F64, hint)

    def log(self, a: Operand, hint: str = "log") -> Reg:
        return self._unop(Opcode.LOG, a, F64, hint)

    def sin(self, a: Operand, hint: str = "sin") -> Reg:
        return self._unop(Opcode.SIN, a, F64, hint)

    def cos(self, a: Operand, hint: str = "cos") -> Reg:
        return self._unop(Opcode.COS, a, F64, hint)

    def floor(self, a: Operand, hint: str = "floor") -> Reg:
        return self._unop(Opcode.FLOOR, a, F64, hint)

    # -- conversions --------------------------------------------------------
    def sitofp(self, a: Operand, hint: str = "tofp") -> Reg:
        av = self._coerce(a, I64)
        dest = self.func.new_reg(F64, hint)
        self._emit(Instr(Opcode.SITOFP, dest=dest, args=(av,)))
        return dest

    def fptosi(self, a: Operand, hint: str = "tosi") -> Reg:
        av = self._coerce(a, F64)
        dest = self.func.new_reg(I64, hint)
        self._emit(Instr(Opcode.FPTOSI, dest=dest, args=(av,)))
        return dest

    # -- comparisons ----------------------------------------------------------
    def icmp(self, pred: CmpPred, a: Operand, b: Operand, hint: str = "cmp") -> Reg:
        av, bv = self._value(a), self._value(b)
        dest = self.func.new_reg(I64, hint)
        self._emit(Instr(Opcode.ICMP, dest=dest, args=(av, bv), pred=pred))
        return dest

    def fcmp(self, pred: CmpPred, a: Operand, b: Operand, hint: str = "cmp") -> Reg:
        av, bv = self._coerce(a, F64), self._coerce(b, F64)
        dest = self.func.new_reg(I64, hint)
        self._emit(Instr(Opcode.FCMP, dest=dest, args=(av, bv), pred=pred))
        return dest

    def select(self, cond: Operand, a: Operand, b: Operand, hint: str = "sel") -> Reg:
        cv = self._value(cond)
        av, bv = self._value(a), self._value(b)
        dest = self.func.new_reg(av.ty, hint)
        self._emit(Instr(Opcode.SELECT, dest=dest, args=(cv, av, bv)))
        return dest

    # -- memory ------------------------------------------------------------
    def load(self, addr: Operand, ty: Type = F64, hint: str = "ld") -> Reg:
        av = self._value(addr)
        dest = self.func.new_reg(ty, hint)
        self._emit(Instr(Opcode.LOAD, dest=dest, args=(av,)))
        return dest

    def store(self, value: Operand, addr: Operand) -> None:
        self._emit(Instr(Opcode.STORE, args=(self._value(value), self._value(addr))))

    def alloc(self, size: Operand, hint: str = "buf") -> Reg:
        sv = self._value(size)
        dest = self.func.new_reg(PTR, hint)
        self._emit(Instr(Opcode.ALLOC, dest=dest, args=(sv,)))
        return dest

    def global_addr(self, name: str) -> GlobalAddr:
        return GlobalAddr(name)

    # -- control flow --------------------------------------------------------
    def br(self, target: Union[str, BasicBlock]) -> None:
        label = target.label if isinstance(target, BasicBlock) else target
        self._emit(Instr(Opcode.BR, labels=(label,)))

    def cbr(
        self,
        cond: Operand,
        if_true: Union[str, BasicBlock],
        if_false: Union[str, BasicBlock],
    ) -> None:
        tl = if_true.label if isinstance(if_true, BasicBlock) else if_true
        fl = if_false.label if isinstance(if_false, BasicBlock) else if_false
        self._emit(Instr(Opcode.CBR, args=(self._value(cond),), labels=(tl, fl)))

    def ret(self, value: Optional[Operand] = None) -> None:
        args = () if value is None else (self._value(value),)
        self._emit(Instr(Opcode.RET, args=args))

    def call(
        self,
        callee: str,
        args: Sequence[Operand] = (),
        ret_ty: Type = F64,
        hint: str = "call",
    ) -> Optional[Reg]:
        vals = tuple(self._value(a) for a in args)
        dest = None if ret_ty is VOID else self.func.new_reg(ret_ty, hint)
        self._emit(Instr(Opcode.CALL, dest=dest, args=vals, callee=callee))
        return dest

    def intrin(
        self,
        name: str,
        args: Sequence[Operand] = (),
        ret_ty: Type = I64,
        hint: str = "rt",
    ) -> Optional[Reg]:
        vals = tuple(self._value(a) for a in args)
        dest = None if ret_ty is VOID else self.func.new_reg(ret_ty, hint)
        self._emit(Instr(Opcode.INTRIN, dest=dest, args=vals, callee=name))
        return dest

    # -- structured helpers -----------------------------------------------
    @contextlib.contextmanager
    def loop(
        self,
        start: Operand,
        end: Operand,
        step: Operand = 1,
        hint: str = "loop",
    ) -> Iterator[Reg]:
        """Build a counted loop ``for (i = start; i < end; i += step)``.

        Yields the induction register; the builder is positioned in the loop
        body inside the ``with`` block and at the loop exit afterwards.
        """
        head = self.new_block(f"{hint}.head")
        body = self.new_block(f"{hint}.body")
        latch = self.new_block(f"{hint}.latch")
        exit_bb = self.new_block(f"{hint}.exit")

        idx = self.mov(self._value(start), hint=f"{hint}.i")
        self.br(head)

        self.at_end(head)
        cond = self.icmp(CmpPred.LT, idx, self._value(end), hint=f"{hint}.cond")
        self.cbr(cond, body, exit_bb)

        self.at_end(body)
        yield idx
        # fall through from wherever the body ended into the latch
        self.br(latch)
        self.at_end(latch)
        bumped = self.add(idx, self._value(step), hint=f"{hint}.next")
        self.mov(bumped, dest=idx)
        self.br(head)
        self.at_end(exit_bb)

    def if_then_else(
        self,
        cond: Operand,
        then_fn: Callable[["IRBuilder"], None],
        else_fn: Optional[Callable[["IRBuilder"], None]] = None,
        hint: str = "if",
    ) -> None:
        """Build an if/else diamond; both callbacks emit into this builder."""
        then_bb = self.new_block(f"{hint}.then")
        merge_bb = self.new_block(f"{hint}.end")
        else_bb = self.new_block(f"{hint}.else") if else_fn is not None else merge_bb

        self.cbr(cond, then_bb, else_bb)
        self.at_end(then_bb)
        then_fn(self)
        self.br(merge_bb)
        if else_fn is not None:
            self.at_end(else_bb)
            else_fn(self)
            self.br(merge_bb)
        self.at_end(merge_bb)
