"""Instruction set of the repro IR.

Three-address register-machine instructions.  Every instruction has an
optional destination register (``dest``) and a tuple of operand values
(``args``).  Control-flow instructions carry block labels; calls carry a
callee name.  The set is intentionally close to the subset of LLVM IR that
the paper's transforms manipulate: arithmetic, comparisons, loads/stores,
branches and calls — stores, branches and calls are the *synchronization
points* of the protection schemes.
"""
from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .values import Reg, Value


class Opcode(enum.Enum):
    # data movement
    MOV = "mov"
    # integer arithmetic (i64 / ptr)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    SREM = "srem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    # float arithmetic (f64)
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    # float unary
    FNEG = "fneg"
    FABS = "fabs"
    SQRT = "sqrt"
    EXP = "exp"
    LOG = "log"
    SIN = "sin"
    COS = "cos"
    FLOOR = "floor"
    # conversions
    SITOFP = "sitofp"
    FPTOSI = "fptosi"
    # comparisons
    ICMP = "icmp"
    FCMP = "fcmp"
    SELECT = "select"
    # memory
    LOAD = "load"
    STORE = "store"
    ALLOC = "alloc"
    # control flow
    BR = "br"
    CBR = "cbr"
    CALL = "call"
    RET = "ret"
    # runtime intrinsic call (predictors, run-time management)
    INTRIN = "intrin"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class CmpPred(enum.Enum):
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


INT_BINOPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.SDIV,
        Opcode.SREM,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.LSHR,
    }
)
FLOAT_BINOPS = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV})
FLOAT_UNOPS = frozenset(
    {
        Opcode.FNEG,
        Opcode.FABS,
        Opcode.SQRT,
        Opcode.EXP,
        Opcode.LOG,
        Opcode.SIN,
        Opcode.COS,
        Opcode.FLOOR,
    }
)
TERMINATORS = frozenset({Opcode.BR, Opcode.CBR, Opcode.RET})
#: Synchronization points of the protection schemes (see paper section 2).
SYNC_OPCODES = frozenset({Opcode.STORE, Opcode.CBR, Opcode.CALL, Opcode.BR, Opcode.RET})


class Instr:
    """A single IR instruction.

    ``dest`` is ``None`` for instructions that produce no value (stores,
    branches, void calls).  ``args`` holds the value operands in a fixed
    order documented per opcode.
    """

    __slots__ = ("op", "dest", "args", "labels", "callee", "pred")

    def __init__(
        self,
        op: Opcode,
        dest: Optional[Reg] = None,
        args: Sequence[Value] = (),
        labels: Sequence[str] = (),
        callee: Optional[str] = None,
        pred: Optional[CmpPred] = None,
    ):
        self.op = op
        self.dest = dest
        self.args: Tuple[Value, ...] = tuple(args)
        self.labels: Tuple[str, ...] = tuple(labels)
        self.callee = callee
        self.pred = pred

    # -- classification -------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    @property
    def is_sync_point(self) -> bool:
        """True if this instruction is a synchronization point for fault
        protection (its inputs must be validated before it executes)."""
        return self.op in (Opcode.STORE, Opcode.CBR, Opcode.CALL)

    @property
    def has_side_effect(self) -> bool:
        return self.op in (Opcode.STORE, Opcode.CALL, Opcode.INTRIN, Opcode.ALLOC)

    # -- rewriting support ----------------------------------------------
    def uses(self) -> List[Reg]:
        """Registers read by this instruction."""
        return [a for a in self.args if isinstance(a, Reg)]

    def rename(self, mapping: Dict[str, Reg]) -> "Instr":
        """Return a copy with operand registers substituted via *mapping*.

        The destination register is *not* renamed; callers that clone
        computation (duplication transforms) rename destinations themselves.
        """
        new_args = tuple(
            mapping.get(a.name, a) if isinstance(a, Reg) else a for a in self.args
        )
        return Instr(
            self.op,
            dest=self.dest,
            args=new_args,
            labels=self.labels,
            callee=self.callee,
            pred=self.pred,
        )

    def copy(self) -> "Instr":
        return Instr(
            self.op,
            dest=self.dest,
            args=self.args,
            labels=self.labels,
            callee=self.callee,
            pred=self.pred,
        )

    def replace_uses(self, fn: Callable[[Value], Value]) -> None:
        """Rewrite operands in place through *fn* (used by simplify/DCE)."""
        self.args = tuple(fn(a) for a in self.args)

    def __repr__(self) -> str:
        from .printer import format_instr

        return format_instr(self)
