"""Textual form of the IR.

The format round-trips through :mod:`repro.ir.parser`:

.. code-block:: text

    module dot

    global @a 64 f64
    global @out 1 f64

    func @dot(%a: ptr, %b: ptr, %n: i64) -> f64 {
    entry:
      %sum = mov 0.0:f64
      br head
    head:
      ...
    }
"""
from __future__ import annotations

from typing import List

from .function import Function
from .instructions import Instr, Opcode
from .module import Module
from .values import Const, GlobalAddr, Reg, Value


def format_value(value: Value) -> str:
    if isinstance(value, Reg):
        return f"%{value.name}"
    if isinstance(value, GlobalAddr):
        return f"@{value.name}"
    if isinstance(value, Const):
        if value.ty.is_float:
            return f"{value.value!r}:f64"
        return f"{value.value}:{value.ty}"
    raise TypeError(f"unprintable value {value!r}")


def format_instr(instr: Instr) -> str:
    op = instr.op
    args = ", ".join(format_value(a) for a in instr.args)
    prefix = f"%{instr.dest.name} = " if instr.dest is not None else ""

    if op is Opcode.BR:
        return f"br {instr.labels[0]}"
    if op is Opcode.CBR:
        return f"cbr {args}, {instr.labels[0]}, {instr.labels[1]}"
    if op is Opcode.RET:
        return f"ret {args}" if instr.args else "ret"
    if op in (Opcode.ICMP, Opcode.FCMP):
        return f"{prefix}{op} {instr.pred} {args}"
    if op is Opcode.LOAD:
        return f"{prefix}load {args} : {instr.dest.ty}"
    if op is Opcode.CALL:
        ann = f" : {instr.dest.ty}" if instr.dest is not None else ""
        return f"{prefix}call @{instr.callee}({args}){ann}"
    if op is Opcode.INTRIN:
        ann = f" : {instr.dest.ty}" if instr.dest is not None else ""
        return f"{prefix}intrin {instr.callee}({args}){ann}"
    return f"{prefix}{op} {args}"


def format_function(func: Function) -> str:
    params = ", ".join(f"%{p.name}: {p.ty}" for p in func.params)
    lines: List[str] = [f"func @{func.name}({params}) -> {func.ret_type} {{"]
    for label in func.block_order():
        lines.append(f"{label}:")
        for instr in func.blocks[label].instrs:
            lines.append(f"  {format_instr(instr)}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    parts: List[str] = [f"module {module.name}", ""]
    for gvar in module.globals.values():
        line = f"global @{gvar.name} {gvar.size} {gvar.elem_ty}"
        if gvar.init is not None:
            vals = ", ".join(repr(v) for v in gvar.init)
            line += f" = [{vals}]"
        parts.append(line)
    if module.globals:
        parts.append("")
    for func in module.functions.values():
        parts.append(format_function(func))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
