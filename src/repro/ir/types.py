"""Value types for the repro IR.

The IR is deliberately small: 64-bit integers, 64-bit floats and pointers.
Pointers are integer addresses into the flat runtime memory (`repro.runtime.
memory.Memory`); keeping them a distinct type lets the verifier and the
transforms treat address computation differently from data computation,
which is what RSkip relies on (addresses are never fuzzily validated).
"""
from __future__ import annotations

import enum


class Type(enum.Enum):
    """Scalar types of IR values."""

    I64 = "i64"
    F64 = "f64"
    PTR = "ptr"
    VOID = "void"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_int(self) -> bool:
        """True for integer-like types (I64 and PTR share integer storage)."""
        return self in (Type.I64, Type.PTR)

    @property
    def is_float(self) -> bool:
        return self is Type.F64

    @property
    def is_pointer(self) -> bool:
        return self is Type.PTR


I64 = Type.I64
F64 = Type.F64
PTR = Type.PTR
VOID = Type.VOID

_BY_NAME = {t.value: t for t in Type}


def parse_type(name: str) -> Type:
    """Parse a type name as printed by :mod:`repro.ir.printer`."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown IR type {name!r}") from None
