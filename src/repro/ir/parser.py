"""Parser for the textual IR form produced by :mod:`repro.ir.printer`."""
from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .function import Function
from .instructions import CmpPred, Instr, Opcode
from .module import Module
from .types import Type, parse_type
from .values import Const, GlobalAddr, Reg, Value


class ParseError(ValueError):
    """Raised on malformed textual IR; carries the offending line number
    and, when available, the source line text itself."""

    def __init__(self, message: str, lineno: int, line: str = ""):
        detail = f"line {lineno}: {message}"
        if line:
            detail += f"\n    {line}"
        super().__init__(detail)
        self.message = message
        self.lineno = lineno
        self.line = line


_RE_GLOBAL = re.compile(
    r"^global\s+@(?P<name>[\w.]+)\s+(?P<size>\d+)\s+(?P<ty>\w+)"
    r"(?:\s*=\s*\[(?P<init>.*)\])?$"
)
_RE_FUNC = re.compile(
    r"^func\s+@(?P<name>[\w.]+)\((?P<params>[^)]*)\)\s*->\s*(?P<ret>\w+)\s*\{$"
)
_RE_LABEL = re.compile(r"^(?P<label>[\w.]+):$")
_RE_CALLISH = re.compile(
    r"^(?:%(?P<dest>[\w.]+)\s*=\s*)?(?P<kind>call|intrin)\s+@?(?P<callee>[\w.]+)"
    r"\((?P<args>[^)]*)\)(?:\s*:\s*(?P<ty>\w+))?$"
)

_CMP_PREDS = {p.value: p for p in CmpPred}
_OPCODES = {o.value: o for o in Opcode}

_INT_RESULT = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SDIV, Opcode.SREM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.LSHR,
}
_FLOAT_RESULT = {
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG,
    Opcode.FABS, Opcode.SQRT, Opcode.EXP, Opcode.LOG, Opcode.SIN,
    Opcode.COS, Opcode.FLOOR, Opcode.SITOFP,
}


class _FunctionParser:
    def __init__(self, func: Function):
        self.func = func
        self.regs: Dict[str, Reg] = {p.name: p for p in func.params}

    def value(self, text: str, lineno: int) -> Value:
        text = text.strip()
        if text.startswith("%"):
            name = text[1:]
            if name not in self.regs:
                raise ParseError(f"use of undefined register %{name}", lineno)
            return self.regs[name]
        if text.startswith("@"):
            return GlobalAddr(text[1:])
        if ":" in text:
            raw, _, tyname = text.rpartition(":")
            ty = parse_type(tyname)
            if ty.is_float:
                return Const(float(raw), ty)
            return Const(int(raw), ty)
        raise ParseError(f"cannot parse operand {text!r}", lineno)

    def dest_reg(self, name: str, ty: Type, lineno: int) -> Reg:
        existing = self.regs.get(name)
        if existing is not None:
            if existing.ty is not ty:
                raise ParseError(
                    f"register %{name} redefined with type {ty}, was {existing.ty}",
                    lineno,
                )
            return existing
        reg = Reg(name, ty)
        self.regs[name] = reg
        return reg

    def parse_instr(self, line: str, lineno: int) -> Instr:
        call_match = _RE_CALLISH.match(line)
        if call_match is not None:
            return self._parse_call(call_match, lineno)

        dest_name: Optional[str] = None
        rest = line
        if "=" in line and line.startswith("%"):
            lhs, _, rest = line.partition("=")
            dest_name = lhs.strip()[1:]
            rest = rest.strip()

        parts = rest.split(None, 1)
        opname = parts[0]
        operand_text = parts[1] if len(parts) > 1 else ""
        if opname not in _OPCODES:
            raise ParseError(f"unknown opcode {opname!r}", lineno)
        op = _OPCODES[opname]

        if op is Opcode.BR:
            return Instr(Opcode.BR, labels=(operand_text.strip(),))
        if op is Opcode.CBR:
            cond_txt, l1, l2 = [p.strip() for p in operand_text.split(",")]
            return Instr(Opcode.CBR, args=(self.value(cond_txt, lineno),), labels=(l1, l2))
        if op is Opcode.RET:
            if operand_text.strip():
                return Instr(Opcode.RET, args=(self.value(operand_text, lineno),))
            return Instr(Opcode.RET)

        pred: Optional[CmpPred] = None
        if op in (Opcode.ICMP, Opcode.FCMP):
            predname, _, operand_text = operand_text.partition(" ")
            if predname not in _CMP_PREDS:
                raise ParseError(f"unknown compare predicate {predname!r}", lineno)
            pred = _CMP_PREDS[predname]

        result_ty: Optional[Type] = None
        if op is Opcode.LOAD and ":" in operand_text:
            # 'load %addr : f64' — split off the result annotation
            operand_text, _, tyname = operand_text.rpartition(":")
            maybe_ty = tyname.strip()
            # distinguish 'load 5:ptr' (const operand) from annotation by
            # requiring surrounding spaces in the printed form
            if operand_text.rstrip().endswith(" ") or " : " in line:
                result_ty = parse_type(maybe_ty)
            else:
                operand_text = f"{operand_text}:{tyname}"

        args = tuple(
            self.value(p, lineno)
            for p in _split_operands(operand_text)
        )

        dest: Optional[Reg] = None
        if dest_name is not None:
            dest = self.dest_reg(dest_name, self._result_type(op, args, result_ty, lineno), lineno)
        return Instr(op, dest=dest, args=args, pred=pred)

    def _parse_call(self, match: "re.Match[str]", lineno: int) -> Instr:
        kind = match.group("kind")
        callee = match.group("callee")
        args = tuple(
            self.value(p, lineno) for p in _split_operands(match.group("args"))
        )
        dest = None
        if match.group("dest") is not None:
            tyname = match.group("ty")
            if tyname is None:
                raise ParseError("call with destination needs a result type", lineno)
            dest = self.dest_reg(match.group("dest"), parse_type(tyname), lineno)
        op = Opcode.CALL if kind == "call" else Opcode.INTRIN
        return Instr(op, dest=dest, args=args, callee=callee)

    def _result_type(
        self,
        op: Opcode,
        args: Tuple[Value, ...],
        annotated: Optional[Type],
        lineno: int,
    ) -> Type:
        if annotated is not None:
            return annotated
        if op in _FLOAT_RESULT:
            return Type.F64
        if op in (Opcode.ICMP, Opcode.FCMP, Opcode.FPTOSI):
            return Type.I64
        if op is Opcode.ALLOC:
            return Type.PTR
        if op is Opcode.LOAD:
            return Type.F64
        if op in (Opcode.MOV, Opcode.SELECT):
            src = args[-1]
            return src.ty
        if op in _INT_RESULT:
            # pointer arithmetic keeps PTR type
            if any(a.ty is Type.PTR for a in args):
                return Type.PTR
            return Type.I64
        raise ParseError(f"cannot infer result type for {op}", lineno)


def _split_operands(text: str) -> List[str]:
    text = text.strip()
    if not text:
        return []
    return [p.strip() for p in text.split(",")]


def parse_module(source: str) -> Module:
    """Parse the textual form back into a :class:`Module`."""
    module = Module()
    lines = source.splitlines()
    func: Optional[Function] = None
    fparser: Optional[_FunctionParser] = None
    current_label: Optional[str] = None

    for lineno, raw in enumerate(lines, start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue

        if line.startswith("module "):
            module.name = line.split(None, 1)[1].strip()
            continue

        gmatch = _RE_GLOBAL.match(line)
        if gmatch is not None and func is None:
            init = None
            if gmatch.group("init") is not None:
                init = [float(v) for v in _split_operands(gmatch.group("init"))]
            module.add_global(
                gmatch.group("name"),
                int(gmatch.group("size")),
                parse_type(gmatch.group("ty")),
                init,
            )
            continue

        fmatch = _RE_FUNC.match(line)
        if fmatch is not None:
            params = []
            ptext = fmatch.group("params").strip()
            if ptext:
                for p in ptext.split(","):
                    pname, _, ptyname = p.strip().partition(":")
                    params.append(Reg(pname.strip()[1:], parse_type(ptyname.strip())))
            func = Function(fmatch.group("name"), params, parse_type(fmatch.group("ret")))
            fparser = _FunctionParser(func)
            current_label = None
            continue

        if line == "}":
            if func is None:
                raise ParseError("unmatched '}'", lineno, line)
            module.add_function(func)
            func, fparser, current_label = None, None, None
            continue

        if func is None or fparser is None:
            raise ParseError(f"statement outside function: {line!r}", lineno, line)

        lmatch = _RE_LABEL.match(line)
        if lmatch is not None:
            current_label = lmatch.group("label")
            func.add_block(current_label)
            continue

        if current_label is None:
            raise ParseError("instruction before any block label", lineno, line)
        try:
            func.blocks[current_label].append(fparser.parse_instr(line, lineno))
        except ParseError as exc:
            if exc.line:
                raise
            raise ParseError(exc.message, exc.lineno, line) from None

    if func is not None:
        raise ParseError(
            "unterminated function (missing '}')",
            len(lines),
            lines[-1].strip() if lines else "",
        )
    return module
