"""Structural and type verification of IR modules.

The verifier is intentionally strict about structure (terminators, branch
targets, arity) and pragmatic about integer/pointer mixing: address
arithmetic freely mixes ``i64`` and ``ptr``, as it does at the machine
level that the paper's transforms target.
"""
from __future__ import annotations

from typing import Dict, List, Set

from .function import Function
from .instructions import (
    FLOAT_BINOPS,
    FLOAT_UNOPS,
    INT_BINOPS,
    Instr,
    Opcode,
)
from .module import Module
from .types import Type


class VerificationError(ValueError):
    """Raised when a module fails verification; message lists all problems."""


def _check_types(func: Function, instr: Instr, errors: List[str]) -> None:
    loc = f"@{func.name}: {instr!r}"
    op = instr.op

    def want(n: int) -> bool:
        if len(instr.args) != n:
            errors.append(f"{loc}: expected {n} operands, got {len(instr.args)}")
            return False
        return True

    if op in INT_BINOPS:
        if want(2):
            for a in instr.args:
                if not a.ty.is_int:
                    errors.append(f"{loc}: integer op on {a.ty} operand")
            if instr.dest is not None and not instr.dest.ty.is_int:
                errors.append(f"{loc}: integer op writes {instr.dest.ty} register")
    elif op in FLOAT_BINOPS:
        if want(2):
            for a in instr.args:
                if not a.ty.is_float:
                    errors.append(f"{loc}: float op on {a.ty} operand")
    elif op in FLOAT_UNOPS:
        if want(1) and not instr.args[0].ty.is_float:
            errors.append(f"{loc}: float op on {instr.args[0].ty} operand")
    elif op is Opcode.SITOFP:
        if want(1) and not instr.args[0].ty.is_int:
            errors.append(f"{loc}: sitofp of non-integer")
    elif op is Opcode.FPTOSI:
        if want(1) and not instr.args[0].ty.is_float:
            errors.append(f"{loc}: fptosi of non-float")
    elif op is Opcode.ICMP:
        if want(2):
            for a in instr.args:
                if not a.ty.is_int:
                    errors.append(f"{loc}: icmp of {a.ty} operand")
    elif op is Opcode.FCMP:
        if want(2):
            for a in instr.args:
                if not a.ty.is_float:
                    errors.append(f"{loc}: fcmp of {a.ty} operand")
    elif op is Opcode.SELECT:
        if want(3):
            if not instr.args[0].ty.is_int:
                errors.append(f"{loc}: select condition must be integer")
            if instr.args[1].ty != instr.args[2].ty:
                errors.append(f"{loc}: select arm types differ")
    elif op is Opcode.LOAD:
        if want(1) and not instr.args[0].ty.is_int:
            errors.append(f"{loc}: load address must be integer/ptr")
    elif op is Opcode.STORE:
        if want(2) and not instr.args[1].ty.is_int:
            errors.append(f"{loc}: store address must be integer/ptr")
    elif op is Opcode.ALLOC:
        if want(1) and not instr.args[0].ty.is_int:
            errors.append(f"{loc}: alloc size must be integer")
    elif op is Opcode.CBR:
        if want(1) and not instr.args[0].ty.is_int:
            errors.append(f"{loc}: branch condition must be integer")
    elif op is Opcode.MOV:
        if want(1) and instr.dest is not None:
            src_ty, dst_ty = instr.args[0].ty, instr.dest.ty
            compatible = src_ty == dst_ty or (src_ty.is_int and dst_ty.is_int)
            if not compatible:
                errors.append(f"{loc}: mov between {src_ty} and {dst_ty}")

    if op in (Opcode.ICMP, Opcode.FCMP) and instr.pred is None:
        errors.append(f"{loc}: compare without predicate")
    if op in (Opcode.CALL, Opcode.INTRIN) and instr.callee is None:
        errors.append(f"{loc}: call without callee")


def _check_definite_assignment(func: Function, errors: List[str]) -> None:
    """Forward dataflow: registers definitely assigned on every path."""
    preds: Dict[str, List[str]] = {label: [] for label in func.blocks}
    for label, block in func.blocks.items():
        for succ in block.successors():
            if succ in preds:
                preds[succ].append(label)

    param_names = {p.name for p in func.params}
    all_defs: Set[str] = set(param_names)
    for instr in func.instructions():
        if instr.dest is not None:
            all_defs.add(instr.dest.name)

    entry_label = func.block_order()[0]
    in_sets: Dict[str, Set[str]] = {label: set(all_defs) for label in func.blocks}
    in_sets[entry_label] = set(param_names)

    changed = True
    order = func.block_order()
    gen: Dict[str, Set[str]] = {}
    for label, block in func.blocks.items():
        gen[label] = {i.dest.name for i in block.instrs if i.dest is not None}
    while changed:
        changed = False
        for label in order:
            if label == entry_label:
                new_in = set(param_names)
            else:
                plist = preds[label]
                if plist:
                    new_in = set.intersection(*(in_sets[p] | gen[p] for p in plist))
                else:
                    new_in = set(param_names)  # unreachable; be lenient
            if new_in != in_sets[label]:
                in_sets[label] = new_in
                changed = True

    for label in order:
        assigned = set(in_sets[label])
        for instr in func.blocks[label].instrs:
            for reg in instr.uses():
                if reg.name not in assigned:
                    errors.append(
                        f"@{func.name}/{label}: register %{reg.name} may be "
                        f"used before assignment in {instr!r}"
                    )
            if instr.dest is not None:
                assigned.add(instr.dest.name)


def verify_function(func: Function, module: Module = None, errors: List[str] = None) -> List[str]:
    """Verify one function; returns the list of problems found."""
    own = errors if errors is not None else []

    if not func.blocks:
        own.append(f"@{func.name}: function has no blocks")
        return own

    for label in func.block_order():
        block = func.blocks[label]
        if not block.instrs:
            own.append(f"@{func.name}/{label}: empty block")
            continue
        if block.terminator is None:
            own.append(f"@{func.name}/{label}: block does not end in a terminator")
        for i, instr in enumerate(block.instrs):
            if instr.is_terminator and i != len(block.instrs) - 1:
                own.append(f"@{func.name}/{label}: terminator {instr!r} mid-block")
            for target in instr.labels:
                if target not in func.blocks:
                    own.append(
                        f"@{func.name}/{label}: branch to unknown block {target!r}"
                    )
            if instr.op is Opcode.RET:
                if func.ret_type is Type.VOID and instr.args:
                    own.append(f"@{func.name}/{label}: void function returns a value")
                if func.ret_type is not Type.VOID and not instr.args:
                    own.append(f"@{func.name}/{label}: missing return value")
            _check_types(func, instr, own)

    _check_definite_assignment(func, own)

    if module is not None:
        for instr in func.instructions():
            if instr.op is Opcode.CALL:
                callee = module.functions.get(instr.callee)
                if callee is None:
                    own.append(f"@{func.name}: call to unknown function @{instr.callee}")
                elif len(callee.params) != len(instr.args):
                    own.append(
                        f"@{func.name}: call to @{instr.callee} with "
                        f"{len(instr.args)} args, expected {len(callee.params)}"
                    )
            for arg in instr.args:
                from .values import GlobalAddr

                if isinstance(arg, GlobalAddr) and arg.name not in module.globals:
                    own.append(f"@{func.name}: reference to unknown global @{arg.name}")
    return own


def verify_module(module: Module) -> None:
    """Verify the whole module; raises :class:`VerificationError` on problems."""
    errors: List[str] = []
    for func in module.functions.values():
        verify_function(func, module, errors)
    if errors:
        raise VerificationError(
            f"module {module.name} failed verification:\n  " + "\n  ".join(errors)
        )
