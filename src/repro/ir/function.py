"""IR functions: parameter list, register namespace and CFG of basic blocks."""
from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .basicblock import BasicBlock
from .instructions import Instr
from .types import Type
from .values import Reg


class Function:
    """A function: ordered blocks, the first being the entry block.

    Registers live in a per-function namespace; :meth:`new_reg` mints fresh
    names so transforms can clone computation without collisions.
    """

    def __init__(self, name: str, params: List[Reg], ret_type: Type):
        self.name = name
        self.params = list(params)
        self.ret_type = ret_type
        self.blocks: Dict[str, BasicBlock] = {}
        self._block_order: List[str] = []
        self._reg_counter = 0
        self._label_counter = 0
        #: free-form annotations set by analyses/transforms (e.g. the RSkip
        #: pattern detector marks outlined loop bodies here).
        self.attrs: Dict[str, object] = {}

    # -- construction ----------------------------------------------------
    def add_block(self, label: Optional[str] = None) -> BasicBlock:
        if label is None:
            label = self.new_label("bb")
        if label in self.blocks:
            raise ValueError(f"duplicate block label {label!r} in @{self.name}")
        block = BasicBlock(label)
        self.blocks[label] = block
        self._block_order.append(label)
        return block

    def new_reg(self, ty: Type, hint: str = "t") -> Reg:
        """Mint a fresh register with a unique name derived from *hint*."""
        self._reg_counter += 1
        return Reg(f"{hint}.{self._reg_counter}", ty)

    def new_label(self, hint: str = "bb") -> str:
        self._label_counter += 1
        label = f"{hint}.{self._label_counter}"
        while label in self.blocks:
            self._label_counter += 1
            label = f"{hint}.{self._label_counter}"
        return label

    def clone(self) -> "Function":
        """A structurally independent copy of this function.

        Blocks and instructions are fresh objects; registers, constants
        and attr values are shared (treated as immutable throughout the
        transform layer — rewrites always build new operand tuples).
        """
        func = Function(self.name, self.params, self.ret_type)
        for label in self._block_order:
            func.blocks[label] = self.blocks[label].clone()
        func._block_order = list(self._block_order)
        func._reg_counter = self._reg_counter
        func._label_counter = self._label_counter
        func.attrs = dict(self.attrs)
        return func

    # -- access ----------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        if not self._block_order:
            raise ValueError(f"function @{self.name} has no blocks")
        return self.blocks[self._block_order[0]]

    def block_order(self) -> List[str]:
        return list(self._block_order)

    def reorder_blocks(self, order: List[str]) -> None:
        """Set block order; must be a permutation of the current labels."""
        if sorted(order) != sorted(self._block_order):
            raise ValueError("reorder_blocks requires a permutation of labels")
        self._block_order = list(order)

    def remove_block(self, label: str) -> None:
        del self.blocks[label]
        self._block_order.remove(label)

    def instructions(self) -> Iterator[Instr]:
        """All instructions in block order."""
        for label in self._block_order:
            yield from self.blocks[label].instrs

    def defined_regs(self) -> Dict[str, Reg]:
        """All registers defined anywhere (params included)."""
        regs = {p.name: p for p in self.params}
        for instr in self.instructions():
            if instr.dest is not None:
                regs[instr.dest.name] = instr.dest
        return regs

    def size(self) -> int:
        """Static instruction count."""
        return sum(len(b) for b in self.blocks.values())

    def __repr__(self) -> str:
        return f"<Function @{self.name} ({len(self.blocks)} blocks, {self.size()} instrs)>"
