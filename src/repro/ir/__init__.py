"""repro.ir — the IR substrate: types, values, instructions, functions,
modules, a builder, a textual printer/parser and a verifier."""
from .types import F64, I64, PTR, Type, VOID, parse_type
from .values import Const, GlobalAddr, Reg, Value, f64, i64
from .instructions import (
    CmpPred,
    FLOAT_BINOPS,
    FLOAT_UNOPS,
    INT_BINOPS,
    Instr,
    Opcode,
    SYNC_OPCODES,
    TERMINATORS,
)
from .basicblock import BasicBlock
from .function import Function
from .module import GlobalVar, Module
from .builder import IRBuilder
from .printer import format_function, format_instr, format_module, format_value
from .parser import ParseError, parse_module
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "F64", "I64", "PTR", "VOID", "Type", "parse_type",
    "Const", "GlobalAddr", "Reg", "Value", "f64", "i64",
    "CmpPred", "Instr", "Opcode",
    "FLOAT_BINOPS", "FLOAT_UNOPS", "INT_BINOPS", "SYNC_OPCODES", "TERMINATORS",
    "BasicBlock", "Function", "GlobalVar", "Module", "IRBuilder",
    "format_function", "format_instr", "format_module", "format_value",
    "ParseError", "parse_module",
    "VerificationError", "verify_function", "verify_module",
]
