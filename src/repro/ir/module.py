"""IR modules: a set of functions plus named global arrays."""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .function import Function
from .types import Type


@dataclass
class GlobalVar:
    """A module-level array of ``size`` cells of element type ``elem_ty``.

    ``init`` optionally provides initial cell values (padded with zeros).
    The runtime assumes globals live in ECC-protected memory (paper
    assumption), so faults are never injected into them at rest.
    """

    name: str
    size: int
    elem_ty: Type = Type.F64
    init: Optional[List[float]] = field(default=None)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"global @{self.name} must have positive size")
        if self.init is not None and len(self.init) > self.size:
            raise ValueError(f"initializer for @{self.name} exceeds its size")


class Module:
    """A compilation unit: functions by name plus global arrays."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVar] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function @{func.name}")
        self.functions[func.name] = func
        return func

    def remove_function(self, name: str) -> None:
        del self.functions[name]

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function @{name} in module {self.name}") from None

    def add_global(
        self,
        name: str,
        size: int,
        elem_ty: Type = Type.F64,
        init: Optional[Sequence[float]] = None,
    ) -> GlobalVar:
        if name in self.globals:
            raise ValueError(f"duplicate global @{name}")
        gvar = GlobalVar(name, size, elem_ty, list(init) if init is not None else None)
        self.globals[name] = gvar
        return gvar

    def clone(self) -> "Module":
        """A structurally independent copy: transforms on the clone never
        touch the original.  Globals are shared (immutable after
        construction), so cloning costs one :meth:`Instr.copy` per
        instruction — much cheaper than a print/parse round trip, and
        prints byte-identically to the original."""
        module = Module(self.name)
        module.globals = dict(self.globals)
        for name, func in self.functions.items():
            module.functions[name] = func.clone()
        return module

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
