"""Basic blocks: straight-line instruction sequences ending in a terminator."""
from __future__ import annotations

from typing import Iterator, List, Optional

from .instructions import Instr, Opcode


class BasicBlock:
    """A labeled sequence of instructions.

    The final instruction must be a terminator (``br``, ``cbr`` or ``ret``)
    once the function is complete; the verifier enforces this.
    """

    __slots__ = ("label", "instrs")

    def __init__(self, label: str):
        self.label = label
        self.instrs: List[Instr] = []

    def append(self, instr: Instr) -> Instr:
        self.instrs.append(instr)
        return instr

    def clone(self) -> "BasicBlock":
        """An independent copy; operand values are shared (immutable)."""
        block = BasicBlock(self.label)
        block.instrs = [instr.copy() for instr in self.instrs]
        return block

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def successors(self) -> List[str]:
        """Labels of successor blocks (empty for ``ret`` / unterminated)."""
        term = self.terminator
        if term is None or term.op is Opcode.RET:
            return []
        return list(term.labels)

    def body(self) -> List[Instr]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instrs[:-1]
        return list(self.instrs)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} ({len(self.instrs)} instrs)>"
