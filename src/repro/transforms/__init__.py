"""repro.transforms — protection and cleanup transforms over the IR:
function cloning, DCE, constant folding, a pass manager, and the SWIFT /
SWIFT-R instruction-duplication baselines."""
from .clone import clone_function, duplicate_into_module, rename_all_registers
from .dce import run_dce, run_dce_module
from .simplify import run_constfold, run_simplify_module
from .licm import hoist_loop, run_licm, run_licm_module
from .cse import run_cse, run_cse_block, run_cse_module
from .pass_manager import PassManager, PassRecord
from .swift import (
    ALL_SYNC_POINTS,
    DETECT_INTRINSIC,
    ProtectionReport,
    apply_swift,
    apply_swift_r,
    protect_function,
)

__all__ = [
    "clone_function", "duplicate_into_module", "rename_all_registers",
    "run_dce", "run_dce_module",
    "run_constfold", "run_simplify_module",
    "hoist_loop", "run_licm", "run_licm_module",
    "run_cse", "run_cse_block", "run_cse_module",
    "PassManager", "PassRecord",
    "ALL_SYNC_POINTS", "DETECT_INTRINSIC", "ProtectionReport",
    "apply_swift", "apply_swift_r", "protect_function",
]
