"""Local simplification: constant folding and algebraic identities.

Block-local and conservative: a fold only fires when every operand of an
instruction is a constant (or a trivially known identity like ``x * 1``).
Registers are mutable in this IR, so no value is propagated across a
redefinition.
"""
from __future__ import annotations

from typing import Dict, Optional

from ..ir.function import Function
from ..ir.instructions import CmpPred, Instr, Opcode
from ..ir.module import Module
from ..ir.values import Const, Reg, Value

_FOLDABLE = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 63),
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
}

_CMP = {
    CmpPred.EQ: lambda a, b: a == b,
    CmpPred.NE: lambda a, b: a != b,
    CmpPred.LT: lambda a, b: a < b,
    CmpPred.LE: lambda a, b: a <= b,
    CmpPred.GT: lambda a, b: a > b,
    CmpPred.GE: lambda a, b: a >= b,
}


def _const_of(value: Value, env: Dict[str, Const]) -> Optional[Const]:
    if isinstance(value, Const):
        return value
    if isinstance(value, Reg):
        return env.get(value.name)
    return None


def _identity(instr: Instr, env: Dict[str, Const]) -> Optional[Value]:
    """x+0, x*1, x*0 style identities; returns the replacement value."""
    if instr.op not in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.FADD, Opcode.FSUB, Opcode.FMUL):
        return None
    a, b = instr.args
    ca, cb = _const_of(a, env), _const_of(b, env)
    zero = 0.0 if instr.op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL) else 0
    one = 1.0 if instr.op is Opcode.FMUL else 1
    if instr.op in (Opcode.ADD, Opcode.FADD):
        if cb is not None and cb.value == zero:
            return a
        if ca is not None and ca.value == zero:
            return b
    if instr.op in (Opcode.SUB, Opcode.FSUB):
        if cb is not None and cb.value == zero:
            return a
    if instr.op in (Opcode.MUL, Opcode.FMUL):
        if cb is not None and cb.value == one:
            return a
        if ca is not None and ca.value == one:
            return b
    return None


def run_constfold(func: Function) -> int:
    """Fold constants block-locally; returns the number of folds applied."""
    folds = 0
    for block in func.blocks.values():
        env: Dict[str, Const] = {}
        for instr in block.instrs:
            # substitute operands known constant in this block
            def subst(v: Value) -> Value:
                if isinstance(v, Reg):
                    c = env.get(v.name)
                    if c is not None:
                        return c
                return v

            if not instr.is_terminator or instr.op is Opcode.CBR:
                before = instr.args
                instr.replace_uses(subst)
                if instr.args != before:
                    folds += 1

            if instr.dest is None:
                continue

            replacement: Optional[Value] = None
            consts = [_const_of(a, env) for a in instr.args]
            if instr.op is Opcode.MOV:
                replacement = consts[0]
            elif instr.op in _FOLDABLE and all(c is not None for c in consts):
                try:
                    raw = _FOLDABLE[instr.op](consts[0].value, consts[1].value)
                except (OverflowError, ValueError):
                    raw = None
                if raw is not None:
                    replacement = Const(raw, instr.dest.ty)
            elif instr.op in (Opcode.ICMP, Opcode.FCMP) and all(c is not None for c in consts):
                replacement = Const(int(_CMP[instr.pred](consts[0].value, consts[1].value)), instr.dest.ty)
            elif instr.op is Opcode.SITOFP and consts[0] is not None:
                replacement = Const(float(consts[0].value), instr.dest.ty)
            else:
                ident = _identity(instr, env)
                if isinstance(ident, Const):
                    replacement = ident

            if isinstance(replacement, Const) and replacement.ty == instr.dest.ty:
                env[instr.dest.name] = replacement
                instr.op = Opcode.MOV
                instr.args = (replacement,)
                instr.pred = None
                folds += 1
            else:
                env.pop(instr.dest.name, None)
    return folds


def run_simplify_module(module: Module) -> int:
    return sum(run_constfold(func) for func in module.functions.values())
