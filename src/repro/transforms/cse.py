"""Local common-subexpression elimination (block-scoped value numbering).

Within a basic block, a pure instruction whose (opcode, predicate,
operand-values) key was already computed — and whose operands have not
been redefined since — is replaced by a ``mov`` from the earlier result.
Loads are also numbered but any store invalidates all load numbers
(no alias analysis; a store may clobber anything).

Besides shrinking code, CSE matters to the RSkip pipeline: the pattern
detector's read-modify-write recognition keys on address *expressions*,
and value numbering canonicalizes duplicate address computations onto one
register.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import Opcode
from ..ir.module import Module
from ..ir.values import Const, GlobalAddr, Reg, Value

_PURE = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL,
        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.LSHR,
        Opcode.FADD, Opcode.FSUB, Opcode.FMUL,
        Opcode.FNEG, Opcode.FABS, Opcode.SITOFP, Opcode.FPTOSI,
        Opcode.ICMP, Opcode.FCMP, Opcode.SELECT,
    }
)

_COMMUTATIVE = frozenset(
    {Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
     Opcode.FADD, Opcode.FMUL}
)


def _value_key(value: Value, numbering: Dict[str, int], fresh: List[int]):
    if isinstance(value, Const):
        return ("c", value.ty, value.value)
    if isinstance(value, GlobalAddr):
        return ("g", value.name)
    assert isinstance(value, Reg)
    number = numbering.get(value.name)
    if number is None:
        fresh[0] += 1
        number = fresh[0]
        numbering[value.name] = number
    return ("v", number)


def run_cse_block(func: Function, label: str) -> int:
    """Value-number one block; returns the number of instructions replaced."""
    block = func.blocks[label]
    numbering: Dict[str, int] = {}
    fresh = [0]
    expr_to_reg: Dict[Tuple, Tuple[Reg, int]] = {}
    keys_by_source: Dict[str, List[Tuple]] = {}
    load_exprs: List[Tuple] = []
    replaced = 0

    for instr in block.instrs:
        if instr.op is Opcode.STORE or instr.op in (Opcode.CALL, Opcode.INTRIN, Opcode.ALLOC):
            # stores clobber memory; calls may too
            for key in load_exprs:
                expr_to_reg.pop(key, None)
            load_exprs.clear()

        key: Optional[Tuple] = None
        if instr.dest is not None and (instr.op in _PURE or instr.op is Opcode.LOAD):
            operand_keys = [_value_key(a, numbering, fresh) for a in instr.args]
            if instr.op in _COMMUTATIVE:
                operand_keys.sort()
            key = (instr.op, instr.pred, tuple(operand_keys))

            hit = expr_to_reg.get(key)
            if hit is not None:
                source, number = hit
                instr.op = Opcode.MOV
                instr.args = (source,)
                instr.pred = None
                numbering[instr.dest.name] = number
                replaced += 1
                continue

        if instr.dest is not None:
            dest_name = instr.dest.name
            # redefining a register invalidates any table entry whose
            # *source* it is — later hits would read the new value
            for stale in keys_by_source.pop(dest_name, ()):
                expr_to_reg.pop(stale, None)
            fresh[0] += 1
            number = fresh[0]
            numbering[dest_name] = number
            if key is not None:
                expr_to_reg[key] = (instr.dest, number)
                keys_by_source.setdefault(dest_name, []).append(key)
                if instr.op is Opcode.LOAD:
                    load_exprs.append(key)
            # operand redefinitions are handled implicitly: renumbering
            # changes the operand keys of later instructions, so stale
            # entries keyed on old numbers can never be looked up again.
    return replaced


def run_cse(func: Function) -> int:
    return sum(run_cse_block(func, label) for label in func.block_order())


def run_cse_module(module: Module) -> int:
    return sum(run_cse(func) for func in module.functions.values())
