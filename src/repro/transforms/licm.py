"""Loop-invariant code motion.

Hoists pure computations whose operands are loop-invariant into the loop
preheader.  Conservative in exactly the ways a register-machine IR needs:

* only side-effect-free, non-trapping ops are hoisted (no loads — memory
  may be written inside the loop; no divides — they can trap on values
  that the loop would never have produced);
* the destination must have a *single* definition inside the loop and no
  definition elsewhere, so hoisting cannot change any reaching value;
* the instruction's block must dominate every latch (it executes on every
  iteration), otherwise speculation could change behaviour of later uses.

Runs before the protection transforms in the RSkip pipeline so the
duplicated/outlined code is as lean as the original compiler would emit.
"""
from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..analysis.cfg import CFG
from ..analysis.defuse import compute_chains
from ..analysis.dominators import compute_idom, dominates
from ..analysis.loops import Loop, find_loops
from ..ir.function import Function
from ..ir.instructions import Opcode
from ..ir.module import Module

#: Pure, non-trapping opcodes eligible for hoisting.
_HOISTABLE = frozenset(
    {
        Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL,
        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.LSHR,
        Opcode.FADD, Opcode.FSUB, Opcode.FMUL,
        Opcode.FNEG, Opcode.FABS, Opcode.SITOFP,
        Opcode.ICMP, Opcode.FCMP, Opcode.SELECT,
    }
)


def _single_preheader(func: Function, loop: Loop, cfg: CFG) -> Optional[str]:
    preds = [p for p in cfg.preds.get(loop.header, ()) if p not in loop.blocks]
    if len(preds) != 1:
        return None
    pred = preds[0]
    # the preheader must branch only to the header (an unconditional edge),
    # otherwise hoisted code would execute on an unrelated path
    if func.blocks[pred].successors() != [loop.header]:
        return None
    return pred


def hoist_loop(func: Function, loop: Loop, cfg: CFG, idom) -> int:
    """Hoist invariant instructions out of one loop; returns the count."""
    preheader = _single_preheader(func, loop, cfg)
    if preheader is None:
        return 0

    chains = compute_chains(func)

    def defined_in_loop(name: str) -> List[Tuple[str, int]]:
        return [s for s in chains.def_sites(name) if s[0] in loop.blocks]

    hoisted = 0
    invariant: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for label in sorted(loop.blocks):
            block = func.blocks[label]
            for idx, instr in enumerate(list(block.instrs)):
                if instr.op not in _HOISTABLE or instr.dest is None:
                    continue
                dest = instr.dest.name
                if dest in invariant:
                    continue
                sites = chains.def_sites(dest)
                in_loop = defined_in_loop(dest)
                if len(sites) != 1 or len(in_loop) != 1:
                    continue  # multiple defs: the value genuinely varies
                if not all(
                    dominates(idom, label, latch) for latch in loop.latches
                ):
                    continue  # conditionally executed
                operands_ok = True
                for reg in instr.uses():
                    if reg.name in invariant:
                        continue
                    if defined_in_loop(reg.name):
                        operands_ok = False
                        break
                if not operands_ok:
                    continue

                # hoist: move before the preheader's terminator
                block.instrs.remove(instr)
                pre_block = func.blocks[preheader]
                pre_block.instrs.insert(len(pre_block.instrs) - 1, instr)
                invariant.add(dest)
                chains = compute_chains(func)
                hoisted += 1
                changed = True
    return hoisted


def run_licm(func: Function) -> int:
    """Hoist invariants out of every loop, innermost first."""
    cfg = CFG(func)
    loops = find_loops(func, cfg)
    idom = compute_idom(cfg)
    total = 0
    for loop in sorted(loops, key=lambda l: -l.depth):
        total += hoist_loop(func, loop, cfg, idom)
    return total


def run_licm_module(module: Module) -> int:
    return sum(run_licm(func) for func in module.functions.values())
