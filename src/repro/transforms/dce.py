"""Dead-code elimination.

Iteratively removes side-effect-free instructions whose destination is dead
(never read before being overwritten or the function ends).  Run after
outlining/duplication to clean up computation left behind by a move.
"""
from __future__ import annotations

from ..analysis.cfg import CFG
from ..analysis.liveness import Liveness
from ..ir.function import Function
from ..ir.module import Module


def run_dce(func: Function) -> int:
    """Remove dead definitions; returns the number of instructions deleted."""
    removed = 0
    while True:
        live = Liveness(func, CFG(func))
        dead = live.dead_defs()
        if not dead:
            return removed
        # delete from back to front so indices stay valid
        for label, idx in sorted(dead, key=lambda s: (s[0], -s[1])):
            block = func.blocks[label]
            instr = block.instrs[idx]
            if instr.is_terminator:
                continue
            del block.instrs[idx]
            removed += 1


def run_dce_module(module: Module) -> int:
    return sum(run_dce(func) for func in module.functions.values())
