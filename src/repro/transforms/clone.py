"""Function cloning and register renaming utilities.

Both protection transforms are built on cloning: SWIFT/SWIFT-R clone the
instruction stream into shadow registers inside a function, and RSkip
clones the outlined loop body into the redundant-copy function
(``*.dup``).
"""
from __future__ import annotations

from typing import Dict

from ..ir.function import Function
from ..ir.module import Module
from ..ir.values import Reg


def clone_function(func: Function, new_name: str) -> Function:
    """Deep-copy *func* under a new name (labels and register names kept)."""
    new = Function(new_name, [Reg(p.name, p.ty) for p in func.params], func.ret_type)
    for label in func.block_order():
        block = new.add_block(label)
        for instr in func.blocks[label].instrs:
            block.append(instr.copy())
    new._reg_counter = func._reg_counter
    new._label_counter = func._label_counter
    new.attrs = dict(func.attrs)
    return new


def rename_all_registers(func: Function, suffix: str) -> Dict[str, Reg]:
    """Rename every register (including params) by appending *suffix*.

    Returns the old-name -> new-register map.  Used to make the duplicated
    instruction stream textually distinct from the master stream.
    """
    mapping: Dict[str, Reg] = {}

    def mapped(reg: Reg) -> Reg:
        out = mapping.get(reg.name)
        if out is None:
            out = Reg(reg.name + suffix, reg.ty)
            mapping[reg.name] = out
        return out

    func.params = [mapped(p) for p in func.params]
    for block in func.blocks.values():
        for instr in block.instrs:
            if instr.dest is not None:
                instr.dest = mapped(instr.dest)
            instr.replace_uses(lambda v: mapped(v) if isinstance(v, Reg) else v)
    return mapping


def duplicate_into_module(module: Module, func_name: str, new_name: str) -> Function:
    """Clone @func_name into the module as @new_name with renamed registers."""
    source = module.get_function(func_name)
    dup = clone_function(source, new_name)
    rename_all_registers(dup, ".d")
    module.add_function(dup)
    return dup
