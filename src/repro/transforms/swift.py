"""SWIFT and SWIFT-R instruction-duplication transforms.

SWIFT [Reis et al., CGO'05] duplicates the computation into shadow
registers and compares master vs. shadow at synchronization points (loads,
stores, branches, calls, returns); a mismatch means a transient fault.
SWIFT-R [Reis et al., 2007] triplicates instead and recovers by majority
vote, giving full protection (detection + recovery).

Faithful details mirrored here:

* memory is ECC-protected, so loads execute **once** and the loaded value
  is copied into the shadows; stores execute once after validating both the
  value and the address;
* every synchronization point validates each distinct register operand:
  one compare + one (well-predicted) branch on the fault-free path —
  this is precisely the "recurring synchronization points" cost the paper
  blames for SWIFT-R's loop overhead;
* calls validate their arguments, execute once, and fan the return value
  out to the shadows.

``exclude_labels`` supports RSkip's hybrid protection: blocks inserted by
the prediction machinery are left untouched, and any value they define
that protected code consumes gets boundary shadow copies.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import CmpPred, Instr, Opcode
from ..ir.module import Module
from ..ir.types import Type
from ..ir.values import Const, Reg, Value

#: Opcodes whose whole instruction is replicated into the shadow streams.
_REPLICATED = frozenset(
    {
        Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SDIV, Opcode.SREM,
        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.LSHR,
        Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
        Opcode.FNEG, Opcode.FABS, Opcode.SQRT, Opcode.EXP, Opcode.LOG,
        Opcode.SIN, Opcode.COS, Opcode.FLOOR,
        Opcode.SITOFP, Opcode.FPTOSI, Opcode.ICMP, Opcode.FCMP, Opcode.SELECT,
    }
)

DETECT_INTRINSIC = "swift.detected"

#: Synchronization-point categories at which operands are validated.
#: SWIFT validates at stores and control flow at minimum; validating load
#: addresses and call boundaries narrows the vulnerability windows further
#: at extra cost (the placement ablation bench sweeps these).
ALL_SYNC_POINTS = frozenset({"load", "store", "branch", "call", "ret"})


@dataclass
class ProtectionReport:
    """What a transform did to one function."""

    func_name: str
    replicated: int = 0
    sync_checks: int = 0
    boundary_copies: int = 0
    lazy_materializations: int = 0


def _shadow(reg: Reg, k: int) -> Reg:
    return Reg(f"{reg.name}.sw{k}", reg.ty)


class _Rewriter:
    """Rewrites one function; produces a fresh function object."""

    def __init__(
        self,
        func: Function,
        copies: int,
        exclude: FrozenSet[str],
        sync_points: FrozenSet[str] = ALL_SYNC_POINTS,
    ):
        if copies not in (1, 2):
            raise ValueError("copies must be 1 (SWIFT) or 2 (SWIFT-R)")
        unknown = set(sync_points) - ALL_SYNC_POINTS
        if unknown:
            raise ValueError(f"unknown sync-point categories: {sorted(unknown)}")
        self.src = func
        self.copies = copies
        self.exclude = exclude
        self.sync_points = frozenset(sync_points)
        self.out = Function(func.name, [Reg(p.name, p.ty) for p in func.params], func.ret_type)
        self.out.attrs = dict(func.attrs)
        self.provenance: Dict[str, str] = dict(func.attrs.get("provenance", {}))
        self.report = ProtectionReport(func.name)
        self.has_shadow: Set[str] = set()
        self._cur: Optional[BasicBlock] = None
        self._cur_origin = ""
        self._split_n = 0
        self._fix_n = 0
        self._detect_label: Optional[str] = None
        # registers read inside protected blocks (for boundary copies)
        self.protected_uses: Set[str] = set()
        for label in func.block_order():
            if label in exclude:
                continue
            for instr in func.blocks[label].instrs:
                for reg in instr.uses():
                    self.protected_uses.add(reg.name)

    # -- emission helpers ------------------------------------------------
    def _start(self, label: str, origin: str) -> None:
        self._cur = self.out.add_block(label)
        self._cur_origin = origin
        if label != origin:
            self.provenance[label] = self.provenance.get(origin, origin)

    def _emit(self, instr: Instr) -> None:
        self._cur.append(instr)

    def _split(self) -> str:
        """End the current block later via an explicit branch; returns the
        label of the continuation block (not yet started)."""
        self._split_n += 1
        return f"{self._cur_origin}.sr{self._split_n}"

    def _shadow_use(self, value: Value, k: int) -> Value:
        if not isinstance(value, Reg):
            return value
        if value.name not in self.has_shadow:
            # lazy materialization: copy the master into fresh shadows
            self.report.lazy_materializations += 1
            self._copy_to_shadows(value)
        return _shadow(value, k)

    def _copy_to_shadows(self, reg: Reg) -> None:
        for k in range(1, self.copies + 1):
            self._emit(Instr(Opcode.MOV, dest=_shadow(reg, k), args=(reg,)))
        self.has_shadow.add(reg.name)

    # -- validation ---------------------------------------------------------
    def _detect_block(self) -> str:
        if self._detect_label is None:
            label = "swift.detect"
            block = self.out.add_block(label)
            block.append(Instr(Opcode.INTRIN, callee=DETECT_INTRINSIC))
            if self.src.ret_type is Type.VOID:
                block.append(Instr(Opcode.RET))
            elif self.src.ret_type.is_float:
                block.append(Instr(Opcode.RET, args=(Const(0.0, Type.F64),)))
            else:
                block.append(Instr(Opcode.RET, args=(Const(0, self.src.ret_type),)))
            self._detect_label = label
        return self._detect_label

    def _validate(self, regs: Iterable[Reg]) -> None:
        """Emit the sync-point check for each distinct register operand."""
        seen: Set[str] = set()
        for reg in regs:
            if reg.name in seen:
                continue
            seen.add(reg.name)
            self.report.sync_checks += 1
            if reg.name not in self.has_shadow:
                # no independent shadow exists: nothing to compare against
                self.report.lazy_materializations += 1
                self._copy_to_shadows(reg)
                continue
            cmp_op = Opcode.FCMP if reg.ty.is_float else Opcode.ICMP
            eq1 = self.out.new_reg(Type.I64, "chk")
            self._emit(Instr(cmp_op, dest=eq1, args=(reg, _shadow(reg, 1)), pred=CmpPred.EQ))
            cont = self._split()

            if self.copies == 1:
                self._emit(Instr(Opcode.CBR, args=(eq1,), labels=(cont, self._detect_block())))
                self._start(cont, self._cur_origin)
                continue

            self._fix_n += 1
            fix = f"{self._cur_origin}.fix{self._fix_n}"
            fix_master = f"{fix}.m"
            fix_shadow = f"{fix}.s"
            self._emit(Instr(Opcode.CBR, args=(eq1,), labels=(cont, fix)))

            saved, saved_origin = self._cur, self._cur_origin
            self._start(fix, self._cur_origin)
            eq2 = self.out.new_reg(Type.I64, "chk")
            self._emit(
                Instr(cmp_op, dest=eq2, args=(_shadow(reg, 1), _shadow(reg, 2)), pred=CmpPred.EQ)
            )
            self._emit(Instr(Opcode.CBR, args=(eq2,), labels=(fix_master, fix_shadow)))

            self._start(fix_master, saved_origin)
            # the shadows agree: the master copy took the hit
            self._emit(Instr(Opcode.MOV, dest=reg, args=(_shadow(reg, 1),)))
            self._emit(Instr(Opcode.BR, labels=(cont,)))

            self._start(fix_shadow, saved_origin)
            # a shadow took the hit: refresh both from the master
            self._emit(Instr(Opcode.MOV, dest=_shadow(reg, 1), args=(reg,)))
            self._emit(Instr(Opcode.MOV, dest=_shadow(reg, 2), args=(reg,)))
            self._emit(Instr(Opcode.BR, labels=(cont,)))

            self._start(cont, saved_origin)

    # -- instruction rewriting ------------------------------------------------
    def _rewrite_protected(self, instr: Instr) -> None:
        op = instr.op
        if op in _REPLICATED and instr.dest is not None:
            self._emit(instr.copy())
            for k in range(1, self.copies + 1):
                shadow_args = tuple(self._shadow_use(a, k) for a in instr.args)
                self._emit(
                    Instr(op, dest=_shadow(instr.dest, k), args=shadow_args,
                          pred=instr.pred)
                )
            self.has_shadow.add(instr.dest.name)
            self.report.replicated += 1
            return

        if op is Opcode.LOAD:
            if "load" in self.sync_points:
                self._validate(instr.uses())
            self._emit(instr.copy())
            self._copy_to_shadows(instr.dest)
            return

        if op is Opcode.STORE:
            if "store" in self.sync_points:
                self._validate(instr.uses())
            self._emit(instr.copy())
            return

        if op is Opcode.CBR:
            if "branch" in self.sync_points:
                self._validate(instr.uses())
            self._emit(instr.copy())
            return

        if op is Opcode.RET:
            if "ret" in self.sync_points:
                self._validate(instr.uses())
            self._emit(instr.copy())
            return

        if op is Opcode.CALL:
            if "call" in self.sync_points:
                self._validate(instr.uses())
            self._emit(instr.copy())
            if instr.dest is not None:
                self._copy_to_shadows(instr.dest)
            return

        if op in (Opcode.ALLOC, Opcode.INTRIN):
            if op is Opcode.ALLOC and "call" in self.sync_points:
                self._validate(instr.uses())
            self._emit(instr.copy())
            if instr.dest is not None:
                self._copy_to_shadows(instr.dest)
            return

        # BR and anything else passes through
        self._emit(instr.copy())

    def _rewrite_excluded(self, instr: Instr) -> None:
        self._emit(instr.copy())
        if instr.dest is not None and instr.dest.name in self.protected_uses:
            self._copy_to_shadows(instr.dest)
            self.report.boundary_copies += self.copies

    # -- driver ------------------------------------------------------------
    def run(self) -> Tuple[Function, ProtectionReport]:
        first = True
        for label in self.src.block_order():
            block = self.src.blocks[label]
            self._start(label, label)
            if first:
                for p in self.out.params:
                    if p.name in self.protected_uses:
                        self._copy_to_shadows(p)
                        self.report.boundary_copies += self.copies
                first = False
            if label in self.exclude:
                for instr in block.instrs:
                    self._rewrite_excluded(instr)
            else:
                for instr in block.instrs:
                    self._rewrite_protected(instr)
        self.out.attrs["provenance"] = self.provenance
        self.out.attrs["protected"] = "swift" if self.copies == 1 else "swift-r"
        self.out._reg_counter = max(self.out._reg_counter, self.src._reg_counter)
        return self.out, self.report


def protect_function(
    func: Function,
    copies: int,
    exclude_labels: Iterable[str] = (),
    sync_points: Iterable[str] = ALL_SYNC_POINTS,
) -> Tuple[Function, ProtectionReport]:
    """Return a protected clone of *func* (the original is untouched)."""
    if func.attrs.get("protected"):
        raise ValueError(f"@{func.name} is already protected")
    rewriter = _Rewriter(func, copies, frozenset(exclude_labels),
                         frozenset(sync_points))
    return rewriter.run()


def apply_swift(
    module: Module,
    only: Optional[Sequence[str]] = None,
    exclude_funcs: Iterable[str] = (),
    exclude_blocks: Optional[Dict[str, Set[str]]] = None,
    sync_points: Iterable[str] = ALL_SYNC_POINTS,
) -> List[ProtectionReport]:
    """Apply SWIFT (duplication, detection-only) in place to the module."""
    return _apply(module, 1, only, exclude_funcs, exclude_blocks, sync_points)


def apply_swift_r(
    module: Module,
    only: Optional[Sequence[str]] = None,
    exclude_funcs: Iterable[str] = (),
    exclude_blocks: Optional[Dict[str, Set[str]]] = None,
    sync_points: Iterable[str] = ALL_SYNC_POINTS,
) -> List[ProtectionReport]:
    """Apply SWIFT-R (triplication + majority-vote recovery) in place."""
    return _apply(module, 2, only, exclude_funcs, exclude_blocks, sync_points)


def _apply(
    module: Module,
    copies: int,
    only: Optional[Sequence[str]],
    exclude_funcs: Iterable[str],
    exclude_blocks: Optional[Dict[str, Set[str]]],
    sync_points: Iterable[str] = ALL_SYNC_POINTS,
) -> List[ProtectionReport]:
    skip = set(exclude_funcs)
    blocks = exclude_blocks or {}
    reports = []
    names = list(only) if only is not None else list(module.functions)
    for name in names:
        if name in skip:
            continue
        func = module.functions[name]
        if func.attrs.get("protected"):
            continue
        new_func, report = protect_function(
            func, copies, blocks.get(name, ()), sync_points
        )
        module.functions[name] = new_func
        reports.append(report)
    return reports
