"""A tiny pass manager: named module passes with optional verification
between them — the spine of the RSkip "fully automatic compilation system"."""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..ir.module import Module
from ..ir.verifier import verify_module

ModulePass = Callable[[Module], object]


@dataclass
class PassRecord:
    name: str
    result: object


class PassManager:
    """Runs module passes in order; verifies after each when ``verify``."""

    def __init__(self, verify: bool = True):
        self.verify = verify
        self._passes: List[tuple] = []
        self.history: List[PassRecord] = []

    def add(self, name: str, fn: ModulePass) -> "PassManager":
        self._passes.append((name, fn))
        return self

    def run(self, module: Module) -> Module:
        self.history.clear()
        for name, fn in self._passes:
            result = fn(module)
            self.history.append(PassRecord(name, result))
            if self.verify:
                verify_module(module)
        return module
