"""Section 7.3: the rationality of the acceptable range.

Combines the performance study (normalized execution time) with the
reliability study (protection rate) into the paper's protection-vs-
slowdown tradeoff table.  The default scheme axis is
:data:`~repro.eval.perf.PERF_SCHEMES`, which is enumerated from the
scheme registry — registered protocol families (REPLAY<n>, CKPT<i>)
get tradeoff rows with no per-scheme code here.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.config import RSkipConfig
from ..pipeline.registry import get_scheme
from ..workloads.base import Workload
from .fault_campaign import run_campaign
from .harness import Harness
from .perf import Figure7Result, figure7, PERF_SCHEMES


@dataclass
class TradeoffRow:
    scheme: str
    protection_rate: float
    slowdown: float

    @property
    def protection_loss_vs(self) -> float:  # pragma: no cover - convenience
        return 0.0


def section73(
    workloads: Sequence[Workload],
    schemes: Sequence[str] = PERF_SCHEMES,
    trials: int = 60,
    perf_scale: float = 0.6,
    sfi_scale: float = 0.45,
    seed: int = 0,
    config: Optional[RSkipConfig] = None,
    fig7: Optional[Figure7Result] = None,
    jobs: int = 1,
) -> List[TradeoffRow]:
    """Average protection rate and slowdown per scheme (paper section 7.3)."""
    if fig7 is None:
        fig7 = figure7(workloads, schemes, scale=perf_scale, config=config)
    time_by_scheme = {
        avg.scheme: avg.norm_time for avg in fig7.averages()
    }

    harness_cache: Dict[str, Harness] = {}

    def profile_source(workload: Workload, ar: float):
        harness = harness_cache.get(workload.name)
        if harness is None:
            harness = Harness(workload, config=config, scale=sfi_scale, timing=False)
            harness_cache[workload.name] = harness
        return harness.profiles_for(ar)

    rows: List[TradeoffRow] = []
    for scheme in schemes:
        rates = []
        for workload in workloads:
            descriptor = get_scheme(scheme, config)
            profiles = None
            if descriptor.needs_training:
                profiles = profile_source(workload, descriptor.acceptable_range)
            campaign = run_campaign(
                workload, scheme, trials, seed=seed, scale=sfi_scale,
                config=config, profiles=profiles, jobs=jobs,
            )
            rates.append(campaign.protection_rate)
        rows.append(
            TradeoffRow(
                scheme=scheme,
                protection_rate=sum(rates) / len(rates) if rates else 0.0,
                slowdown=time_by_scheme.get(scheme, 0.0),
            )
        )
    return rows
