"""Evaluation harness: train, run and measure workloads under schemes."""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import PAPER_ACCEPTABLE_RANGES, RSkipConfig
from ..core.manager import LoopProfile, SkipStats
from ..core.serialize import profiles_from_json, profiles_to_json
from ..core.training import collect_traces, enable_recording, train_profiles
from ..ir.verifier import verify_module
from ..obs.events import enabled as obs_enabled
from ..obs.events import span as obs_span
from ..pipeline import artifact_key, get_cache
from ..pipeline.registry import get_scheme
from ..runtime.backend import make_executor
from ..runtime.interpreter import RunResult
from ..runtime.outcomes import outputs_equal
from ..runtime.scheduler import TimingModel
from ..workloads.base import Workload, WorkloadInput
from .schemes import PreparedProgram, prepare, rskip_label


@dataclass
class RunRecord:
    """One (workload, scheme, input) execution with all measurements."""

    workload: str
    scheme: str
    steps: int
    cycles: int
    ipc: float
    output: List[float]
    correct: Optional[bool] = None
    skip_rate: Optional[float] = None
    stats: Optional[SkipStats] = None

    def normalized(self, baseline: "RunRecord") -> Dict[str, float]:
        return {
            "time": self.cycles / baseline.cycles if baseline.cycles else 0.0,
            "instructions": self.steps / baseline.steps if baseline.steps else 0.0,
            "ipc": self.ipc / baseline.ipc if baseline.ipc else 0.0,
        }


class Harness:
    """Runs one workload through training and measured executions.

    Mirrors the paper's protocol: one-time compilation, an automated
    offline training session on training inputs, then measurement on
    disjoint test inputs.
    """

    def __init__(
        self,
        workload: Workload,
        config: Optional[RSkipConfig] = None,
        scale: float = 1.0,
        timing: bool = True,
        verify: bool = False,
        train_count: int = 5,
        seed: int = 1,
    ):
        self.workload = workload
        self.config = config or RSkipConfig()
        self.scale = scale
        self.timing = timing
        self.verify = verify
        self.train_count = train_count
        self.seed = seed
        self._profiles_by_ar: Dict[float, Dict[str, LoopProfile]] = {}
        self._traces = None
        self._memo_keys: List[str] = []
        self._prepared_by_scheme: Dict[str, PreparedProgram] = {}
        self._module_fingerprint: Optional[str] = None

    # -- training -------------------------------------------------------------
    def record_traces(self):
        """Run the training inputs once, recording loop-output traces."""
        prepared = prepare(self.workload, rskip_label(self.config.acceptable_range),
                           self.config)
        enable_recording(prepared.application.runtime)
        with obs_span(f"train.record:{self.workload.name}"):
            for inp in self.workload.training_inputs(self.train_count, self.seed, self.scale):
                self._execute(prepared, inp, timing=False)
        self._traces = collect_traces(prepared.application.runtime)
        self._memo_keys = [
            layout.key for layout in prepared.application.layouts
            if layout.mode == "call"
        ]
        return self._traces

    def _profile_key(self, acceptable_range: float) -> str:
        """Artifact-cache key for one trained-profile set: the workload's
        module fingerprint × everything that shapes training."""
        if self._module_fingerprint is None:
            from ..runtime.compiler import module_fingerprint

            self._module_fingerprint = module_fingerprint(self.workload.build())
        return artifact_key(
            "trained-profiles", self.workload.name, self._module_fingerprint,
            repr(self.config.with_ar(acceptable_range)),
            self.train_count, self.seed, self.scale,
        )

    def profiles_for(self, acceptable_range: float) -> Dict[str, LoopProfile]:
        """Trained profiles for one AR (traces recorded on demand).

        Training is the most expensive compile-time stage, so results
        also go through the pipeline artifact cache (when enabled),
        serialized with :mod:`repro.core.serialize` — a repeated
        campaign or benchmark invocation skips re-training entirely.
        """
        cached = self._profiles_by_ar.get(acceptable_range)
        if cached is not None:
            return cached
        # a traced run must reproduce the full training event stream
        # (train-loop, exec, phase-cut …), which a cache hit would elide —
        # so the cross-process artifact cache only serves untraced runs
        store = get_cache() if not obs_enabled() else None
        key = self._profile_key(acceptable_range) if store is not None else None
        if store is not None:
            payload = store.get(key)
            if payload is not None:
                profiles = profiles_from_json(payload["profiles"])
                self._profiles_by_ar[acceptable_range] = profiles
                return profiles
        if self._traces is None:
            self.record_traces()
        config = self.config.with_ar(acceptable_range)
        profiles, _reports = train_profiles(self._traces, config, self._memo_keys)
        self._profiles_by_ar[acceptable_range] = profiles
        if store is not None:
            store.put(key, {
                "kind": "trained-profiles",
                "profiles": profiles_to_json(profiles),
            })
        return profiles

    # -- execution -------------------------------------------------------------
    def prepare_scheme(self, scheme: str, fresh: bool = False) -> PreparedProgram:
        """The workload compiled under *scheme* (any registry spelling).

        Prepared programs are cached: building and transforming the module
        is the expensive part of a measurement, and per-run runtime resets
        make reuse across inputs exact (``fresh=True`` bypasses the cache).
        """
        descriptor = get_scheme(scheme, self.config)
        if not fresh:
            cached = self._prepared_by_scheme.get(descriptor.name)
            if cached is not None:
                return cached
        profiles = None
        if descriptor.needs_training:
            profiles = self.profiles_for(descriptor.acceptable_range)
        prepared = prepare(self.workload, descriptor.name, self.config, profiles)
        if self.verify:
            verify_module(prepared.module)
        if not fresh:
            self._prepared_by_scheme[descriptor.name] = prepared
        return prepared

    def _execute(
        self,
        prepared: PreparedProgram,
        inp: WorkloadInput,
        timing: Optional[bool] = None,
    ) -> Tuple[RunResult, List[float]]:
        module = prepared.module
        memory = self.workload.fresh_memory(module, inp)
        use_timing = self.timing if timing is None else timing
        # timed runs need the reference interpreter's cycle model; untimed
        # measurement runs go through the backend dispatch (compiled by
        # default) — make_executor routes accordingly
        tm = TimingModel() if use_timing else None
        executor = make_executor(module, memory=memory, timing=tm)
        executor.register_intrinsics(prepared.intrinsics)
        result = executor.run(prepared.main, inp.args)
        output = memory.read_global(*inp.output)
        return result, output

    def run_scheme(
        self,
        scheme: str,
        inp: WorkloadInput,
        golden: Optional[List[float]] = None,
        prepared: Optional[PreparedProgram] = None,
    ) -> RunRecord:
        if prepared is None:
            prepared = self.prepare_scheme(scheme)
        runtime = prepared.runtime
        before = None
        if runtime is not None:
            # prepared programs are reused across inputs; reset the runtime
            # so no predictor or QoS state leaks between runs, and report
            # this run's stats delta — never the cumulative counters
            runtime.reset()
            before = runtime.total_stats()
        with obs_span(f"measure:{self.workload.name}:{prepared.scheme}"):
            result, output = self._execute(prepared, inp)
        stats = None
        skip = None
        if runtime is not None:
            stats = runtime.stats_delta(before)
            skip = stats.skip_rate
        return RunRecord(
            workload=self.workload.name,
            scheme=prepared.scheme,
            steps=result.steps,
            cycles=result.cycles,
            ipc=result.ipc,
            output=output,
            correct=None if golden is None else outputs_equal(golden, output),
            skip_rate=skip,
            stats=stats,
        )

    def run_all(
        self,
        schemes: Sequence[str],
        inp: WorkloadInput,
    ) -> Dict[str, RunRecord]:
        """Run every scheme on one input; UNSAFE is always run first and
        used as both the golden output and the normalization baseline."""
        records: Dict[str, RunRecord] = {}
        unsafe = self.run_scheme("UNSAFE", inp)
        unsafe.correct = True
        records["UNSAFE"] = unsafe
        for scheme in schemes:
            if scheme == "UNSAFE":
                continue
            records[scheme] = self.run_scheme(scheme, inp, golden=unsafe.output)
        return records


def default_ars() -> Tuple[float, ...]:
    return PAPER_ACCEPTABLE_RANGES
