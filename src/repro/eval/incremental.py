"""Incremental fault campaigns: stratified per-section injection with a
persistent section store (FastFlip).

The default campaign draws every trial's fault site uniformly over the
whole region from one per-trial seed stream — statistically right, but
monolithic: any edit invalidates all of it.  The **stratified** mode
here allocates trials to sections (``repro.eval.sections``)
proportionally to their dynamic step count (largest-remainder rounding,
so exactly ``trials`` run), and draws each section's plans from its own
seed stream::

    stable_seed(seed, workload, scheme, section_fingerprint, trial_index)

keyed by the section *fingerprint*, not its position — so one section's
tallies are byte-independent of every other section's existence.  That
independence is what makes composition exact rather than approximate: a
stored per-section tally can be replayed into any later campaign whose
section carries the same fingerprint, step count and trial allocation.

``run_campaign_stratified(..., store=..., reuse=True)`` is the
incremental path: unchanged sections are served from a
``.repro-cache/campaigns/`` disk store (same corrupt-entry-removal
discipline as the pipeline artifact cache), changed sections re-inject
with ``random_plan`` restricted to their step window (local draw, then
mapped to the global step), and the total is composed by step-weighted
merge in section order.  Difftest oracle O7 pins the equivalence:
incremental tallies == stratified-from-scratch tallies, byte for byte,
on both the reference and batch backends.

The default (non-stratified) seeding is untouched — every pinned
byte-identity tally in the repo stays valid.
"""
from __future__ import annotations

import math
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import RSkipConfig
from ..core.manager import LoopProfile
from ..pipeline.cache import ArtifactCache, artifact_key, cache_dir
from ..pipeline.registry import canonical_scheme, get_scheme
from ..runtime.backend import default_backend
from ..runtime.faults import DEFAULT_KIND_WEIGHTS, FaultPlan, random_plan
from ..workloads.base import Workload, WorkloadInput, stable_seed
from .fault_campaign import (
    BATCH_LANES,
    CampaignContext,
    CampaignResult,
    _run_once,
    _run_once_batch,
    _tally_trial,
    campaign_context,
)
from .schemes import PreparedProgram, prepare
from .sections import Section, SectionPartition, partition_sections

#: Bump when the stored per-section payload layout changes; old entries
#: become misses.
STORE_VERSION = 1


def campaign_store_dir() -> str:
    """Disk location of the per-section tally store (under the pipeline
    cache directory, so ``REPRO_CACHE_DIR`` relocates both together)."""
    return os.path.join(cache_dir(), "campaigns")


def section_store_key(
    workload: str,
    scheme_hash: str,
    section: Section,
    trials: int,
    seed: int,
    scale: float,
    kind_weights: Tuple,
    max_steps: int,
) -> str:
    """The exactness axis of reuse: everything that shapes a section's
    tallies.  Fingerprint covers the code; step count and trial
    allocation cover the sampling; seed/scale/kind weights cover the
    fault model; max_steps covers the hang budget."""
    return artifact_key(
        "campaign-section", STORE_VERSION, workload, scheme_hash,
        section.fingerprint, section.step_count, trials, seed, scale,
        [list(kw) for kw in kind_weights], max_steps,
    )


class SectionStore:
    """Persistent per-section tally store with the pipeline cache's
    corrupt-entry-removal discipline (:class:`ArtifactCache` validates
    version and embedded key on read and drops anything that fails)."""

    def __init__(self, directory: Optional[str] = None, capacity: int = 1024):
        self.directory = directory if directory is not None else campaign_store_dir()
        self.cache = ArtifactCache(capacity=capacity, directory=self.directory)

    def get(self, key: str) -> Optional[CampaignResult]:
        payload = self.cache.get(key)
        if payload is None:
            return None
        try:
            return CampaignResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            # structurally valid cache entry with a semantically broken
            # payload (hand edit, layout drift): treat as a miss
            return None

    def sweep(self, max_age: Optional[float] = None) -> int:
        """Remove orphaned ``*.tmp`` files (crashed writers) from the
        store directory; same discipline as the pipeline cache.  Returns
        the number of files removed."""
        from ..pipeline.cache import STALE_TMP_AGE, sweep_stale_tmp

        return sweep_stale_tmp(
            self.directory,
            STALE_TMP_AGE if max_age is None else max_age,
        )

    def put(self, key: str, result: CampaignResult, section: Section) -> None:
        data = result.to_dict()
        # region_steps is campaign-wide state, not section state: zero it
        # in the store and re-stamp on load so a reused tally merges into
        # the current campaign's context
        data["region_steps"] = 0
        self.cache.put(key, {
            "result": data,
            "section": section.name,
            "step_count": section.step_count,
        })


def stratified_allocation(step_counts: Sequence[int], trials: int) -> List[int]:
    """Allocate *trials* proportionally to step counts with
    largest-remainder rounding (deterministic; ties broken by index), so
    the totals sum to exactly *trials*."""
    total = sum(step_counts)
    if total <= 0:
        raise ValueError("cannot allocate trials over an empty region")
    exact = [trials * count / total for count in step_counts]
    counts = [int(math.floor(x)) for x in exact]
    order = sorted(range(len(exact)),
                   key=lambda i: (-(exact[i] - counts[i]), i))
    for i in order[:trials - sum(counts)]:
        counts[i] += 1
    return counts


def section_trial_seed(
    seed: int, workload: str, scheme: str, section_fp: str, trial_index: int,
) -> int:
    """Per-trial seed of one section's stream — keyed by the section
    fingerprint, so the stream survives edits elsewhere in the program."""
    return stable_seed(seed, workload, scheme, section_fp, trial_index)


def section_plans(
    section: Section,
    trials: int,
    seed: int,
    workload: str,
    scheme: str,
    kind_weights: Tuple = DEFAULT_KIND_WEIGHTS,
) -> List[FaultPlan]:
    """The fault plans of one section's trials: drawn locally over the
    section's step window, then mapped to global region steps."""
    plans = []
    for trial in range(trials):
        rng = random.Random(section_trial_seed(
            seed, workload, scheme, section.fingerprint, trial))
        local = random_plan(rng, section.step_count, kind_weights)
        plans.append(FaultPlan(
            step=section.global_step(local.step), kind=local.kind,
            bit=local.bit, pick=local.pick, burst_len=local.burst_len))
    return plans


def _run_plan_block(
    prepared: PreparedProgram,
    workload: Workload,
    inp: WorkloadInput,
    ctx: CampaignContext,
    scheme: str,
    plans: Sequence[FaultPlan],
    config: Optional[RSkipConfig],
    profiles: Optional[Dict[str, LoopProfile]],
    backend: str,
) -> CampaignResult:
    """Run an explicit plan list and tally it — the plan-driven twin of
    ``run_trial_block`` / ``run_trial_block_batch``, byte-identical
    between the reference and batch backends."""
    result = CampaignResult(workload.name, prepared.scheme, len(plans))
    result.region_steps = ctx.region_steps
    stateful = prepared.runtime is not None

    if backend != "batch":
        runtime = prepared.runtime
        for trial, plan in enumerate(plans):
            snapshot = None
            if runtime is not None:
                runtime.reset()
                snapshot = runtime.total_stats()
            trap, output, loop_output, _, detected = _run_once(
                prepared, workload, inp, plan, ctx.region, ctx.max_steps)
            _tally_trial(
                result, ctx, runtime, snapshot, trap, output, loop_output,
                detected, workload.name, prepared.scheme, trial,
                kind=plan.kind)
        return result

    import gc

    for chunk_start in range(0, len(plans), BATCH_LANES):
        slab = list(plans[chunk_start:chunk_start + BATCH_LANES])
        if stateful:
            preps = [prepare(workload, scheme, config, profiles)
                     for _ in slab]
            snapshots = []
            for p in preps:
                p.runtime.reset()
                snapshots.append(p.runtime.total_stats())
            tables = [p.intrinsics for p in preps]
            slab_prepared = preps[0]
        else:
            preps = None
            snapshots = [None] * len(slab)
            tables = prepared.intrinsics
            slab_prepared = prepared
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            rows = _run_once_batch(
                slab_prepared, workload, inp, slab, ctx.region,
                ctx.max_steps, intrinsics=tables)
        finally:
            if gc_was_enabled:
                gc.enable()
        for i, (trap, output, loop_output, _, detected) in enumerate(rows):
            _tally_trial(
                result, ctx,
                preps[i].runtime if preps is not None else None,
                snapshots[i], trap, output, loop_output, detected,
                workload.name, prepared.scheme, chunk_start + i,
                kind=slab[i].kind)
    return result


@dataclass
class SectionReport:
    """What one section contributed to a stratified campaign."""

    name: str
    fingerprint: str
    step_count: int
    trials: int
    reused: bool


@dataclass
class StratifiedResult:
    """A composed stratified campaign plus its per-section provenance."""

    result: CampaignResult
    sections: List[SectionReport] = field(default_factory=list)

    @property
    def reused_sections(self) -> int:
        return sum(1 for s in self.sections if s.reused)

    @property
    def injected_sections(self) -> int:
        return sum(1 for s in self.sections if not s.reused and s.trials > 0)

    @property
    def reused_trials(self) -> int:
        return sum(s.trials for s in self.sections if s.reused)

    @property
    def injected_trials(self) -> int:
        return sum(s.trials for s in self.sections if not s.reused)


def run_campaign_stratified(
    workload: Workload,
    scheme: str,
    trials: int,
    seed: int = 0,
    scale: float = 0.45,
    config: Optional[RSkipConfig] = None,
    profiles: Optional[Dict[str, LoopProfile]] = None,
    inp: Optional[WorkloadInput] = None,
    prepared: Optional[PreparedProgram] = None,
    kind_weights: Tuple = DEFAULT_KIND_WEIGHTS,
    store: Optional[SectionStore] = None,
    reuse: bool = False,
    backend: Optional[str] = None,
) -> StratifiedResult:
    """One stratified (optionally incremental) fault campaign.

    Trials are allocated to sections by step count and every section
    draws from its own fingerprint-keyed seed stream, so per-section
    tallies compose exactly.  With a *store*, finished section tallies
    are persisted; with ``reuse=True`` sections whose store key matches
    (fingerprint × scheme hash × fault-model params × allocation) are
    served from the store instead of re-injected — ``repro campaign
    --incremental``.

    Stratified sampling is opt-in precisely because its seed streams
    differ from the default campaign's: the two estimate the same rates
    but are not byte-comparable.  Within stratified mode, tallies are
    byte-identical across backends, trial chunkings and reuse patterns
    (oracle O7).
    """
    scheme = canonical_scheme(scheme, config)
    if trials <= 0:
        raise ValueError("trials must be positive")
    if inp is None:
        inp = workload.test_inputs(1, seed=seed + 17, scale=scale)[0]
    if prepared is None:
        prepared = prepare(workload, scheme, config, profiles)
    ctx = campaign_context(prepared, workload, inp)
    partition = partition_sections(prepared, workload, inp, ctx.region)
    if partition.region_steps != ctx.region_steps:
        raise RuntimeError(
            f"{workload.name}/{scheme}: section counting run saw "
            f"{partition.region_steps} region steps, campaign context "
            f"{ctx.region_steps}")
    scheme_hash = get_scheme(scheme, config).descriptor_hash()
    engine = backend if backend is not None else default_backend()

    allocation = stratified_allocation(
        [s.step_count for s in partition.sections], trials)

    total = CampaignResult(workload.name, prepared.scheme, 0)
    total.region_steps = ctx.region_steps
    outcome = StratifiedResult(total)
    for section, count in zip(partition.sections, allocation):
        if count == 0:
            outcome.sections.append(SectionReport(
                section.name, section.fingerprint, section.step_count,
                0, False))
            continue
        key = None
        part: Optional[CampaignResult] = None
        if store is not None:
            key = section_store_key(
                workload.name, scheme_hash, section, count, seed, scale,
                kind_weights, ctx.max_steps)
            if reuse:
                part = store.get(key)
        reused = part is not None
        if part is None:
            plans = section_plans(
                section, count, seed, workload.name, scheme, kind_weights)
            part = _run_plan_block(
                prepared, workload, inp, ctx, scheme, plans, config,
                profiles, engine)
            if store is not None:
                store.put(key, part, section)
        else:
            part.region_steps = ctx.region_steps
        total.merge(part)
        outcome.sections.append(SectionReport(
            section.name, section.fingerprint, section.step_count,
            count, reused))
    return outcome
