"""Text plots of the paper's figures.

The paper presents bar charts (Figures 2, 7, 9) and a line/scatter mix
(Figure 8).  These helpers render the same data as Unicode bar charts so
``python -m repro`` output and the bench logs can be *read* like the
figures, not just as tables.
"""
from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

FULL = "█"
PARTIAL = (" ", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def bar(value: float, maximum: float, width: int = 40) -> str:
    """One horizontal bar scaled to *maximum*."""
    if maximum <= 0:
        return ""
    fraction = max(0.0, min(value / maximum, 1.0))
    cells = fraction * width
    whole = int(cells)
    remainder = int((cells - whole) * 8)
    out = FULL * whole
    if whole < width and remainder:
        out += PARTIAL[remainder]
    return out


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 40,
    fmt: str = "{:.2f}",
    maximum: Optional[float] = None,
    title: str = "",
) -> str:
    """Labelled horizontal bar chart.

    >>> print(bar_chart([("a", 1.0), ("b", 2.0)], width=4))  # doctest: +SKIP
    a  ██    1.00
    b  ████  2.00
    """
    if not rows:
        return title
    label_w = max(len(label) for label, _ in rows)
    peak = maximum if maximum is not None else max(v for _, v in rows) or 1.0
    lines = [title] if title else []
    for label, value in rows:
        lines.append(
            f"{label:<{label_w}}  {bar(value, peak, width):<{width}}  "
            f"{fmt.format(value)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[Tuple[str, Mapping[str, float]]],
    series: Sequence[str],
    width: int = 36,
    fmt: str = "{:.2f}",
    title: str = "",
) -> str:
    """Figure-7-style chart: one block per benchmark, one bar per scheme."""
    peak = 0.0
    for _, values in groups:
        for name in series:
            value = values.get(name)
            if value is not None:
                peak = max(peak, value)
    if peak == 0:
        peak = 1.0
    series_w = max((len(s) for s in series), default=1)
    lines = [title] if title else []
    for group, values in groups:
        lines.append(f"{group}:")
        for name in series:
            value = values.get(name)
            if value is None:
                continue
            lines.append(
                f"  {name:<{series_w}}  {bar(value, peak, width):<{width}}  "
                f"{fmt.format(value)}"
            )
    return "\n".join(lines)


def stacked_chart(
    rows: Sequence[Tuple[str, Mapping[str, float]]],
    categories: Sequence[str],
    glyphs: str = "█▓▒░·",
    width: int = 50,
    title: str = "",
) -> str:
    """Figure-9-style 100%-stacked bars (outcome shares per scheme)."""
    lines = [title] if title else []
    label_w = max((len(label) for label, _ in rows), default=1)
    for label, shares in rows:
        cells: List[str] = []
        for k, cat in enumerate(categories):
            share = shares.get(cat, 0.0)
            cells.append(glyphs[k % len(glyphs)] * int(round(share * width)))
        barstr = "".join(cells)[:width].ljust(width)
        detail = " ".join(f"{cat}={shares.get(cat, 0.0):.0%}" for cat in categories
                          if shares.get(cat, 0.0) >= 0.005)
        lines.append(f"{label:<{label_w}}  {barstr}  {detail}")
    legend = "  ".join(f"{glyphs[k % len(glyphs)]}={cat}"
                       for k, cat in enumerate(categories))
    lines.append(f"{'':<{label_w}}  [{legend}]")
    return "\n".join(lines)
