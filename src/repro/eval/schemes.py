"""Protection schemes under evaluation.

The evaluation compares (Figure 7/9): ``UNSAFE`` (no protection),
``SWIFT`` (duplication, detection only — extra, not in the paper's
figures), ``SWIFT-R`` (the baseline: triplication + voting recovery) and
``RSkip`` at AR20/AR50/AR80/AR100.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.patterns import TargetLoop, detect_target_loops
from ..core.config import RSkipConfig
from ..core.manager import LoopProfile, RskipRuntime
from ..core.rskip import RskipApplication, apply_rskip
from ..ir.module import Module
from ..runtime.errors import FaultDetectedError
from ..runtime.faults import Region
from ..transforms.swift import DETECT_INTRINSIC, apply_swift, apply_swift_r
from ..workloads.base import Workload

UNSAFE = "UNSAFE"
SWIFT = "SWIFT"
SWIFT_R = "SWIFT-R"


def rskip_label(acceptable_range: float) -> str:
    return f"AR{int(round(acceptable_range * 100))}"

#: The scheme order of the paper's figures.
PAPER_SCHEMES = (UNSAFE, SWIFT_R, "AR20", "AR50", "AR80", "AR100")


def _swift_detected(interp, args):
    raise FaultDetectedError("SWIFT detected a transient fault")


@dataclass
class PreparedProgram:
    """A workload module compiled under one protection scheme."""

    scheme: str
    module: Module
    intrinsics: Dict[str, object] = field(default_factory=dict)
    application: Optional[RskipApplication] = None
    #: target loops of the *original* module (same block labels — builds
    #: are deterministic), for fault-region construction
    original_targets: List[TargetLoop] = field(default_factory=list)
    main: str = "main"

    @property
    def runtime(self) -> Optional[RskipRuntime]:
        return self.application.runtime if self.application else None


def prepare(
    workload: Workload,
    scheme: str,
    config: Optional[RSkipConfig] = None,
    profiles: Optional[Dict[str, LoopProfile]] = None,
) -> PreparedProgram:
    """Build the workload's module and apply the requested scheme.

    For RSkip schemes, pass the scheme as ``"AR20"``-style label or supply
    *config* directly.
    """
    module = workload.build()
    original_targets = detect_target_loops(module.get_function(workload.main), module)

    if scheme == UNSAFE:
        return PreparedProgram(scheme, module, {}, None, original_targets, workload.main)

    if scheme == SWIFT:
        apply_swift(module)
        return PreparedProgram(
            scheme, module, {DETECT_INTRINSIC: _swift_detected}, None,
            original_targets, workload.main,
        )

    if scheme == SWIFT_R:
        apply_swift_r(module)
        return PreparedProgram(scheme, module, {}, None, original_targets, workload.main)

    if scheme.startswith("AR"):
        ar = int(scheme[2:]) / 100.0
        config = (config or RSkipConfig()).with_ar(ar)
    elif config is None:
        raise ValueError(f"unknown scheme {scheme!r}")

    app = apply_rskip(module, config, profiles)
    return PreparedProgram(
        rskip_label(config.acceptable_range), module, app.intrinsics(), app,
        original_targets, workload.main,
    )


def fault_region(prepared: PreparedProgram) -> Region:
    """The paper's injection discipline: faults land only inside the
    detected loops (expanded through transform provenance) and the
    functions implementing their computation."""
    loop_labels = set()
    funcs = set()
    for target in prepared.original_targets:
        loop_labels |= target.loop.blocks
        if target.callee is not None:
            funcs.add(target.callee)

    app = prepared.application
    if app is not None:
        for layout in app.layouts:
            funcs.update(layout.region_funcs)

    blocks = set()
    main_func = prepared.module.get_function(prepared.main)
    provenance = main_func.attrs.get("provenance", {})
    for label in main_func.blocks:
        if provenance.get(label, label) in loop_labels:
            blocks.add((prepared.main, label))
    return Region(funcs=funcs, blocks=blocks)
