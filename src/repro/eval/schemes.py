"""Protection schemes under evaluation.

The evaluation compares (Figure 7/9): ``UNSAFE`` (no protection),
``SWIFT`` (duplication, detection only — extra, not in the paper's
figures), ``SWIFT-R`` (the baseline: triplication + voting recovery) and
``RSkip`` at AR20/AR50/AR80/AR100.

Scheme names, aliases and pass lists live in
:mod:`repro.pipeline.registry`; this module re-exports the evaluation's
historical vocabulary and adapts workload objects onto
:func:`repro.pipeline.protect`.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.patterns import TargetLoop, detect_target_loops
from ..core.config import RSkipConfig
from ..core.manager import LoopProfile
from ..ir.module import Module
from ..pipeline import protect
from ..pipeline.registry import (  # noqa: F401  (re-exported vocabulary)
    PAPER_SCHEMES,
    SWIFT,
    SWIFT_R,
    UNSAFE,
    get_scheme,
    rskip_label,
)
from ..runtime.faults import Region
from ..workloads.base import Workload


@dataclass
class PreparedProgram:
    """A workload module compiled under one protection scheme."""

    scheme: str
    module: Module
    intrinsics: Dict[str, object] = field(default_factory=dict)
    #: RskipApplication or ProtocolApplication (duck-typed: both expose
    #: .layouts / .runtime / .intrinsics())
    application: Optional[object] = None
    #: target loops of the *original* module (same block labels — builds
    #: are deterministic), for fault-region construction
    original_targets: List[TargetLoop] = field(default_factory=list)
    main: str = "main"
    #: when set, :func:`fault_region` returns this region verbatim —
    #: used by programs with no detected target loops (difftest modules
    #: campaigned whole-program, oracle O7)
    region_override: Optional[Region] = None

    @property
    def runtime(self) -> Optional[object]:
        """The scheme's stateful runtime (RskipRuntime/ProtocolRuntime:
        reset(), total_stats(), stats_delta(), intrinsics())."""
        return self.application.runtime if self.application else None


def prepare(
    workload: Workload,
    scheme: str,
    config: Optional[RSkipConfig] = None,
    profiles: Optional[Dict[str, LoopProfile]] = None,
) -> PreparedProgram:
    """Build the workload's module and apply the requested scheme.

    *scheme* accepts any registry spelling (``"AR20"``, ``"swift-r"``,
    ``"rskip"``…); an explicit RSkip *config* may also stand in for the
    scheme label.  Protection goes through the pipeline's artifact cache,
    so preparing the same workload × scheme twice reuses the transformed
    module text (the run-time manager is always rebuilt fresh).
    """
    module = workload.build()
    original_targets = detect_target_loops(
        module.get_function(workload.main), module)

    try:
        descriptor = get_scheme(scheme, config)
    except ValueError:
        if config is None:
            raise
        # historical affordance: an unknown label with an explicit RSkip
        # config means "rskip at this config's acceptable range"
        descriptor = get_scheme(rskip_label(config.acceptable_range))

    program = protect(module, descriptor, config=config, profiles=profiles)
    return PreparedProgram(
        program.scheme, program.module, program.intrinsics,
        program.application, original_targets, workload.main,
    )


def fault_region(prepared: PreparedProgram) -> Region:
    """The paper's injection discipline: faults land only inside the
    detected loops (expanded through transform provenance) and the
    functions implementing their computation."""
    if prepared.region_override is not None:
        return prepared.region_override
    loop_labels = set()
    funcs = set()
    for target in prepared.original_targets:
        loop_labels |= target.loop.blocks
        if target.callee is not None:
            funcs.add(target.callee)

    app = prepared.application
    if app is not None:
        for layout in app.layouts:
            funcs.update(layout.region_funcs)

    blocks = set()
    main_func = prepared.module.get_function(prepared.main)
    provenance = main_func.attrs.get("provenance", {})
    for label in main_func.blocks:
        if provenance.get(label, label) in loop_labels:
            blocks.add((prepared.main, label))
    return Region(funcs=funcs, blocks=blocks)
