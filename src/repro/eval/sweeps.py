"""The acceptable-range continuum.

The paper evaluates four points (AR20/50/80/100) and argues their
rationality in section 7.3.  This study sweeps AR continuously to expose
the whole tradeoff curve — where the skip rate saturates, where the
protection rate starts paying for it — so a user can pick an operating
point instead of one of four presets.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.config import RSkipConfig
from ..workloads.base import Workload
from .fault_campaign import run_campaign
from .harness import Harness


@dataclass
class SweepPoint:
    acceptable_range: float
    skip_rate: float
    norm_instructions: float
    protection_rate: Optional[float] = None
    fn_rate: Optional[float] = None

    @property
    def label(self) -> str:
        return f"AR{int(round(self.acceptable_range * 100))}"


def ar_sweep(
    workload: Workload,
    ars: Sequence[float] = (0.05, 0.1, 0.2, 0.35, 0.5, 0.8, 1.0, 1.5, 2.0),
    scale: float = 0.5,
    trials: int = 0,
    sfi_scale: float = 0.35,
    seed: int = 2,
    jobs: int = 1,
) -> List[SweepPoint]:
    """Skip rate and overhead (and protection with ``trials > 0``) across a
    fine AR grid for one workload."""
    harness = Harness(workload, scale=scale, timing=False, seed=seed)
    inp = workload.test_inputs(1, seed=seed, scale=scale)[0]
    points: List[SweepPoint] = []
    for ar in ars:
        profiles = harness.profiles_for(ar)
        scheme = f"AR{int(round(ar * 100))}"
        from .schemes import prepare

        prepared = prepare(workload, scheme, RSkipConfig(), profiles)
        base = harness.run_scheme("UNSAFE", inp)
        rec = harness.run_scheme(scheme, inp, golden=base.output, prepared=prepared)
        point = SweepPoint(
            acceptable_range=ar,
            skip_rate=rec.skip_rate or 0.0,
            norm_instructions=rec.steps / base.steps,
        )
        if trials > 0:
            campaign = run_campaign(
                workload, scheme, trials, scale=sfi_scale, profiles=profiles,
                jobs=jobs,
            )
            point.protection_rate = campaign.protection_rate
            point.fn_rate = campaign.fn_rate
        points.append(point)
    return points


def render_sweep(workload_name: str, points: Sequence[SweepPoint]) -> str:
    from .reporting import render_table

    with_sfi = any(p.protection_rate is not None for p in points)
    headers = ["AR", "skip rate", "norm instructions"]
    if with_sfi:
        headers += ["protection", "false negatives"]
    body = []
    for p in points:
        row = [p.label, f"{p.skip_rate:.1%}", f"{p.norm_instructions:.2f}x"]
        if with_sfi:
            row.append("-" if p.protection_rate is None else f"{p.protection_rate:.1%}")
            row.append("-" if p.fn_rate is None else f"{p.fn_rate:.1%}")
        body.append(row)
    return f"{workload_name} acceptable-range sweep:\n" + render_table(headers, body)
