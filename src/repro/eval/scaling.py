"""Problem-size sensitivity study.

The paper evaluates at production sizes (1024x1024 matrices, 64K options);
this reproduction runs scaled-down problems on an interpreted substrate.
This study quantifies what that costs: for a workload, it sweeps the
scale knob and reports how the skip rate and the normalized overhead
move.  EXPERIMENTS.md's "lud is scale-bound" claim comes from here —
dynamic interpolation amortizes its two endpoint re-computations per
phase, so longer loops skip more.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.config import RSkipConfig
from ..workloads.base import Workload
from .harness import Harness


@dataclass
class ScalingRow:
    scale: float
    elements: int
    skip_rate: float
    norm_instructions: float
    norm_time: Optional[float]


def scaling_study(
    workload: Workload,
    scales: Sequence[float] = (0.4, 0.7, 1.0, 1.4),
    scheme: str = "AR20",
    seed: int = 2,
    timing: bool = False,
    config: Optional[RSkipConfig] = None,
) -> List[ScalingRow]:
    """Skip rate and overhead of one RSkip scheme across problem sizes."""
    rows: List[ScalingRow] = []
    for scale in scales:
        harness = Harness(workload, config=config, scale=scale, timing=timing)
        inp = workload.test_inputs(1, seed=seed, scale=scale)[0]
        records = harness.run_all([scheme], inp)
        base = records["UNSAFE"]
        rec = records[scheme]
        norm = rec.normalized(base)
        rows.append(
            ScalingRow(
                scale=scale,
                elements=rec.stats.elements if rec.stats else 0,
                skip_rate=rec.skip_rate or 0.0,
                norm_instructions=norm["instructions"],
                norm_time=norm["time"] if timing else None,
            )
        )
    return rows


def render_scaling(workload_name: str, rows: Sequence[ScalingRow]) -> str:
    from .reporting import render_table

    headers = ["scale", "loop elements", "skip rate", "norm instructions"]
    body = [
        [f"{r.scale:.1f}", str(r.elements), f"{r.skip_rate:.1%}",
         f"{r.norm_instructions:.2f}x"]
        for r in rows
    ]
    return f"{workload_name} scaling:\n" + render_table(headers, body)
