"""Static section partition of a campaign's injection region (FastFlip).

Incremental campaigns (``repro.eval.incremental``) reuse per-section
injection tallies across program edits.  The unit of reuse is a
**section**: a group of static program locations whose in-region dynamic
steps form its step window.  Two section kinds cover the region:

* **loop sections** — the protected main function's region blocks,
  grouped by the *innermost* natural loop of the original program that
  contains their provenance label.  The paper's protection model is
  loop-granular, so this is the granularity at which edits happen and
  reuse pays off (an edit to one inner loop leaves its siblings' tallies
  valid).
* **function sections** — every function the region names in full
  (pattern callees, RSkip outlined bodies): the whole function is one
  section.

Anything the counting pre-run observes that no section claims falls into
a **residual** section fingerprinted over the whole module — it can only
be reused when nothing at all changed, which keeps the partition total
(no gaps) without ever reusing a tally whose provenance is unclear.

A section's **fingerprint** hashes (via the pipeline cache's
:func:`~repro.pipeline.cache.artifact_key`) the printed IR of its own
blocks or function plus the printed IR of every module function
statically reachable from them — so an edit anywhere in a section's call
closure invalidates it, while edits elsewhere leave it byte-stable.  The
fingerprint deliberately excludes the *rest* of the enclosing function:
cross-section data flow is the documented approximation of compositional
reuse (see DESIGN.md §10); oracle O7 pins the cases where sections are
genuinely independent.

Step windows come from a counting pre-run on the reference interpreter
with :attr:`~repro.runtime.interpreter.Interpreter.section_trace`
enabled, compressed to run-length ``(global_start, length)`` segments.
The partition is validated against the interpreter's own
``region_steps`` total: sections cover the region exactly, with no gaps
and no overlaps.
"""
from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.loops import find_loops
from ..ir.function import Function
from ..ir.module import Module
from ..ir.printer import format_function, format_instr, format_module
from ..pipeline.cache import artifact_key
from ..runtime.faults import Region
from ..runtime.interpreter import Interpreter
from ..workloads.base import Workload, WorkloadInput
from .schemes import PreparedProgram, fault_region

#: Name of the catch-all section for steps no static section claims.
RESIDUAL_SECTION = "residual"


@dataclass
class Section:
    """One reusable unit of the injection region.

    ``segments`` are run-length ``(global_start, length)`` windows of the
    region's dynamic step range, ascending and non-overlapping;
    ``step_count`` is their total length.  ``global_step`` maps a
    section-local step (what a per-section :func:`random_plan` draws) to
    the global region step a :class:`FaultPlan` triggers on.
    """

    name: str
    fingerprint: str
    step_count: int = 0
    segments: List[Tuple[int, int]] = field(default_factory=list)
    _cum: List[int] = field(default_factory=list, repr=False)

    def global_step(self, local: int) -> int:
        if not 0 <= local < self.step_count:
            raise IndexError(
                f"section {self.name}: local step {local} outside "
                f"[0, {self.step_count})")
        if len(self._cum) != len(self.segments):
            cum, total = [], 0
            for _start, length in self.segments:
                cum.append(total)
                total += length
            self._cum = cum
        k = bisect.bisect_right(self._cum, local) - 1
        start, _length = self.segments[k]
        return start + (local - self._cum[k])

    def _extend(self, start: int, length: int) -> None:
        if self.segments and sum(self.segments[-1]) == start:
            prev_start, prev_len = self.segments[-1]
            self.segments[-1] = (prev_start, prev_len + length)
        else:
            self.segments.append((start, length))
        self.step_count += length
        self._cum = []


@dataclass
class SectionPartition:
    """All sections of one (prepared program, input) campaign, ordered by
    first dynamic appearance, covering ``[0, region_steps)`` exactly."""

    sections: List[Section]
    region_steps: int

    def by_name(self, name: str) -> Section:
        for section in self.sections:
            if section.name == name:
                return section
        raise KeyError(name)


class _SegmentRecorder:
    """Run-length ``section_trace`` sink: stores ``[key, start, length]``
    runs instead of one tuple per step, so counting a million-step region
    costs a few hundred list cells."""

    __slots__ = ("runs", "_last", "_pos")

    def __init__(self):
        self.runs: List[list] = []
        self._last = None
        self._pos = 0

    def append(self, key) -> None:
        if key == self._last:
            self.runs[-1][2] += 1
        else:
            self.runs.append([key, self._pos, 1])
            self._last = key
        self._pos += 1


def _block_text(func: Function, label: str) -> str:
    lines = [f"{label}:"]
    for instr in func.blocks[label].instrs:
        lines.append(format_instr(instr))
    return "\n".join(lines)


def _instr_callees(func: Function, labels) -> List[str]:
    out = []
    for label in labels:
        for instr in func.blocks[label].instrs:
            if instr.callee is not None:
                out.append(instr.callee)
    return out


def _closure_texts(module: Module, seeds: List[str]) -> Tuple[List[str], List[str]]:
    """Printed IR of every module function reachable through calls from
    *seeds*, plus the sorted names of non-module callees (intrinsics —
    their semantics are runtime-fixed, so the name alone is the
    fingerprint contribution)."""
    funcs: Set[str] = set()
    intrins: Set[str] = set()
    work = list(seeds)
    while work:
        name = work.pop()
        if name in funcs or name in intrins:
            continue
        if name not in module.functions:
            intrins.add(name)
            continue
        funcs.add(name)
        func = module.get_function(name)
        work.extend(_instr_callees(func, func.block_order()))
    texts = [format_function(module.get_function(n)) for n in sorted(funcs)]
    return texts, sorted(intrins)


def loop_section_fingerprint(
    module: Module, main: str, labels: List[str], orig_labels,
) -> str:
    """Fingerprint of a loop section: its own protected blocks (in layout
    order) + original block-label set + static call closure."""
    func = module.get_function(main)
    texts = [_block_text(func, label) for label in labels]
    closure, intrins = _closure_texts(module, _instr_callees(func, labels))
    return artifact_key(
        "section", "loop", main, sorted(orig_labels), texts, closure, intrins)


def function_section_fingerprint(module: Module, fname: str) -> str:
    """Fingerprint of a function section: the whole printed function +
    its static call closure."""
    func = module.get_function(fname)
    closure, intrins = _closure_texts(
        module, _instr_callees(func, func.block_order()))
    return artifact_key(
        "section", "func", fname, format_function(func), closure, intrins)


def _loop_label_owners(
    original_module: Module, main: str, targets,
) -> Dict[str, str]:
    """original block label -> header of its innermost containing loop,
    over every detected target loop."""
    orig_main = original_module.get_function(main)
    loops = find_loops(orig_main)
    owners: Dict[str, str] = {}
    for target in targets:
        tblocks = target.loop.blocks
        inner = [lp for lp in loops if lp.blocks <= tblocks]
        for label in tblocks:
            best = None
            for lp in inner:
                if label in lp.blocks and (
                        best is None or len(lp.blocks) < len(best.blocks)):
                    best = lp
            owners[label] = best.header if best is not None else target.loop.header
    return owners


def partition_sections(
    prepared: PreparedProgram,
    workload: Workload,
    inp: WorkloadInput,
    region: Optional[Region] = None,
    original_module: Optional[Module] = None,
) -> SectionPartition:
    """Partition the injection region of one campaign into sections.

    Static structure (owners, fingerprints) comes from the prepared
    module; dynamic step windows come from a counting pre-run on the
    reference interpreter.  Raises if the section step counts do not sum
    to the interpreter's ``region_steps`` — coverage is checked, not
    assumed.
    """
    module = prepared.module
    if region is None:
        region = fault_region(prepared)
    main = prepared.main
    main_func = module.get_function(main)
    provenance = main_func.attrs.get("provenance", {})

    owners: Dict[Tuple[str, str], str] = {}
    sections: Dict[str, Section] = {}

    if prepared.original_targets:
        if original_module is None:
            original_module = workload.build()
        label_owner = _loop_label_owners(
            original_module, main, prepared.original_targets)
        group_labels: Dict[str, List[str]] = {}
        group_origs: Dict[str, Set[str]] = {}
        for label in main_func.block_order():
            orig = provenance.get(label, label)
            header = label_owner.get(orig)
            if header is None:
                continue
            name = f"{main}:{header}"
            owners[(main, label)] = name
            group_labels.setdefault(name, []).append(label)
            group_origs.setdefault(name, set()).add(orig)
        for name, labels in group_labels.items():
            sections[name] = Section(name, loop_section_fingerprint(
                module, main, labels, group_origs[name]))

    for fname in sorted(region.funcs):
        if fname not in module.functions:
            continue
        name = f"@{fname}"
        sections[name] = Section(name, function_section_fingerprint(module, fname))
        for label in module.get_function(fname).block_order():
            owners[(fname, label)] = name

    recorder = _SegmentRecorder()
    if prepared.runtime is not None:
        prepared.runtime.reset()
    memory = workload.fresh_memory(module, inp)
    interp = Interpreter(
        module, memory=memory, max_steps=500_000_000, fault_region=region)
    interp.register_intrinsics(prepared.intrinsics)
    interp.section_trace = recorder
    interp.run(main, inp.args)

    residual: Optional[Section] = None
    for key, start, length in recorder.runs:
        name = owners.get(tuple(key))
        if name is None:
            if residual is None:
                residual = Section(
                    RESIDUAL_SECTION,
                    artifact_key("section", RESIDUAL_SECTION,
                                 format_module(module)))
                sections[RESIDUAL_SECTION] = residual
            section = residual
        else:
            section = sections[name]
        section._extend(start, length)

    ordered = [s for s in sections.values() if s.step_count > 0]
    ordered.sort(key=lambda s: s.segments[0][0])
    total = sum(s.step_count for s in ordered)
    if total != interp.region_steps:
        raise RuntimeError(
            f"{workload.name}/{prepared.scheme}: section partition covers "
            f"{total} steps but the region executes {interp.region_steps}")
    return SectionPartition(ordered, interp.region_steps)
