"""Performance experiments: Figures 7, 8a and 8b."""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import RSkipConfig
from ..pipeline.registry import default_campaign_schemes
from ..workloads.base import Workload
from .harness import Harness

#: Figure 7's x-axis: every registered campaign scheme except the UNSAFE
#: baseline (always run as the normalization reference).  Enumerated
#: from the scheme registry — paper schemes first, then every other
#: registered family's default point — so a newly registered scheme
#: appears in the performance study without touching this module.
PERF_SCHEMES = tuple(default_campaign_schemes(include_unsafe=False))


@dataclass
class SchemeAverages:
    scheme: str
    skip_rate: Optional[float]
    norm_time: float
    norm_instructions: float
    norm_ipc: float


@dataclass
class Figure7Result:
    """Per-workload and average rows of Figures 7a-7d."""

    #: rows[workload][scheme] -> dict(skip, time, instructions, ipc, correct)
    rows: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    schemes: Tuple[str, ...] = PERF_SCHEMES

    def averages(self) -> List[SchemeAverages]:
        out = []
        for scheme in self.schemes:
            cells = [r[scheme] for r in self.rows.values() if scheme in r]
            if not cells:
                continue
            skips = [c["skip"] for c in cells if c.get("skip") is not None]
            out.append(
                SchemeAverages(
                    scheme=scheme,
                    skip_rate=sum(skips) / len(skips) if skips else None,
                    norm_time=sum(c["time"] for c in cells) / len(cells),
                    norm_instructions=sum(c["instructions"] for c in cells) / len(cells),
                    norm_ipc=sum(c["ipc"] for c in cells) / len(cells),
                )
            )
        return out


def figure7(
    workloads: Sequence[Workload],
    schemes: Sequence[str] = PERF_SCHEMES,
    scale: float = 0.6,
    test_count: int = 1,
    seed: int = 2,
    config: Optional[RSkipConfig] = None,
) -> Figure7Result:
    """Skip rate, normalized execution time, dynamic instructions and IPC
    for every benchmark under every scheme (Figures 7a-7d)."""
    result = Figure7Result(schemes=tuple(schemes))
    for workload in workloads:
        harness = Harness(workload, config=config, scale=scale, seed=seed)
        acc: Dict[str, Dict[str, List[float]]] = {}
        for inp in workload.test_inputs(test_count, seed=seed, scale=scale):
            records = harness.run_all(schemes, inp)
            base = records["UNSAFE"]
            for scheme in schemes:
                rec = records[scheme]
                norm = rec.normalized(base)
                cell = acc.setdefault(scheme, {"time": [], "instructions": [], "ipc": [], "skip": [], "correct": []})
                cell["time"].append(norm["time"])
                cell["instructions"].append(norm["instructions"])
                cell["ipc"].append(norm["ipc"])
                cell["correct"].append(1.0 if rec.correct else 0.0)
                if rec.skip_rate is not None:
                    cell["skip"].append(rec.skip_rate)
        result.rows[workload.name] = {
            scheme: {
                "time": _mean(cell["time"]),
                "instructions": _mean(cell["instructions"]),
                "ipc": _mean(cell["ipc"]),
                "skip": _mean(cell["skip"]) if cell["skip"] else None,
                "correct": _mean(cell["correct"]),
            }
            for scheme, cell in acc.items()
        }
    return result


def _mean(xs: Sequence[float]) -> float:
    return sum(xs) / len(xs) if xs else 0.0


@dataclass
class Figure8aRow:
    scheme: str
    interp_only_time: float
    interp_only_skip: float
    full_time: float
    full_skip: float


def figure8a(
    workload: Workload,
    ars: Sequence[int] = (20, 50, 80, 100),
    scale: float = 0.6,
    seed: int = 2,
) -> List[Figure8aRow]:
    """blackscholes ablation: dynamic interpolation alone vs. with the
    approximate-memoization fallback (Figure 8a)."""
    inp = workload.test_inputs(1, seed=seed, scale=scale)[0]
    rows = []
    base_cfg = RSkipConfig()
    harness_full = Harness(workload, config=base_cfg, scale=scale, seed=seed)
    harness_solo = Harness(
        workload,
        config=RSkipConfig(memoization=False),
        scale=scale,
        seed=seed,
    )
    for ar in ars:
        scheme = f"AR{ar}"
        full = harness_full.run_all([scheme], inp)
        solo = harness_solo.run_all([scheme], inp)
        rows.append(
            Figure8aRow(
                scheme=scheme,
                interp_only_time=solo[scheme].normalized(solo["UNSAFE"])["time"],
                interp_only_skip=solo[scheme].skip_rate or 0.0,
                full_time=full[scheme].normalized(full["UNSAFE"])["time"],
                full_skip=full[scheme].skip_rate or 0.0,
            )
        )
    return rows


@dataclass
class Figure8bRow:
    input_id: int
    swift_r_time: float
    rskip_time: float
    skip_rate: float


def figure8b(
    workload: Workload,
    inputs: int = 20,
    scale: float = 0.6,
    seed: int = 2,
) -> List[Figure8bRow]:
    """lud input-diversity study: per-test-input normalized time and skip
    rate at AR20, against SWIFT-R (Figure 8b)."""
    harness = Harness(workload, scale=scale, seed=seed)
    rows = []
    for i, inp in enumerate(workload.test_inputs(inputs, seed=seed, scale=scale), 1):
        records = harness.run_all(["SWIFT-R", "AR20"], inp)
        base = records["UNSAFE"]
        rows.append(
            Figure8bRow(
                input_id=i,
                swift_r_time=records["SWIFT-R"].normalized(base)["time"],
                rskip_time=records["AR20"].normalized(base)["time"],
                skip_rate=records["AR20"].skip_rate or 0.0,
            )
        )
    return rows
