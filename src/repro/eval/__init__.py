"""repro.eval — the paper's evaluation: schemes, harness, performance
figures (7, 8a, 8b), the SFI reliability study (9a, 9b), the motivation
study (2), the AR tradeoff (section 7.3) and Table 1."""
from .schemes import (
    PAPER_SCHEMES,
    PreparedProgram,
    SWIFT,
    SWIFT_R,
    UNSAFE,
    fault_region,
    prepare,
    rskip_label,
)
from .harness import Harness, RunRecord, default_ars
from .perf import (
    Figure7Result,
    Figure8aRow,
    Figure8bRow,
    PERF_SCHEMES,
    SchemeAverages,
    figure7,
    figure8a,
    figure8b,
)
from .fault_campaign import (
    CampaignContext,
    CampaignResult,
    campaign_context,
    figure9,
    run_campaign,
    run_trial_block,
    trial_seed,
)
from .campaign_engine import (
    CampaignTask,
    CheckpointBusyError,
    CheckpointLock,
    eta_printer,
    run_campaign_parallel,
    run_campaigns,
)
from .sections import Section, SectionPartition, partition_sections
from .incremental import (
    SectionReport,
    SectionStore,
    StratifiedResult,
    campaign_store_dir,
    run_campaign_stratified,
    section_store_key,
    stratified_allocation,
)
from .motivation import MotivationRow, figure2, loop_instruction_share
from .tradeoff import TradeoffRow, section73
from .table1 import Table1Row, table1
from .costratio import CostRatio, cost_ratio
from .scaling import ScalingRow, render_scaling, scaling_study
from .vulnerability import VulnerabilityEstimate, occupancy_estimate
from .sweeps import SweepPoint, ar_sweep, render_sweep
from . import charts, reporting

__all__ = [
    "PAPER_SCHEMES", "PreparedProgram", "SWIFT", "SWIFT_R", "UNSAFE",
    "fault_region", "prepare", "rskip_label",
    "Harness", "RunRecord", "default_ars",
    "Figure7Result", "Figure8aRow", "Figure8bRow", "PERF_SCHEMES",
    "SchemeAverages", "figure7", "figure8a", "figure8b",
    "CampaignContext", "CampaignResult", "campaign_context", "figure9",
    "run_campaign", "run_trial_block", "trial_seed",
    "CampaignTask", "eta_printer", "run_campaign_parallel", "run_campaigns",
    "Section", "SectionPartition", "partition_sections",
    "SectionReport", "SectionStore", "StratifiedResult",
    "campaign_store_dir", "run_campaign_stratified", "section_store_key",
    "stratified_allocation",
    "MotivationRow", "figure2", "loop_instruction_share",
    "TradeoffRow", "section73",
    "Table1Row", "table1",
    "CostRatio", "cost_ratio",
    "ScalingRow", "render_scaling", "scaling_study",
    "VulnerabilityEstimate", "occupancy_estimate",
    "SweepPoint", "ar_sweep", "render_sweep",
    "charts", "reporting",
]
