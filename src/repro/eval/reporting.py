"""Plain-text rendering of the experiment results (the benches print
these; EXPERIMENTS.md records them)."""
from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..runtime.outcomes import Outcome
from .fault_campaign import CampaignResult
from .motivation import MotivationRow
from .perf import Figure7Result, Figure8aRow, Figure8bRow
from .table1 import Table1Row
from .tradeoff import TradeoffRow


def _fmt(value, width: int = 7, pct: bool = False) -> str:
    if value is None:
        return " " * (width - 1) + "-"
    if pct:
        return f"{value:{width}.1%}"
    return f"{value:{width}.2f}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def render_figure7(result: Figure7Result, metric: str, pct: bool = False) -> str:
    """One of Figures 7a-7d as a text table (*metric* in 'skip', 'time',
    'instructions', 'ipc')."""
    headers = ["benchmark"] + list(result.schemes)
    rows = []
    for name, cells in result.rows.items():
        row = [name]
        for scheme in result.schemes:
            cell = cells.get(scheme, {})
            row.append(_fmt(cell.get(metric), pct=pct).strip())
        rows.append(row)
    avg_row = ["average"]
    for avg in result.averages():
        value = {
            "skip": avg.skip_rate,
            "time": avg.norm_time,
            "instructions": avg.norm_instructions,
            "ipc": avg.norm_ipc,
        }[metric]
        avg_row.append(_fmt(value, pct=pct).strip())
    rows.append(avg_row)
    return render_table(headers, rows)


def render_figure8a(rows: Sequence[Figure8aRow]) -> str:
    headers = ["scheme", "interp time", "interp skip", "full time", "full skip"]
    body = [
        [
            r.scheme,
            f"{r.interp_only_time:.2f}x",
            f"{r.interp_only_skip:.1%}",
            f"{r.full_time:.2f}x",
            f"{r.full_skip:.1%}",
        ]
        for r in rows
    ]
    return render_table(headers, body)


def render_figure8b(rows: Sequence[Figure8bRow]) -> str:
    headers = ["input", "SWIFT-R time", "RSkip(AR20) time", "skip rate"]
    body = [
        [str(r.input_id), f"{r.swift_r_time:.2f}x", f"{r.rskip_time:.2f}x", f"{r.skip_rate:.1%}"]
        for r in rows
    ]
    n = len(rows)
    if n:
        body.append(
            [
                "average",
                f"{sum(r.swift_r_time for r in rows)/n:.2f}x",
                f"{sum(r.rskip_time for r in rows)/n:.2f}x",
                f"{sum(r.skip_rate for r in rows)/n:.1%}",
            ]
        )
    return render_table(headers, body)


def render_figure9a(
    results: Dict[Tuple[str, str], CampaignResult],
    schemes: Sequence[str],
) -> str:
    headers = ["benchmark", "scheme", "Correct", "SDC", "Segfault", "Core dump", "Hang"]
    body = []
    workload_names = sorted({k[0] for k in results})
    for name in workload_names:
        for scheme in schemes:
            campaign = results.get((name, scheme))
            if campaign is None:
                continue
            body.append(
                [
                    name,
                    scheme,
                    f"{campaign.rate(Outcome.CORRECT):.1%}",
                    f"{campaign.rate(Outcome.SDC):.1%}",
                    f"{campaign.rate(Outcome.SEGFAULT):.1%}",
                    f"{campaign.rate(Outcome.CORE_DUMP):.1%}",
                    f"{campaign.rate(Outcome.HANG):.1%}",
                ]
            )
    # averages per scheme
    for scheme in schemes:
        group = [c for (n, s), c in results.items() if s == scheme]
        if not group:
            continue
        k = len(group)
        body.append(
            [
                "average",
                scheme,
                f"{sum(c.rate(Outcome.CORRECT) for c in group)/k:.1%}",
                f"{sum(c.rate(Outcome.SDC) for c in group)/k:.1%}",
                f"{sum(c.rate(Outcome.SEGFAULT) for c in group)/k:.1%}",
                f"{sum(c.rate(Outcome.CORE_DUMP) for c in group)/k:.1%}",
                f"{sum(c.rate(Outcome.HANG) for c in group)/k:.1%}",
            ]
        )
    return render_table(headers, body)


def render_figure9b(
    results: Dict[Tuple[str, str], CampaignResult],
    schemes: Sequence[str] = ("AR20", "AR50", "AR80", "AR100"),
) -> str:
    headers = ["benchmark", "scheme", "false negatives", "FN->Correct",
               "FN->SDC", "caught"]
    body = []
    workload_names = sorted({k[0] for k in results})
    for name in workload_names:
        for scheme in schemes:
            campaign = results.get((name, scheme))
            if campaign is None:
                continue
            body.append(
                [
                    name,
                    scheme,
                    f"{campaign.fn_rate:.1%}",
                    f"{campaign.fn_by_outcome[Outcome.CORRECT]/campaign.trials:.1%}",
                    f"{campaign.fn_by_outcome[Outcome.SDC]/campaign.trials:.1%}",
                    f"{campaign.caught/campaign.trials:.1%}",
                ]
            )
    for scheme in schemes:
        group = [c for (n, s), c in results.items() if s == scheme]
        if not group:
            continue
        k = len(group)
        body.append(
            [
                "average",
                scheme,
                f"{sum(c.fn_rate for c in group)/k:.1%}",
                f"{sum(c.fn_by_outcome[Outcome.CORRECT]/c.trials for c in group)/k:.1%}",
                f"{sum(c.fn_by_outcome[Outcome.SDC]/c.trials for c in group)/k:.1%}",
                f"{sum(c.caught/c.trials for c in group)/k:.1%}",
            ]
        )
    return render_table(headers, body)


def render_table1(rows: Sequence[Table1Row]) -> str:
    headers = ["benchmark", "domain", "computation type of prediction target", "location", "input"]
    body = [
        [r.benchmark, r.domain, r.computation_type, r.location, r.input_description]
        for r in rows
    ]
    return render_table(headers, body)


def render_figure2(rows: Sequence[MotivationRow]) -> str:
    headers = ["benchmark", "Trend", "Top 10", "loop share"]
    body = [
        [r.workload, f"{r.trend_coverage:.1%}", f"{r.topk_coverage:.1%}", f"{r.loop_share:.1%}"]
        for r in rows
    ]
    return render_table(headers, body)


def render_tradeoff(rows: Sequence[TradeoffRow]) -> str:
    headers = ["scheme", "protection rate", "slowdown"]
    body = [
        [r.scheme, f"{r.protection_rate:.2%}", f"{r.slowdown:.2f}x"] for r in rows
    ]
    return render_table(headers, body)
