"""Per-scheme instruction-skip vulnerability table (O6 results).

Where :mod:`repro.eval.fault_campaign` *samples* fault outcomes, this
table *proves* them: for each bounded generated program, the O6
machinery enumerates every single-skip site named by a counting pre-run
and classifies it as detected / masked / sdc / trap / hang under every
protection scheme.  The aggregated rows are the layered-protection
story in numbers — how much of the skip surface each scheme closes, and
what residue only a hang-budget watchdog can catch.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..difftest.generator import generate
from ..difftest.oracles import SKIPMAP_SITE_CAP, SkipMap, skip_site_map
from ..pipeline.registry import protection_pass_schemes

#: Outcome columns, fixed order, matching ``SkipSite.outcome`` labels.
OUTCOMES = ("detected", "masked", "sdc", "trap", "hang")

#: None means the unprotected program; the axis is enumerated from the
#: scheme registry (one entry per protection pass family), so a newly
#: registered family shows up here without touching this module.
DEFAULT_SCHEMES: Tuple[Optional[str], ...] = protection_pass_schemes()


@dataclass
class SkipmapRow:
    """Aggregated skip outcomes of one scheme over a program set."""

    scheme: str
    total_sites: int = 0          # counting pre-run totals, summed
    enumerated: int = 0           # sites actually injected
    exhaustive: bool = True       # every program fully enumerated
    tallies: Dict[str, int] = field(default_factory=dict)

    def add(self, smap: SkipMap) -> None:
        self.total_sites += smap.total_sites
        self.enumerated += len(smap.sites)
        self.exhaustive = self.exhaustive and smap.exhaustive
        for outcome, count in smap.tally().items():
            self.tallies[outcome] = self.tallies.get(outcome, 0) + count

    @property
    def sdc_rate(self) -> float:
        """Fraction of enumerated skip sites ending as silent corruption."""
        if not self.enumerated:
            return 0.0
        return self.tallies.get("sdc", 0) / self.enumerated


@dataclass
class SkipmapTable:
    seed: int
    programs: int
    burst_len: int
    rows: List[SkipmapRow]


def skip_vulnerability_table(
    seed: int = 0,
    programs: int = 3,
    schemes: Sequence[Optional[str]] = DEFAULT_SCHEMES,
    site_cap: int = SKIPMAP_SITE_CAP,
    burst_len: int = 1,
) -> SkipmapTable:
    """Build the per-scheme skip-vulnerability table over generated
    programs ``[0, programs)`` of the stream rooted at *seed*."""
    if programs <= 0:
        raise ValueError("programs must be positive")
    rows = []
    for scheme in schemes:
        row = SkipmapRow(scheme or "unsafe")
        for index in range(programs):
            module = generate(seed, index).module
            row.add(skip_site_map(
                module, scheme, site_cap=site_cap, burst_len=burst_len))
        rows.append(row)
    return SkipmapTable(seed, programs, burst_len, rows)


def render_skipmap(table: SkipmapTable) -> str:
    """Deterministic text rendering of the vulnerability table."""
    kind = ("single-skip" if table.burst_len == 1
            else f"{table.burst_len}-burst")
    lines = [
        f"skipmap: {kind} model checking over {table.programs} generated "
        f"program(s), seed={table.seed}",
        "scheme     sites  " + "".join(f"{o:>10}" for o in OUTCOMES)
        + "   sdc-rate",
    ]
    for row in table.rows:
        cov = "" if row.exhaustive else " (sampled)"
        lines.append(
            f"{row.scheme:<9}{row.enumerated:>7}  "
            + "".join(f"{row.tallies.get(o, 0):>10}" for o in OUTCOMES)
            + f"   {row.sdc_rate:7.1%}{cov}"
        )
    return "\n".join(lines)
