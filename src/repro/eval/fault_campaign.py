"""Statistical fault injection (paper section 7.2, Figures 9a/9b).

Per trial, one SEU is injected at a uniformly random dynamic instruction
*inside the detected loops* (the paper's discipline) and the run is
classified as Correct / SDC / Segfault / Core dump / Hang against the
golden output.  For RSkip schemes the campaign additionally measures
*false negatives*: runs where the detected loop's output region diverged
from golden — a corrupted value slipped through fuzzy validation.
"""
from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import RSkipConfig
from ..core.manager import LoopProfile
from ..obs.events import (
    TRIAL_OUTCOME,
    emit as obs_emit,
    enabled as obs_enabled,
)
from ..runtime.errors import (
    CoreDumpError,
    FaultDetectedError,
    HangError,
    SegfaultError,
    TrapError,
)
from ..pipeline.registry import PAPER_SCHEMES, canonical_scheme, get_scheme
from ..runtime.backend import default_backend, make_executor
from ..runtime.faults import (
    DEFAULT_KIND_WEIGHTS,
    FaultPlan,
    Region,
    random_plan,
)
from ..runtime.outcomes import Outcome, classify_output, outputs_equal
from ..workloads.base import Workload, WorkloadInput, stable_seed
from .schemes import PreparedProgram, fault_region, prepare

#: Budget multiplier over the fault-free step count before declaring Hang.
HANG_FACTOR = 8

#: Lane-slab width of the batch backend's serial trial path.  Parallel
#: engine chunks (DEFAULT_CHUNK trials) map 1:1 to batches; a serial
#: campaign slabs its block into batches of at most this many lanes.
BATCH_LANES = 256


@dataclass
class CampaignResult:
    """Outcome statistics of one (workload, scheme) campaign."""

    workload: str
    scheme: str
    trials: int
    tallies: Counter = field(default_factory=Counter)
    #: detection events without recovery (SWIFT only)
    detected: int = 0
    #: runs whose detected-loop output diverged silently (Figure 9b)
    false_negatives: int = 0
    #: runs in which RSkip's exact validation flagged a mismatch (a fault
    #: was caught and sent through the majority-vote recovery)
    caught: int = 0
    #: final outcome classes of the false-negative runs
    fn_by_outcome: Counter = field(default_factory=Counter)
    #: outcome tallies split by injected fault kind ("value", "skip", ...)
    kind_tallies: Dict[str, Counter] = field(default_factory=dict)
    region_steps: int = 0

    @property
    def protection_rate(self) -> float:
        """Fraction of runs with a fully correct output."""
        return self.tallies[Outcome.CORRECT] / self.trials if self.trials else 0.0

    def rate(self, outcome: Outcome) -> float:
        return self.tallies[outcome] / self.trials if self.trials else 0.0

    @property
    def fn_rate(self) -> float:
        return self.false_negatives / self.trials if self.trials else 0.0

    def confidence_interval(self, outcome: Outcome = Outcome.CORRECT, z: float = 1.96):
        """Wilson score interval for an outcome's rate (the paper runs
        1000 trials; at smaller counts the interval says how much the
        estimate can wobble)."""
        n = self.trials
        if n == 0:
            return (0.0, 1.0)
        p = self.rate(outcome)
        denom = 1.0 + z * z / n
        center = (p + z * z / (2 * n)) / denom
        half = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
        return (max(0.0, center - half), min(1.0, center + half))

    def merge(self, other: "CampaignResult") -> None:
        """Fold another chunk of the same campaign into this result.

        Per-trial seeding makes tallies independent of how trials were
        chunked, so merging chunks in trial order reproduces the serial
        run exactly.
        """
        if (self.workload, self.scheme) != (other.workload, other.scheme):
            raise ValueError(
                f"cannot merge campaign {other.workload}/{other.scheme} "
                f"into {self.workload}/{self.scheme}"
            )
        self.trials += other.trials
        self.tallies.update(other.tallies)
        self.detected += other.detected
        self.false_negatives += other.false_negatives
        self.caught += other.caught
        self.fn_by_outcome.update(other.fn_by_outcome)
        for kind, tallies in other.kind_tallies.items():
            self.kind_tallies.setdefault(kind, Counter()).update(tallies)
        if (self.region_steps and other.region_steps
                and self.region_steps != other.region_steps):
            # chunks of one campaign share a golden counting run; a
            # region-step mismatch means the chunks came from different
            # campaign configurations and their tallies must not be mixed
            raise ValueError(
                f"cannot merge campaign chunks with differing region_steps "
                f"({self.region_steps} != {other.region_steps})")
        if self.region_steps == 0:
            self.region_steps = other.region_steps

    def to_dict(self) -> dict:
        """JSON-serializable form (campaign checkpoints)."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "trials": self.trials,
            "tallies": {o.name: n for o, n in self.tallies.items()},
            "detected": self.detected,
            "false_negatives": self.false_negatives,
            "caught": self.caught,
            "fn_by_outcome": {o.name: n for o, n in self.fn_by_outcome.items()},
            "kind_tallies": {
                kind: {o.name: n for o, n in tallies.items()}
                for kind, tallies in sorted(self.kind_tallies.items())
            },
            "region_steps": self.region_steps,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        result = cls(data["workload"], data["scheme"], data["trials"])
        result.tallies = Counter(
            {Outcome[name]: n for name, n in data["tallies"].items()}
        )
        result.detected = data["detected"]
        result.false_negatives = data["false_negatives"]
        result.caught = data["caught"]
        result.fn_by_outcome = Counter(
            {Outcome[name]: n for name, n in data["fn_by_outcome"].items()}
        )
        # absent in checkpoints written before the skip fault kinds landed
        result.kind_tallies = {
            kind: Counter({Outcome[name]: n for name, n in tallies.items()})
            for kind, tallies in data.get("kind_tallies", {}).items()
        }
        result.region_steps = data["region_steps"]
        return result


def _run_once(
    prepared: PreparedProgram,
    workload: Workload,
    inp: WorkloadInput,
    plan: Optional[FaultPlan],
    region: Optional[Region],
    max_steps: int,
) -> Tuple[Optional[str], List[float], List[float], int, bool]:
    """One execution; returns (trap, output, loop_output, region_steps,
    detected)."""
    memory = workload.fresh_memory(prepared.module, inp)
    # faulted trials (plan set) run on the reference interpreter; the
    # golden and counting passes (plan None) take the compiled backend
    executor = make_executor(
        prepared.module,
        memory=memory,
        max_steps=max_steps,
        fault_plan=plan,
        fault_region=region,
    )
    executor.register_intrinsics(prepared.intrinsics)
    trap: Optional[str] = None
    detected = False
    try:
        executor.run(prepared.main, inp.args)
    except FaultDetectedError:
        detected = True
    except SegfaultError:
        trap = "segfault"
    except HangError:
        trap = "hang"
    except (CoreDumpError, TrapError):
        trap = "coredump"
    except (OverflowError, MemoryError, RecursionError):
        trap = "coredump"

    output: List[float] = []
    loop_output: List[float] = []
    if trap is None:
        output = memory.read_global(*inp.output)
        loop_output = memory.read_global(*inp.loop_output)
    return trap, output, loop_output, executor.region_steps, detected


def _run_once_batch(
    prepared: PreparedProgram,
    workload: Workload,
    inp: WorkloadInput,
    plans: Sequence[FaultPlan],
    region: Optional[Region],
    max_steps: int,
    intrinsics=None,
) -> List[Tuple[Optional[str], List[float], List[float], int, bool]]:
    """A whole trial chunk as one lane-vectorized execution.

    Returns one ``(trap, output, loop_output, region_steps, detected)``
    tuple per plan — element *i* is byte-identical to what
    :func:`_run_once` returns for ``plans[i]`` (difftest oracle O5).
    *intrinsics* is a single shared table or one table per lane; it
    defaults to the prepared program's table.
    """
    from ..runtime.batch import BatchExecutor

    template = workload.fresh_memory(prepared.module, inp)
    executor = BatchExecutor(
        prepared.module, template, len(plans), fault_plans=list(plans),
        fault_region=region, max_steps=max_steps,
        intrinsics=intrinsics if intrinsics is not None else prepared.intrinsics,
    )
    lane_results = executor.run(prepared.main, inp.args)
    rows = []
    for i, res in enumerate(lane_results):
        output: List[float] = []
        loop_output: List[float] = []
        if res.trap is None:
            lane_mem = executor.lane_memory(i)
            output = lane_mem.read_global(*inp.output)
            loop_output = lane_mem.read_global(*inp.loop_output)
        rows.append((res.trap, output, loop_output, res.region_steps,
                     res.detected))
    return rows


@dataclass
class CampaignContext:
    """Fault-free reference state of one (workload, scheme, input) campaign:
    the injection region, golden outputs and the hang budget.  Workers cache
    one per prepared program so trial chunks pay for the golden and counting
    runs once."""

    region: Region
    golden: List[float]
    golden_loop: List[float]
    region_steps: int
    max_steps: int


def campaign_context(
    prepared: PreparedProgram,
    workload: Workload,
    inp: WorkloadInput,
) -> CampaignContext:
    """Golden + counting passes (fault-free) for a campaign on *prepared*.

    The runtime is reset before each pass, so a cached prepared program
    yields byte-identical reference state to a freshly built one.
    """
    region = fault_region(prepared)

    if prepared.runtime is not None:
        prepared.runtime.reset()
    trap, golden, golden_loop, region_steps, _ = _run_once(
        prepared, workload, inp, None, region, max_steps=500_000_000
    )
    if trap is not None:
        raise RuntimeError(
            f"{workload.name}/{prepared.scheme}: fault-free run trapped with {trap}"
        )
    if region_steps <= 0:
        raise RuntimeError(f"{workload.name}/{prepared.scheme}: empty fault region")

    if prepared.runtime is not None:
        prepared.runtime.reset()
    baseline_steps = _fault_free_steps(prepared, workload, inp)
    max_steps = max(baseline_steps * HANG_FACTOR, 100_000)
    return CampaignContext(region, golden, golden_loop, region_steps, max_steps)


def trial_seed(seed: int, workload: str, scheme: str, trial_index: int) -> int:
    """The deterministic seed of one trial.

    Deriving per-trial (rather than drawing from one sequential stream)
    makes the tallies independent of execution order, so parallel and
    serial campaigns agree exactly and interrupted campaigns can resume.
    """
    return stable_seed(seed, workload, scheme, trial_index)


def _tally_trial(
    result: CampaignResult,
    ctx: CampaignContext,
    runtime,
    snapshot,
    trap: Optional[str],
    output: List[float],
    loop_output: List[float],
    detected: bool,
    workload_name: str,
    scheme_label: str,
    trial: int,
    kind: Optional[str] = None,
) -> None:
    """Classify one finished trial into *result*.

    Shared by the serial and batch block runners, so a campaign's
    tallies are independent of which engine executed the trials.
    """
    caught = False
    if runtime is not None:
        if runtime.stats_delta(snapshot).recompute_mismatches > 0:
            caught = True
            result.caught += 1
    false_negative = False
    if detected:
        result.detected += 1
        outcome = Outcome.CORE_DUMP  # aborted execution
    elif trap == "segfault":
        outcome = Outcome.SEGFAULT
    elif trap == "hang":
        outcome = Outcome.HANG
    elif trap == "coredump":
        outcome = Outcome.CORE_DUMP
    else:
        outcome = classify_output(ctx.golden, output)
        if runtime is not None and not outputs_equal(
                ctx.golden_loop, loop_output):
            false_negative = True
            result.false_negatives += 1
            result.fn_by_outcome[outcome] += 1
    result.tallies[outcome] += 1
    if kind is not None:
        result.kind_tallies.setdefault(kind, Counter())[outcome] += 1
    if obs_enabled():
        obs_emit(
            TRIAL_OUTCOME,
            workload=workload_name, scheme=scheme_label, trial=trial,
            outcome=outcome.name, trap=trap, detected=detected,
            caught=caught, false_negative=false_negative,
        )


def run_trial_block(
    prepared: PreparedProgram,
    workload: Workload,
    inp: WorkloadInput,
    ctx: CampaignContext,
    scheme: str,
    seed: int,
    start: int,
    count: int,
    kind_weights: Tuple = DEFAULT_KIND_WEIGHTS,
) -> CampaignResult:
    """Run trials [start, start+count) of a campaign.

    Every trial is isolated: the RSkip runtime is reset to its
    just-constructed state first, so a fault that corrupts predictor state
    (or merely shifts the QoS counters) in one trial cannot bias the next.
    ``caught`` comes from the per-trial stats delta.
    """
    result = CampaignResult(workload.name, prepared.scheme, count)
    result.region_steps = ctx.region_steps
    runtime = prepared.runtime

    for trial in range(start, start + count):
        snapshot = None
        if runtime is not None:
            runtime.reset()
            snapshot = runtime.total_stats()
        rng = random.Random(trial_seed(seed, workload.name, scheme, trial))
        plan = random_plan(rng, ctx.region_steps, kind_weights)
        trap, output, loop_output, _, detected = _run_once(
            prepared, workload, inp, plan, ctx.region, ctx.max_steps
        )
        _tally_trial(
            result, ctx, runtime, snapshot, trap, output, loop_output,
            detected, workload.name, prepared.scheme, trial, kind=plan.kind,
        )
    return result


def run_trial_block_batch(
    prepared: PreparedProgram,
    workload: Workload,
    inp: WorkloadInput,
    ctx: CampaignContext,
    scheme: str,
    seed: int,
    start: int,
    count: int,
    config: Optional[RSkipConfig] = None,
    profiles: Optional[Dict[str, LoopProfile]] = None,
    lanes: int = BATCH_LANES,
    kind_weights: Tuple = DEFAULT_KIND_WEIGHTS,
) -> CampaignResult:
    """:func:`run_trial_block` on the lane-vectorized batch engine.

    Trials run in slabs of at most *lanes* lanes, each slab one
    :class:`~repro.runtime.batch.BatchExecutor` run; per-trial seeding
    makes the tallies byte-identical to the serial block.  Stateless
    schemes share the chunk's prepared program across lanes; runtime-
    stateful schemes (RSkip) prepare one program per lane so trials stay
    isolated and ``caught`` still comes from a per-trial stats delta.
    """
    import gc

    result = CampaignResult(workload.name, prepared.scheme, count)
    result.region_steps = ctx.region_steps
    stateful = prepared.runtime is not None

    for chunk_start in range(0, count, lanes):
        n = min(lanes, count - chunk_start)
        plans = []
        for trial in range(start + chunk_start, start + chunk_start + n):
            rng = random.Random(trial_seed(seed, workload.name, scheme, trial))
            plans.append(random_plan(rng, ctx.region_steps, kind_weights))
        if stateful:
            preps = [prepare(workload, scheme, config, profiles)
                     for _ in range(n)]
            snapshots = []
            for p in preps:
                p.runtime.reset()
                snapshots.append(p.runtime.total_stats())
            tables = [p.intrinsics for p in preps]
            slab_prepared = preps[0]
        else:
            preps = None
            snapshots = [None] * n
            tables = prepared.intrinsics
            slab_prepared = prepared
        # lane execution allocates heavily but briefly; keep the cyclic
        # collector out of the hot loop
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            rows = _run_once_batch(
                slab_prepared, workload, inp, plans, ctx.region,
                ctx.max_steps, intrinsics=tables,
            )
        finally:
            if gc_was_enabled:
                gc.enable()
        for i, (trap, output, loop_output, _, detected) in enumerate(rows):
            _tally_trial(
                result, ctx,
                preps[i].runtime if preps is not None else None,
                snapshots[i], trap, output, loop_output, detected,
                workload.name, prepared.scheme, start + chunk_start + i,
                kind=plans[i].kind,
            )
    return result


def run_campaign(
    workload: Workload,
    scheme: str,
    trials: int,
    seed: int = 0,
    scale: float = 0.45,
    config: Optional[RSkipConfig] = None,
    profiles: Optional[Dict[str, LoopProfile]] = None,
    inp: Optional[WorkloadInput] = None,
    prepared: Optional[PreparedProgram] = None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    progress: Optional[Callable[[int, int, float], None]] = None,
    kind_weights: Tuple = DEFAULT_KIND_WEIGHTS,
) -> CampaignResult:
    """Inject *trials* single faults into one workload under one scheme.

    With ``jobs > 1`` (or a *checkpoint* path) the campaign runs on the
    parallel engine (`repro.eval.campaign_engine`); per-trial seeding
    guarantees the tallies match the serial run exactly.  A reused
    *prepared* program gives the same result as a fresh one: the runtime
    is reset before every execution.

    *kind_weights* selects the fault-kind mix (see
    :data:`repro.runtime.faults.DEFAULT_KIND_WEIGHTS`) and works on
    every path — serial, batch and parallel (the checkpoint params key
    covers the mix, so a resume under a different mix fails loudly).
    """
    # canonicalize up front: the scheme spelling feeds per-trial seeds, so
    # "swift-r" and "SWIFT-R" must tally identically
    scheme = canonical_scheme(scheme, config)
    if jobs > 1 or checkpoint is not None:
        from .campaign_engine import run_campaign_parallel

        return run_campaign_parallel(
            workload, scheme, trials, seed=seed, scale=scale, config=config,
            profiles=profiles, inp=inp, jobs=jobs, checkpoint=checkpoint,
            resume=resume, progress=progress, kind_weights=kind_weights,
        )
    if inp is None:
        inp = workload.test_inputs(1, seed=seed + 17, scale=scale)[0]
    if prepared is None:
        prepared = prepare(workload, scheme, config, profiles)
    ctx = campaign_context(prepared, workload, inp)
    if default_backend() == "batch":
        return run_trial_block_batch(
            prepared, workload, inp, ctx, scheme, seed, 0, trials,
            config=config, profiles=profiles, kind_weights=kind_weights,
        )
    return run_trial_block(prepared, workload, inp, ctx, scheme, seed, 0, trials,
                           kind_weights=kind_weights)


def _fault_free_steps(
    prepared: PreparedProgram, workload: Workload, inp: WorkloadInput
) -> int:
    memory = workload.fresh_memory(prepared.module, inp)
    executor = make_executor(prepared.module, memory=memory)
    executor.register_intrinsics(prepared.intrinsics)
    executor.run(prepared.main, inp.args)
    return executor.steps


def figure9(
    workloads: Sequence[Workload],
    schemes: Sequence[str] = PAPER_SCHEMES,
    trials: int = 100,
    seed: int = 0,
    scale: float = 0.45,
    config: Optional[RSkipConfig] = None,
    profile_source=None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    progress: Optional[Callable[[int, int, float], None]] = None,
) -> Dict[Tuple[str, str], CampaignResult]:
    """The full Figure 9 campaign: every workload under every scheme.

    ``profile_source(workload, ar) -> profiles`` supplies trained profiles
    for RSkip schemes (`repro.eval.harness.Harness.profiles_for`).

    ``jobs > 1`` shards (workload, scheme, trial-chunk) work units over a
    process pool; *checkpoint* names a JSON file partial tallies are saved
    to, and ``resume=True`` skips the chunks it already holds.  Thanks to
    per-trial seeding the tallies are identical for every *jobs* value.
    """
    groups = []
    for workload in workloads:
        for scheme in schemes:
            descriptor = get_scheme(scheme, config)
            profiles = None
            if descriptor.needs_training and profile_source is not None:
                profiles = profile_source(workload, descriptor.acceptable_range)
            groups.append((workload, descriptor.name, profiles))

    if jobs > 1 or checkpoint is not None:
        from .campaign_engine import run_campaigns

        return run_campaigns(
            groups, trials=trials, seed=seed, scale=scale, config=config,
            jobs=jobs, checkpoint=checkpoint, resume=resume, progress=progress,
        )

    results: Dict[Tuple[str, str], CampaignResult] = {}
    for workload, scheme, profiles in groups:
        results[(workload.name, scheme)] = run_campaign(
            workload, scheme, trials, seed=seed, scale=scale,
            config=config, profiles=profiles,
        )
    return results
