"""Statistical fault injection (paper section 7.2, Figures 9a/9b).

Per trial, one SEU is injected at a uniformly random dynamic instruction
*inside the detected loops* (the paper's discipline) and the run is
classified as Correct / SDC / Segfault / Core dump / Hang against the
golden output.  For RSkip schemes the campaign additionally measures
*false negatives*: runs where the detected loop's output region diverged
from golden — a corrupted value slipped through fuzzy validation.
"""
from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import RSkipConfig
from ..core.manager import LoopProfile
from ..runtime.errors import (
    CoreDumpError,
    FaultDetectedError,
    HangError,
    SegfaultError,
    TrapError,
)
from ..runtime.faults import FaultPlan, Region, random_plan
from ..runtime.interpreter import Interpreter
from ..runtime.outcomes import Outcome, classify_output, outputs_equal
from ..workloads.base import Workload, WorkloadInput, stable_seed
from .schemes import PreparedProgram, fault_region, prepare

#: Budget multiplier over the fault-free step count before declaring Hang.
HANG_FACTOR = 8


@dataclass
class CampaignResult:
    """Outcome statistics of one (workload, scheme) campaign."""

    workload: str
    scheme: str
    trials: int
    tallies: Counter = field(default_factory=Counter)
    #: detection events without recovery (SWIFT only)
    detected: int = 0
    #: runs whose detected-loop output diverged silently (Figure 9b)
    false_negatives: int = 0
    #: runs in which RSkip's exact validation flagged a mismatch (a fault
    #: was caught and sent through the majority-vote recovery)
    caught: int = 0
    #: final outcome classes of the false-negative runs
    fn_by_outcome: Counter = field(default_factory=Counter)
    region_steps: int = 0

    @property
    def protection_rate(self) -> float:
        """Fraction of runs with a fully correct output."""
        return self.tallies[Outcome.CORRECT] / self.trials if self.trials else 0.0

    def rate(self, outcome: Outcome) -> float:
        return self.tallies[outcome] / self.trials if self.trials else 0.0

    @property
    def fn_rate(self) -> float:
        return self.false_negatives / self.trials if self.trials else 0.0

    def confidence_interval(self, outcome: Outcome = Outcome.CORRECT, z: float = 1.96):
        """Wilson score interval for an outcome's rate (the paper runs
        1000 trials; at smaller counts the interval says how much the
        estimate can wobble)."""
        n = self.trials
        if n == 0:
            return (0.0, 1.0)
        p = self.rate(outcome)
        denom = 1.0 + z * z / n
        center = (p + z * z / (2 * n)) / denom
        half = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
        return (max(0.0, center - half), min(1.0, center + half))


def _run_once(
    prepared: PreparedProgram,
    workload: Workload,
    inp: WorkloadInput,
    plan: Optional[FaultPlan],
    region: Optional[Region],
    max_steps: int,
) -> Tuple[Optional[str], List[float], List[float], int, bool]:
    """One execution; returns (trap, output, loop_output, region_steps,
    detected)."""
    memory = workload.fresh_memory(prepared.module, inp)
    interp = Interpreter(
        prepared.module,
        memory=memory,
        max_steps=max_steps,
        fault_plan=plan,
        fault_region=region,
    )
    interp.register_intrinsics(prepared.intrinsics)
    trap: Optional[str] = None
    detected = False
    try:
        interp.run(prepared.main, inp.args)
    except FaultDetectedError:
        detected = True
    except SegfaultError:
        trap = "segfault"
    except HangError:
        trap = "hang"
    except (CoreDumpError, TrapError):
        trap = "coredump"
    except (OverflowError, MemoryError, RecursionError):
        trap = "coredump"

    output: List[float] = []
    loop_output: List[float] = []
    if trap is None:
        output = memory.read_global(*inp.output)
        loop_output = memory.read_global(*inp.loop_output)
    return trap, output, loop_output, interp.region_steps, detected


def run_campaign(
    workload: Workload,
    scheme: str,
    trials: int,
    seed: int = 0,
    scale: float = 0.45,
    config: Optional[RSkipConfig] = None,
    profiles: Optional[Dict[str, LoopProfile]] = None,
    inp: Optional[WorkloadInput] = None,
) -> CampaignResult:
    """Inject *trials* single faults into one workload under one scheme."""
    rng = random.Random(stable_seed(seed, workload.name, scheme))
    if inp is None:
        inp = workload.test_inputs(1, seed=seed + 17, scale=scale)[0]

    prepared = prepare(workload, scheme, config, profiles)
    region = fault_region(prepared)

    # golden + counting pass (fault-free)
    trap, golden, golden_loop, region_steps, _ = _run_once(
        prepared, workload, inp, None, region, max_steps=500_000_000
    )
    if trap is not None:
        raise RuntimeError(
            f"{workload.name}/{scheme}: fault-free run trapped with {trap}"
        )
    if region_steps <= 0:
        raise RuntimeError(f"{workload.name}/{scheme}: empty fault region")

    baseline_steps = _fault_free_steps(prepared, workload, inp)
    max_steps = max(baseline_steps * HANG_FACTOR, 100_000)

    result = CampaignResult(workload.name, prepared.scheme, trials)
    result.region_steps = region_steps
    is_rskip = prepared.application is not None

    for _ in range(trials):
        mismatches_before = 0
        if is_rskip:
            mismatches_before = prepared.runtime.total_stats().recompute_mismatches
        plan = random_plan(rng, region_steps)
        trap, output, loop_output, _, detected = _run_once(
            prepared, workload, inp, plan, region, max_steps
        )
        if is_rskip:
            after = prepared.runtime.total_stats().recompute_mismatches
            if after > mismatches_before:
                result.caught += 1
        if detected:
            result.detected += 1
            result.tallies[Outcome.CORE_DUMP] += 1  # aborted execution
            continue
        if trap == "segfault":
            result.tallies[Outcome.SEGFAULT] += 1
            continue
        if trap == "hang":
            result.tallies[Outcome.HANG] += 1
            continue
        if trap == "coredump":
            result.tallies[Outcome.CORE_DUMP] += 1
            continue
        outcome = classify_output(golden, output)
        result.tallies[outcome] += 1
        if is_rskip and not outputs_equal(golden_loop, loop_output):
            result.false_negatives += 1
            result.fn_by_outcome[outcome] += 1
    return result


def _fault_free_steps(
    prepared: PreparedProgram, workload: Workload, inp: WorkloadInput
) -> int:
    memory = workload.fresh_memory(prepared.module, inp)
    interp = Interpreter(prepared.module, memory=memory)
    interp.register_intrinsics(prepared.intrinsics)
    interp.run(prepared.main, inp.args)
    return interp.steps


def figure9(
    workloads: Sequence[Workload],
    schemes: Sequence[str] = ("UNSAFE", "SWIFT-R", "AR20", "AR50", "AR80", "AR100"),
    trials: int = 100,
    seed: int = 0,
    scale: float = 0.45,
    config: Optional[RSkipConfig] = None,
    profile_source=None,
) -> Dict[Tuple[str, str], CampaignResult]:
    """The full Figure 9 campaign: every workload under every scheme.

    ``profile_source(workload, ar) -> profiles`` supplies trained profiles
    for RSkip schemes (`repro.eval.harness.Harness.profiles_for`).
    """
    results: Dict[Tuple[str, str], CampaignResult] = {}
    for workload in workloads:
        for scheme in schemes:
            profiles = None
            if scheme.startswith("AR") and profile_source is not None:
                profiles = profile_source(workload, int(scheme[2:]) / 100.0)
            results[(workload.name, scheme)] = run_campaign(
                workload, scheme, trials, seed=seed, scale=scale,
                config=config, profiles=profiles,
            )
    return results
