"""Parallel, resumable fault-injection campaigns.

The SFI study (Figure 9) is the slowest experiment in the repo: every
(workload, scheme) pair runs hundreds of interpreted trials.  Trials are
statistically independent by construction — each one derives its own seed
via ``stable_seed(seed, workload, scheme, trial_index)`` and runs against
a freshly reset runtime — so the campaign decomposes into
``(workload, scheme, trial-chunk)`` work units that can execute anywhere
in any order and still produce byte-identical tallies.

This engine shards those units over a ``ProcessPoolExecutor``:

* each worker caches the prepared program and its fault-free golden /
  counting runs per (workload, scheme), so a chunk only pays for its own
  trials;
* every finished chunk is checkpointed to a JSON file (written
  atomically), and ``resume=True`` skips the chunks the file already
  holds — an interrupted campaign continues to the same final result;
* a ``progress(done_trials, total_trials, elapsed_seconds)`` callback
  reports completion for ETA display.

``jobs <= 1`` runs the same chunked schedule inline (no pool), which
keeps checkpoint/resume available without process overhead.
"""
from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import RSkipConfig
from ..core.manager import LoopProfile
from ..obs.events import install_sink, remove_sink
from ..obs.manifest import RunManifest, run_id_for
from ..obs.sinks import JsonlSink, merge_traces
from ..pipeline.registry import canonical_scheme, get_scheme
from ..runtime.faults import DEFAULT_KIND_WEIGHTS
from ..workloads.base import Workload, WorkloadInput
from .fault_campaign import (
    CampaignResult,
    campaign_context,
    run_trial_block,
    run_trial_block_batch,
)
from .schemes import prepare

#: Trials per work unit.  Small enough that campaigns load-balance and
#: checkpoint at a useful granularity, large enough that a unit amortizes
#: its worker's cached golden run.
DEFAULT_CHUNK = 25

#: Version 2 added the fault-kind mix to the checkpoint params key: a v1
#: checkpoint written under default SEU weights would otherwise resume
#: silently against an adversarial kind mix.  Version 3 added per-scheme
#: descriptor hashes (which cover the scheme's detection/recovery
#: protocol): a checkpoint written before a protocol definition changed
#: must not silently resume after it — the stored tallies were produced
#: under different detection/recovery semantics.
CHECKPOINT_VERSION = 3

ProgressFn = Callable[[int, int, float], None]


@dataclass(frozen=True)
class CampaignTask:
    """One (workload, scheme, trial-chunk) work unit."""

    workload: str
    scheme: str
    start: int
    count: int
    seed: int
    scale: float

    @property
    def key(self) -> str:
        return f"{self.workload}|{self.scheme}|{self.start}|{self.count}"


# -- worker side ------------------------------------------------------------
#: (workload, scheme, seed, scale, config) -> (workload, prepared, inp, ctx).
#: One entry per campaign a worker process has touched; the prepared
#: program is reused across that campaign's chunks (trials reset it).
_WORKER_CACHE: Dict[Tuple, Tuple] = {}


def _worker_campaign(
    task: CampaignTask,
    workload: Workload,
    config: Optional[RSkipConfig],
    profiles: Optional[Dict[str, LoopProfile]],
    inp: Optional[WorkloadInput],
):
    key = (task.workload, task.scheme, task.seed, task.scale, config)
    entry = _WORKER_CACHE.get(key)
    if entry is None:
        if inp is None:
            inp = workload.test_inputs(1, seed=task.seed + 17, scale=task.scale)[0]
        prepared = prepare(workload, task.scheme, config, profiles)
        ctx = campaign_context(prepared, workload, inp)
        entry = (workload, prepared, inp, ctx)
        _WORKER_CACHE[key] = entry
    return entry


def _run_chunk(
    task: CampaignTask,
    workload: Workload,
    config: Optional[RSkipConfig],
    profiles: Optional[Dict[str, LoopProfile]],
    inp: Optional[WorkloadInput],
    kind_weights: Tuple = DEFAULT_KIND_WEIGHTS,
    trace_path: Optional[str] = None,
    trace_run: str = "",
) -> Tuple[str, dict]:
    """Execute one work unit; returns (task key, serialized chunk result).

    With *trace_path* set, the chunk's trials run under a JSONL sink
    writing that shard file — owned exclusively by this call, so no two
    workers ever interleave writes into a shared fd.  The sink goes up
    *after* the cached golden/counting runs (which are per-worker warmup,
    not per-chunk work), keeping shard contents deterministic for any
    worker count.  The chunk's wall-clock and module fingerprint ride
    back on the result dict for the parent's run manifest.
    """
    workload, prepared, inp, ctx = _worker_campaign(
        task, workload, config, profiles, inp
    )
    from ..runtime.backend import default_backend

    if default_backend() == "batch":
        # one engine chunk maps 1:1 to one lane batch
        def _block():
            return run_trial_block_batch(
                prepared, workload, inp, ctx, task.scheme, task.seed,
                task.start, task.count, config=config, profiles=profiles,
                kind_weights=kind_weights,
            )
    else:
        def _block():
            return run_trial_block(
                prepared, workload, inp, ctx, task.scheme, task.seed,
                task.start, task.count, kind_weights=kind_weights,
            )
    if trace_path is None:
        return task.key, _block().to_dict()

    from ..runtime.compiler import module_fingerprint

    sink = JsonlSink(trace_path)
    install_sink(sink, run_id=trace_run)
    t0 = time.perf_counter()
    try:
        result = _block()
    finally:
        remove_sink()
        sink.close()
    data = result.to_dict()
    data["elapsed_ms"] = (time.perf_counter() - t0) * 1000.0
    data["fingerprint"] = module_fingerprint(prepared.module)
    return task.key, data


# -- checkpointing ----------------------------------------------------------
class CheckpointBusyError(RuntimeError):
    """Another live campaign owns this checkpoint file."""


#: checkpoint paths locked by *this* process (serve runs several campaign
#: jobs as threads of one process, so a pid-only file lock cannot tell two
#: of our own threads apart)
_HELD_LOCKS: set = set()
_HELD_LOCKS_GUARD = threading.Lock()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class CheckpointLock:
    """Exclusive ownership of a checkpoint path across processes/threads.

    Two campaigns checkpointing to the same file would silently
    interleave chunk dicts written under (potentially) different
    parameters; instead the loser errors cleanly with
    :class:`CheckpointBusyError`.  Protocol: a sibling ``<path>.lock``
    file created with ``O_EXCL`` holding the owner pid.  A lock whose pid
    is dead — or is this very process without an in-process registration,
    i.e. a previous incarnation that was SIGKILLed — is stale and is
    stolen, which is what lets a restarted serve daemon resume the jobs
    its predecessor left behind.
    """

    def __init__(self, checkpoint_path: str):
        self.checkpoint = os.path.abspath(checkpoint_path)
        self.path = self.checkpoint + ".lock"
        self._held = False

    def acquire(self) -> "CheckpointLock":
        with _HELD_LOCKS_GUARD:
            if self.checkpoint in _HELD_LOCKS:
                raise CheckpointBusyError(
                    f"{self.checkpoint}: already locked by another campaign "
                    f"in this process"
                )
            _HELD_LOCKS.add(self.checkpoint)
        try:
            self._acquire_file()
        except BaseException:
            with _HELD_LOCKS_GUARD:
                _HELD_LOCKS.discard(self.checkpoint)
            raise
        self._held = True
        return self

    def _acquire_file(self) -> None:
        payload = json.dumps({"pid": os.getpid(), "at": time.time()})
        for _ in range(16):
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                owner = self._owner_pid()
                if owner is not None and owner != os.getpid() and _pid_alive(owner):
                    raise CheckpointBusyError(
                        f"{self.checkpoint}: checkpoint is locked by live "
                        f"campaign pid {owner} ({self.path}); two campaigns "
                        f"must not share a checkpoint file"
                    )
                # stale (dead owner, our own crashed predecessor, or
                # unreadable junk): steal it and retry — a concurrent
                # stealer's unlink racing ours is harmless
                try:
                    os.unlink(self.path)
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            return
        raise CheckpointBusyError(
            f"{self.checkpoint}: could not acquire {self.path}"
        )

    def _owner_pid(self) -> Optional[int]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return int(json.load(handle).get("pid"))
        except (OSError, ValueError, TypeError):
            return None

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass
        with _HELD_LOCKS_GUARD:
            _HELD_LOCKS.discard(self.checkpoint)

    def __enter__(self) -> "CheckpointLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


def _params_key(trials: int, seed: int, scale: float,
                config: Optional[RSkipConfig],
                kind_weights: Tuple = DEFAULT_KIND_WEIGHTS,
                scheme_hashes: Optional[Dict[str, str]] = None) -> str:
    """The checkpoint compatibility key.  *scheme_hashes* maps each
    campaigned canonical scheme to its descriptor hash, which covers the
    scheme's :class:`~repro.pipeline.registry.Protocol` — so a resume
    across a protocol-definition change is rejected instead of merging
    tallies produced under different detection/recovery semantics."""
    return json.dumps(
        {"trials": trials, "seed": seed, "scale": scale, "config": repr(config),
         "kind_weights": [[str(k), float(w)] for k, w in kind_weights],
         "schemes": dict(sorted((scheme_hashes or {}).items()))},
        sort_keys=True,
    )


def _load_checkpoint(path: str, params_key: str) -> Dict[str, dict]:
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"{path}: unsupported checkpoint version "
            f"{data.get('version')!r} (expected {CHECKPOINT_VERSION}; "
            f"older versions predate kind-weight/protocol keying — delete "
            f"the file and re-run)"
        )
    if data.get("params") != params_key:
        raise ValueError(
            f"{path}: checkpoint was written by a campaign with different "
            f"parameters; delete it or match "
            f"trials/seed/scale/config/kind_weights and the campaigned "
            f"schemes' descriptor (protocol) definitions"
        )
    return dict(data.get("chunks", {}))


def _save_checkpoint(path: str, params_key: str, chunks: Dict[str, dict]) -> None:
    payload = {
        "version": CHECKPOINT_VERSION,
        "params": params_key,
        "chunks": chunks,
    }
    # write-then-rename: an interrupt mid-save never corrupts the file
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".campaign-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


# -- the engine -------------------------------------------------------------
def map_chunks(
    fn: Callable,
    arg_tuples: Sequence[Tuple],
    jobs: int = 1,
    on_result: Optional[Callable[[int, object], None]] = None,
) -> List:
    """Run ``fn(*args)`` for every tuple, inline or over a process pool.

    The deterministic backbone shared by the SFI engine and the difftest
    runner: work units are independent, ``on_result(index, result)`` fires
    as units finish (completion order under a pool — consumers must not
    depend on it), and the returned list is always in submission order, so
    downstream merges are byte-identical for any *jobs*.  With ``jobs > 1``
    *fn* must be a picklable module-level function.
    """
    results: List = [None] * len(arg_tuples)
    if jobs <= 1:
        for index, args in enumerate(arg_tuples):
            result = fn(*args)
            results[index] = result
            if on_result is not None:
                on_result(index, result)
        return results
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(fn, *args): index
            for index, args in enumerate(arg_tuples)
        }
        remaining = set(futures)
        while remaining:
            finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in finished:
                index = futures[future]
                result = future.result()
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
    return results


def run_campaigns(
    groups: Sequence[Tuple[Workload, str, Optional[Dict[str, LoopProfile]]]],
    trials: int,
    seed: int = 0,
    scale: float = 0.45,
    config: Optional[RSkipConfig] = None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    chunk: int = DEFAULT_CHUNK,
    inp: Optional[WorkloadInput] = None,
    trace_out: Optional[str] = None,
    kind_weights: Tuple = DEFAULT_KIND_WEIGHTS,
) -> Dict[Tuple[str, str], CampaignResult]:
    """Run a batch of campaigns — *groups* is (workload, scheme, profiles) —
    sharded into trial chunks, optionally over a process pool.

    Returns ``{(workload.name, scheme): CampaignResult}`` with tallies
    identical to the serial run at the same seed, for any *jobs*/*chunk*.

    With *trace_out*, every work unit writes its observability events to
    its own shard file under ``<trace_out>.shards/`` and the parent
    merges them in task order into *trace_out* plus a run manifest —
    merged traces are byte-identical for any *jobs*/*chunk* (shard files
    are kept so a resumed campaign can still merge a complete trace).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    chunk = max(1, int(chunk))
    # normalize so every spelling of the same mix produces the same
    # params key and worker args
    kind_weights = tuple((str(k), float(w)) for k, w in kind_weights)
    _WORKER_CACHE.clear()

    # scheme spellings feed per-trial seeds, shard names and result keys:
    # canonicalize once so every alias produces byte-identical campaigns
    groups = [
        (workload, canonical_scheme(scheme, config), profiles)
        for workload, scheme, profiles in groups
    ]

    workload_by_name = {w.name: w for w, _, _ in groups}
    profiles_by_key: Dict[Tuple[str, str], Optional[Dict[str, LoopProfile]]] = {
        (w.name, s): p for w, s, p in groups
    }

    tasks: List[CampaignTask] = []
    for workload, scheme, _profiles in groups:
        for start in range(0, trials, chunk):
            tasks.append(CampaignTask(
                workload.name, scheme, start, min(chunk, trials - start),
                seed, scale,
            ))

    scheme_hashes = {
        scheme: get_scheme(scheme, config).descriptor_hash()
        for _, scheme, _ in groups
    }
    params_key = _params_key(
        trials, seed, scale, config, kind_weights, scheme_hashes)
    trace_run = ""
    shard_paths: Dict[str, str] = {}
    if trace_out is not None:
        # derived, not random: shards across any worker count (and
        # re-runs at the same parameters) stamp the same run id
        trace_run = run_id_for(
            "campaign", params_key,
            sorted((w.name, s) for w, s, _ in groups),
        )
        shard_dir = trace_out + ".shards"
        os.makedirs(shard_dir, exist_ok=True)
        for task in tasks:
            shard_paths[task.key] = os.path.join(
                shard_dir, task.key.replace("|", "_") + ".jsonl"
            )

    # a checkpointed campaign owns its file exclusively: a second campaign
    # pointed at the same path errors cleanly instead of interleaving
    lock = CheckpointLock(checkpoint).acquire() if checkpoint is not None else None
    try:
        chunks: Dict[str, dict] = {}
        if checkpoint is not None and resume:
            chunks = _load_checkpoint(checkpoint, params_key)
        pending = [t for t in tasks if t.key not in chunks]

        total_trials = trials * len(groups)
        done_trials = total_trials - sum(t.count for t in pending)
        started = time.monotonic()
        if progress is not None:
            progress(done_trials, total_trials, 0.0)

        def record(key: str, chunk_dict: dict, count: int) -> None:
            nonlocal done_trials
            chunks[key] = chunk_dict
            done_trials += count
            if checkpoint is not None:
                _save_checkpoint(checkpoint, params_key, chunks)
            if progress is not None:
                progress(done_trials, total_trials, time.monotonic() - started)

        def task_args(task: CampaignTask):
            args = (
                task,
                workload_by_name[task.workload],
                config,
                profiles_by_key[(task.workload, task.scheme)],
                inp,
                kind_weights,
            )
            if trace_out is not None:
                args += (shard_paths[task.key], trace_run)
            return args

        map_chunks(
            _run_chunk,
            [task_args(task) for task in pending],
            jobs=jobs,
            on_result=lambda i, result: record(result[0], result[1],
                                               pending[i].count),
        )
    finally:
        if lock is not None:
            lock.release()

    # assemble per-campaign results by merging chunks in trial order, so
    # the outcome of a parallel run never depends on completion order
    results: Dict[Tuple[str, str], CampaignResult] = {}
    for workload, scheme, _profiles in groups:
        merged: Optional[CampaignResult] = None
        for task in sorted(
            (t for t in tasks
             if t.workload == workload.name and t.scheme == scheme),
            key=lambda t: t.start,
        ):
            part = CampaignResult.from_dict(chunks[task.key])
            if merged is None:
                merged = part
            else:
                merged.merge(part)
        assert merged is not None
        results[(workload.name, scheme)] = merged

    if trace_out is not None:
        _merge_campaign_trace(
            trace_out, trace_run, groups, tasks, chunks, results,
            trials=trials, seed=seed, scale=scale, jobs=jobs,
            chunk=chunk, config=config,
        )
    return results


def _merge_campaign_trace(
    trace_out: str,
    trace_run: str,
    groups,
    tasks: Sequence[CampaignTask],
    chunks: Dict[str, dict],
    results: Dict[Tuple[str, str], CampaignResult],
    *,
    trials: int,
    seed: int,
    scale: float,
    jobs: int,
    chunk: int,
    config: Optional[RSkipConfig],
) -> None:
    """Merge per-chunk shard files into *trace_out* and write its manifest.

    Shards are concatenated in task order — groups as given, chunks by
    trial start — never completion order, so the merged trace is
    byte-identical for any *jobs*.  A missing shard means the chunk came
    from a checkpoint written by an untraced (or cleaned-up) run; the
    merge fails loudly rather than produce a silently partial trace.
    """
    from ..runtime.backend import default_backend

    shard_dir = trace_out + ".shards"
    ordered: List[CampaignTask] = []
    for workload, scheme, _profiles in groups:
        ordered.extend(sorted(
            (t for t in tasks
             if t.workload == workload.name and t.scheme == scheme),
            key=lambda t: t.start,
        ))
    merged_events = merge_traces(
        [os.path.join(shard_dir, t.key.replace("|", "_") + ".jsonl")
         for t in ordered],
        trace_out,
        missing_hint=(
            "chunk was restored from a checkpoint that predates tracing; "
            "delete the checkpoint file and re-run with --trace-out"
        ),
    )

    spans = [
        (f"shard:{t.key}", chunks[t.key]["elapsed_ms"])
        for t in ordered if "elapsed_ms" in chunks[t.key]
    ]
    fingerprints: Dict[str, str] = {}
    for t in ordered:
        label = f"{t.workload}|{t.scheme}"
        print_ = chunks[t.key].get("fingerprint")
        if print_ and label not in fingerprints:
            fingerprints[label] = print_
    totals: Dict[str, int] = {"trials": 0, "caught": 0, "detected": 0,
                              "false_negatives": 0}
    for result in results.values():
        totals["trials"] += result.trials
        totals["caught"] += result.caught
        totals["detected"] += result.detected
        totals["false_negatives"] += result.false_negatives
        for outcome, count in result.tallies.items():
            name = getattr(outcome, "name", str(outcome))
            totals[name] = totals.get(name, 0) + count

    RunManifest(
        run=trace_run,
        command="campaign",
        backend=default_backend(),
        config=repr(config),
        params={"trials": trials, "seed": seed, "scale": scale,
                "jobs": jobs, "chunk": chunk,
                "groups": [f"{w.name}|{s}" for w, s, _ in groups]},
        fingerprints=fingerprints,
        totals=totals,
        events=merged_events,
        spans=spans,
    ).write(trace_out)


def run_campaign_parallel(
    workload: Workload,
    scheme: str,
    trials: int,
    seed: int = 0,
    scale: float = 0.45,
    config: Optional[RSkipConfig] = None,
    profiles: Optional[Dict[str, LoopProfile]] = None,
    inp: Optional[WorkloadInput] = None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    chunk: int = DEFAULT_CHUNK,
    trace_out: Optional[str] = None,
    kind_weights: Tuple = DEFAULT_KIND_WEIGHTS,
) -> CampaignResult:
    """One (workload, scheme) campaign on the parallel engine."""
    results = run_campaigns(
        [(workload, scheme, profiles)], trials=trials, seed=seed, scale=scale,
        config=config, jobs=jobs, checkpoint=checkpoint, resume=resume,
        progress=progress, chunk=chunk, inp=inp, trace_out=trace_out,
        kind_weights=kind_weights,
    )
    return results[(workload.name, canonical_scheme(scheme, config))]


def eta_printer(label: str = "campaign") -> ProgressFn:
    """A progress callback that renders completion and ETA on one line."""

    def report(done: int, total: int, elapsed: float) -> None:
        if done <= 0 or total <= 0:
            return
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = (total - done) / rate if rate > 0 else 0.0
        end = "\n" if done >= total else ""
        print(
            f"\r   {label}: {done}/{total} trials "
            f"({done / total:5.1%}), {elapsed:6.1f}s elapsed, "
            f"ETA {remaining:6.1f}s ",
            end=end, flush=True,
        )

    return report
