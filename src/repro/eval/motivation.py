"""The Figure 2 motivation study.

"Proportion of dynamic instructions whose computation outputs can be
estimated": for each benchmark we record the detected loops' output
streams and measure what share of them is predictable by

* **Trend** — the element's relative slope change against its neighbours
  stays under a threshold (it lies on a local trend), and
* **Top 10** — the element's value is (approximately) one of the ten most
  frequent output values,

then weight by the fraction of the program's dynamic instructions spent
producing those outputs.
"""
from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence

from ..core.training import slope_changes_of
from ..runtime.backend import make_executor
from ..workloads.base import Workload
from .harness import Harness
from .schemes import fault_region, prepare

TREND_THRESHOLD = 0.5
TOP_K = 10
#: two values are "the same output" when they agree to this relative tolerance
VALUE_TOLERANCE = 0.05


@dataclass
class MotivationRow:
    workload: str
    trend_coverage: float
    topk_coverage: float
    loop_share: float
    elements: int


def trend_predictable_share(values: Sequence[float], threshold: float = TREND_THRESHOLD) -> float:
    """Fraction of outputs lying on a local trend."""
    if len(values) < 3:
        return 0.0
    changes = slope_changes_of(values)
    on_trend = sum(1 for c in changes if c <= threshold)
    return on_trend / len(changes)


def topk_predictable_share(
    values: Sequence[float],
    k: int = TOP_K,
    tolerance: float = VALUE_TOLERANCE,
) -> float:
    """Fraction of outputs equal (within tolerance) to a top-k frequent value."""
    if not values:
        return 0.0
    quantized = Counter()
    for v in values:
        quantized[_quantize(v, tolerance)] += 1
    top = {key for key, _ in quantized.most_common(k)}
    hits = sum(1 for v in values if _quantize(v, tolerance) in top)
    return hits / len(values)


def _quantize(v: float, tolerance: float):
    if v == 0 or v != v:
        return (0, 0)
    import math

    if not math.isfinite(v):
        return (0, 1)
    exp = math.floor(math.log10(abs(v)))
    mant = round(abs(v) / (10.0**exp) / tolerance / 10.0, 0)
    return (math.copysign(1, v), exp, mant)


def loop_instruction_share(workload: Workload, scale: float, seed: int = 3) -> float:
    """Share of the program's dynamic instructions inside the detected loops."""
    prepared = prepare(workload, "UNSAFE")
    region = fault_region(prepared)
    inp = workload.test_inputs(1, seed=seed, scale=scale)[0]
    memory = workload.fresh_memory(prepared.module, inp)
    executor = make_executor(prepared.module, memory=memory, fault_region=region)
    executor.run(prepared.main, inp.args)
    return executor.region_steps / executor.steps if executor.steps else 0.0


def figure2(
    workloads: Sequence[Workload],
    scale: float = 0.6,
    threshold: float = TREND_THRESHOLD,
    seed: int = 3,
) -> List[MotivationRow]:
    """Coverage of predictable computations per benchmark (Figure 2)."""
    rows: List[MotivationRow] = []
    for workload in workloads:
        harness = Harness(workload, scale=scale, timing=False, seed=seed)
        traces = harness.record_traces()
        values: List[float] = []
        for loop_traces in traces.values():
            for trace in loop_traces:
                values.extend(e.value for e in trace)
        share = loop_instruction_share(workload, scale, seed)
        rows.append(
            MotivationRow(
                workload=workload.name,
                trend_coverage=trend_predictable_share(values, threshold) * share,
                topk_coverage=topk_predictable_share(values) * share,
                loop_share=share,
                elements=len(values),
            )
        )
    return rows
