"""Section 2's cost argument: dynamic interpolation vs. approximate
memoization vs. re-computation.

The paper measures 1 : 1.84 : 4.18 for blackscholes, justifying the
two-level predictor (two consecutive predictions can still be cheaper
than one re-computation).  Here the three costs are derived from the same
accounting the rest of the system uses: the charged opcodes of each
predictor and the latency-weighted cost of the re-computed callee/body.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.costmodel import LATENCY, estimate_function_cost
from ..core.config import RSkipConfig
from ..core.manager import ENQUEUE_CHARGE, OBSERVE_CHARGE, VALIDATE_CHARGE
from ..core.rskip import apply_rskip
from ..workloads.base import Workload


def _cycles(opcodes) -> int:
    return sum(LATENCY[op] for op in opcodes)


@dataclass
class CostRatio:
    workload: str
    interpolation: float
    memoization: float
    recomputation: float

    def normalized(self) -> tuple:
        base = self.interpolation or 1.0
        return (1.0, self.memoization / base, self.recomputation / base)

    def __str__(self) -> str:
        a, b, c = self.normalized()
        return f"{self.workload}: {a:.2f} : {b:.2f} : {c:.2f}"


def cost_ratio(
    workload: Workload,
    config: Optional[RSkipConfig] = None,
    scale: float = 0.5,
) -> CostRatio:
    """Per-element cost of each validation level for one workload."""
    config = config or RSkipConfig()
    module = workload.build()
    app = apply_rskip(module, config, protect=False)
    if not app.layouts:
        raise ValueError(f"{workload.name}: no prediction target detected")
    layout = app.layouts[0]

    # level 1: the per-element slope test plus the amortized share of the
    # cut-time linear validation
    interp = _cycles(OBSERVE_CHARGE) + _cycles(VALIDATE_CHARGE)

    # level 2: a quantized lookup (keyed on the real argument count)
    if layout.mode == "call":
        n_args = layout.n_args
    else:
        n_args = 1
    from ..ir.instructions import Opcode

    memo_ops = []
    for _ in range(n_args):
        memo_ops.extend((Opcode.FSUB, Opcode.FMUL, Opcode.FPTOSI))
    memo_ops.extend((Opcode.ADD, Opcode.SHL, Opcode.LOAD))
    memo = interp + _cycles(memo_ops)  # second level runs after the first

    # level 3: the re-computation (the dup function) plus queue management
    recompute_fn = layout.dup if layout.dup else layout.callee_dup
    body_cost = estimate_function_cost(module.get_function(recompute_fn), module)
    recompute = interp + _cycles(ENQUEUE_CHARGE) + body_cost

    return CostRatio(workload.name, float(interp), float(memo), float(recompute))
