"""The RSkip compiler transform (paper sections 3-4).

For every detected target loop the transform builds:

* **PP (prediction-based protection)** — the loop's expensive value
  computation is outlined into ``<f>.L<k>.body`` and its register-renamed
  redundant clone ``<f>.L<k>.body.dup``.  The loop itself calls ``body``
  once per iteration, feeds the result to the run-time predictor
  (``rskip.observe``), and only *drains* re-computations (calls to
  ``body.dup``) for elements the predictors could not validate.  Recovery
  is a majority vote over a second ``body.dup`` evaluation.
  For function-call targets (blackscholes) the callee itself plays the
  role of ``body`` and its arguments are buffered so the second-level
  memoization predictor can key on them.

* **CP (conventional protection)** — a clone of the whole loop in its own
  function, later protected with SWIFT-R.  ``rskip.select`` picks PP or CP
  at run time (run-time management may disable PP).

After the per-loop surgery, :func:`apply_rskip` runs SWIFT-R over the whole
module *except* the outlined body/dup functions: the loop skeleton
(induction, address computation, stores) gets conventional instruction
triplication — "we protect address calculation of memory instruction with
the conventional strategy" — while the expensive value computation is
protected by prediction alone.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.defuse import compute_chains, defining_instr
from ..analysis.patterns import PatternKind, TargetLoop, detect_target_loops
from ..ir.function import Function
from ..ir.instructions import CmpPred, Instr, Opcode
from ..ir.module import Module
from ..ir.types import F64, I64, PTR, VOID
from ..ir.values import Const, Reg, Value
from ..transforms.clone import clone_function, rename_all_registers
from ..transforms.swift import apply_swift_r
from .config import RSkipConfig
from .manager import LoopProfile, RskipRuntime

ORIG_PARAM = "rskip.origval"


@dataclass
class TargetLayout:
    """Everything the harness needs to know about one transformed loop."""

    key: str
    ctx_id: int
    mode: str  # 'reduction' or 'call'
    rmw: bool
    wrapper: str
    loop_labels: List[str]
    pp_labels: List[str] = field(default_factory=list)
    body: Optional[str] = None
    dup: Optional[str] = None
    callee: Optional[str] = None
    callee_dup: Optional[str] = None
    cp: Optional[str] = None
    n_args: int = 0
    kind: Optional[PatternKind] = None

    @property
    def unprotected_funcs(self) -> List[str]:
        out = []
        for name in (self.body, self.dup, self.callee, self.callee_dup):
            if name is not None:
                out.append(name)
        return out

    @property
    def region_funcs(self) -> List[str]:
        """Functions whose entire body counts as 'inside the detected loop'."""
        out = list(self.unprotected_funcs)
        if self.cp is not None:
            out.append(self.cp)
        return out

    def to_dict(self) -> dict:
        """JSON-safe form (the artifact cache stores layouts alongside the
        printed module, since layouts are not part of the textual IR)."""
        return {
            "key": self.key, "ctx_id": self.ctx_id, "mode": self.mode,
            "rmw": self.rmw, "wrapper": self.wrapper,
            "loop_labels": list(self.loop_labels),
            "pp_labels": list(self.pp_labels),
            "body": self.body, "dup": self.dup, "callee": self.callee,
            "callee_dup": self.callee_dup, "cp": self.cp,
            "n_args": self.n_args,
            "kind": self.kind.name if self.kind is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TargetLayout":
        kind = data.get("kind")
        return cls(
            key=data["key"], ctx_id=data["ctx_id"], mode=data["mode"],
            rmw=data["rmw"], wrapper=data["wrapper"],
            loop_labels=list(data["loop_labels"]),
            pp_labels=list(data.get("pp_labels", [])),
            body=data.get("body"), dup=data.get("dup"),
            callee=data.get("callee"), callee_dup=data.get("callee_dup"),
            cp=data.get("cp"), n_args=data.get("n_args", 0),
            kind=PatternKind[kind] if kind is not None else None,
        )


@dataclass
class RskipApplication:
    """Result of applying RSkip to a module."""

    module: Module
    layouts: List[TargetLayout]
    runtime: RskipRuntime
    config: RSkipConfig

    def intrinsics(self) -> Dict[str, object]:
        return self.runtime.intrinsics()

    def layout_for(self, key: str) -> TargetLayout:
        for layout in self.layouts:
            if layout.key == key:
                return layout
        raise KeyError(key)


class RskipError(ValueError):
    """A detected target could not be transformed safely."""


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _provenance(func: Function) -> Dict[str, str]:
    return func.attrs.setdefault("provenance", {})


def _call_mode_info(func: Function, target: TargetLoop) -> Optional[Instr]:
    """Return the producing CALL instruction if this target qualifies for
    call mode (value stored is exactly the call result, all-float args,
    no read-modify-write)."""
    if target.kind is not PatternKind.FUNCTION_CALL or target.rmw_load_sites:
        return None
    chains = compute_chains(func)
    region = set(target.region_labels)
    sites = [s for s in chains.def_sites(target.value_reg.name) if s[0] in region]
    if len(sites) != 1:
        return None
    instr = defining_instr(func, sites[0])
    if instr.op is not Opcode.CALL or instr.callee != target.callee:
        return None
    if not all(a.ty.is_float for a in instr.args):
        return None
    return instr


def _clone_affine(
    func: Function,
    target: TargetLoop,
    out: List[Instr],
    suffix: str,
) -> Value:
    """Clone the address computation into *out* with fresh registers;
    returns the value to use as the store address."""
    if not target.addr_sites:
        return target.addr_value
    mapping: Dict[str, Reg] = {}
    for site in target.addr_sites:
        instr = defining_instr(func, site)
        new_dest = func.new_reg(instr.dest.ty, f"ppaddr{suffix}")
        cloned = instr.rename(mapping)
        cloned.dest = new_dest
        out.append(cloned)
        mapping[instr.dest.name] = new_dest
    assert isinstance(target.addr_value, Reg)
    return mapping[target.addr_value.name]


def _emit_drain(
    func: Function,
    prefix: str,
    ctx: Const,
    recompute_call: "RecomputeSpec",
    done_label: str,
    ns: str = "rskip",
) -> str:
    """Emit the re-computation drain loop; returns its entry label.

    *ns* is the intrinsic namespace: the RSkip transform drains through
    ``rskip.*`` handlers, the protocol transforms (REPLAY/CKPT) reuse the
    identical drain shape against their own ``proto.*`` runtime.
    """
    head = func.add_block(f"{prefix}.head")
    body = func.add_block(f"{prefix}.rc")
    second = func.add_block(f"{prefix}.second")
    commit = func.add_block(f"{prefix}.commit")

    pi = func.new_reg(I64, f"{prefix}.i")
    head.append(Instr(Opcode.INTRIN, dest=pi, args=(ctx,), callee=f"{ns}.fetch"))
    cond = func.new_reg(I64, f"{prefix}.more")
    head.append(Instr(Opcode.ICMP, dest=cond, args=(pi, Const(0, I64)), pred=CmpPred.GE))
    head.append(Instr(Opcode.CBR, args=(cond,), labels=(body.label, done_label)))

    call_instr, fx = recompute_call.emit(func, body, pi, ctx)
    need2 = func.new_reg(I64, f"{prefix}.need2")
    body.append(Instr(Opcode.INTRIN, dest=need2, args=(ctx,), callee=f"{ns}.need2"))
    body.append(Instr(Opcode.CBR, args=(need2,), labels=(second.label, commit.label)))

    _, _ = recompute_call.emit(func, second, pi, ctx, resolve2=True, fx=fx)
    second.append(Instr(Opcode.BR, labels=(commit.label,)))

    pa = func.new_reg(PTR, f"{prefix}.addr")
    commit.append(Instr(Opcode.INTRIN, dest=pa, args=(ctx,), callee=f"{ns}.addr"))
    commit.append(Instr(Opcode.STORE, args=(fx, pa)))
    commit.append(Instr(Opcode.BR, labels=(head.label,)))
    return head.label


@dataclass
class RecomputeSpec:
    """How the drain re-computes one element (reduction vs. call mode)."""

    dup_name: str
    live_ins: Tuple[Reg, ...] = ()
    rmw: bool = False
    n_args: int = 0  # call mode: number of buffered arguments
    ns: str = "rskip"  # intrinsic namespace (see _emit_drain)

    def emit(
        self,
        func: Function,
        block,
        pi: Reg,
        ctx: Const,
        resolve2: bool = False,
        fx: Optional[Reg] = None,
    ) -> Tuple[Instr, Reg]:
        args: List[Value] = []
        if self.n_args:
            for k in range(self.n_args):
                ak = func.new_reg(F64, f"rca{k}")
                block.append(
                    Instr(
                        Opcode.INTRIN,
                        dest=ak,
                        args=(ctx, Const(k, I64)),
                        callee=f"{self.ns}.arg",
                    )
                )
                args.append(ak)
        else:
            args.append(pi)
            args.extend(self.live_ins)
            if self.rmw:
                porig = func.new_reg(F64, "rcorig")
                block.append(
                    Instr(Opcode.INTRIN, dest=porig, args=(ctx,), callee=f"{self.ns}.orig")
                )
                args.append(porig)
        rv = func.new_reg(F64, "rcv")
        call = Instr(Opcode.CALL, dest=rv, args=tuple(args), callee=self.dup_name)
        block.append(call)
        if fx is None:
            fx = func.new_reg(F64, "rcfx")
        name = f"{self.ns}.resolve2" if resolve2 else f"{self.ns}.resolve"
        block.append(Instr(Opcode.INTRIN, dest=fx, args=(ctx, rv), callee=name))
        return call, fx


# ---------------------------------------------------------------------------
# CP version
# ---------------------------------------------------------------------------

def _loop_live_ins(func: Function, target: TargetLoop) -> List[Reg]:
    """Registers the whole loop reads but defines outside it (CP params)."""
    loop_blocks = target.loop.blocks
    defined: Set[str] = set()
    for label in loop_blocks:
        for instr in func.blocks[label].instrs:
            if instr.dest is not None:
                defined.add(instr.dest.name)
    ivar = target.ind.reg.name
    seen: Dict[str, Reg] = {}
    for label in loop_blocks:
        for instr in func.blocks[label].instrs:
            for reg in instr.uses():
                if reg.name == ivar or reg.name in defined:
                    continue
                seen.setdefault(reg.name, reg)
    return [seen[k] for k in sorted(seen)]


def _build_cp(
    module: Module,
    func: Function,
    target: TargetLoop,
    cp_name: str,
    callee_cp: Optional[Dict[str, str]] = None,
) -> Tuple[Function, List[Reg]]:
    """Clone the whole loop into a standalone function (the CP version)."""
    live = _loop_live_ins(func, target)
    ivar = target.ind.reg
    params = [Reg("cp.start", I64)] + [Reg(r.name, r.ty) for r in live]
    cp = Function(cp_name, params, VOID)

    entry = cp.add_block("cp.entry")
    entry.append(Instr(Opcode.MOV, dest=Reg(ivar.name, ivar.ty), args=(params[0],)))
    entry.append(Instr(Opcode.BR, labels=(target.loop.header,)))

    exit_targets: Set[str] = set()
    for label in func.block_order():
        if label not in target.loop.blocks:
            continue
        block = cp.add_block(label)
        for instr in func.blocks[label].instrs:
            copy = instr.copy()
            if copy.op is Opcode.CALL and callee_cp and copy.callee in callee_cp:
                copy.callee = callee_cp[copy.callee]
            if copy.labels:
                new_labels = []
                for t in copy.labels:
                    if t in target.loop.blocks:
                        new_labels.append(t)
                    else:
                        exit_targets.add(t)
                        new_labels.append("cp.ret")
                copy.labels = tuple(new_labels)
            block.append(copy)
    ret = cp.add_block("cp.ret")
    ret.append(Instr(Opcode.RET))
    cp._reg_counter = func._reg_counter
    module.add_function(cp)
    return cp, live


# ---------------------------------------------------------------------------
# body outlining (reduction mode)
# ---------------------------------------------------------------------------

def _outline_body(
    module: Module,
    func: Function,
    target: TargetLoop,
    body_name: str,
) -> Function:
    ivar = target.ind.reg
    params = [Reg(ivar.name, ivar.ty)] + [Reg(r.name, r.ty) for r in target.live_ins]
    if target.rmw_load_sites:
        params.append(Reg(ORIG_PARAM, F64))
    body = Function(body_name, params, F64)

    store_label, store_idx = target.store_site
    rmw = set(target.rmw_load_sites)
    for label in target.region_labels:
        block = body.add_block(label)
        for idx, instr in enumerate(func.blocks[label].instrs):
            site = (label, idx)
            if site == target.store_site:
                rest = func.blocks[label].instrs[idx + 1 :]
                if any(not i.is_terminator for i in rest):
                    raise RskipError(
                        f"{target.func_name}:{label}: instructions after the "
                        "target store; cannot outline"
                    )
                block.append(Instr(Opcode.RET, args=(target.value_reg,)))
                break
            if site in rmw:
                block.append(
                    Instr(Opcode.MOV, dest=instr.dest, args=(Reg(ORIG_PARAM, F64),))
                )
                continue
            copy = instr.copy()
            for t in copy.labels:
                if t not in set(target.region_labels):
                    raise RskipError(
                        f"{target.func_name}:{label}: branch to {t} leaves the "
                        "region through a non-store block; cannot outline"
                    )
            block.append(copy)
    body._reg_counter = func._reg_counter
    module.add_function(body)
    return body


# ---------------------------------------------------------------------------
# wrapper surgery
# ---------------------------------------------------------------------------

def _redirect_into_select(
    func: Function,
    target: TargetLoop,
    select_label: str,
    skip_labels: Set[str],
) -> None:
    """Route every loop entry edge through the version-selection block."""
    header = target.loop.header
    for label in func.block_order():
        if label in target.loop.blocks or label == select_label or label in skip_labels:
            continue
        for instr in func.blocks[label].instrs:
            if instr.labels and header in instr.labels:
                instr.labels = tuple(
                    select_label if t == header else t for t in instr.labels
                )


def _exit_label_of(func: Function, target: TargetLoop) -> str:
    """The unique loop-exit target (the header cbr's outside successor)."""
    term = func.blocks[target.loop.header].terminator
    outside = [t for t in term.labels if t not in target.loop.blocks]
    if len(outside) != 1:
        raise RskipError(
            f"{target.func_name}:{target.loop.header}: expected exactly one "
            f"loop exit from the header, found {outside}"
        )
    return outside[0]


def _transform_reduction(
    module: Module,
    func: Function,
    target: TargetLoop,
    ctx_id: int,
) -> TargetLayout:
    base = f"{func.name}.L{ctx_id}"
    ctx = Const(ctx_id, I64)
    ivar = target.ind.reg

    body = _outline_body(module, func, target, f"{base}.body")
    dup = clone_function(body, f"{base}.body.dup")
    rename_all_registers(dup, ".d")
    module.add_function(dup)
    cp, cp_live = _build_cp(module, func, target, f"{base}.cp")

    exit_label = _exit_label_of(func, target)
    store_block = func.blocks[target.store_site[0]]
    store_term = store_block.terminator
    if store_term is None or store_term.op is not Opcode.BR:
        raise RskipError(f"{target.func_name}: store block must end in 'br'")
    latch_label = store_term.labels[0]

    # clone the address computation before the region disappears
    addr_out: List[Instr] = []
    addr_val = _clone_affine(func, target, addr_out, "")

    # remove the region (it now lives in @body)
    region_entry = target.region_entry
    for label in target.region_labels:
        func.remove_block(label)

    prov = _provenance(func)
    new_labels: List[str] = []

    def new_block(label: str):
        block = func.add_block(label)
        prov[label] = target.loop.header
        new_labels.append(label)
        return block

    # main PP block (keeps the region-entry label so the header is untouched)
    main = new_block(region_entry)
    for instr in addr_out:
        main.append(instr)

    call_args: List[Value] = [ivar] + list(target.live_ins)
    observe_args: List[Value] = [ctx, ivar]
    rmw = bool(target.rmw_load_sites)
    if rmw:
        orig = func.new_reg(F64, "pporig")
        main.append(Instr(Opcode.LOAD, dest=orig, args=(addr_val,)))
        call_args.append(orig)
    v = func.new_reg(F64, "ppv")
    main.append(Instr(Opcode.CALL, dest=v, args=tuple(call_args), callee=body.name))
    observe_args.extend((v, addr_val))
    if rmw:
        observe_args.append(orig)
    pend = func.new_reg(I64, "pppend")
    main.append(
        Instr(Opcode.INTRIN, dest=pend, args=tuple(observe_args), callee="rskip.observe")
    )

    store_bb = new_block(f"{base}.store")
    store_bb.append(Instr(Opcode.STORE, args=(v, addr_val)))
    store_bb.append(Instr(Opcode.BR, labels=(latch_label,)))

    spec = RecomputeSpec(dup.name, tuple(target.live_ins), rmw=rmw)
    drain_entry = _emit_drain(func, f"{base}.drain", ctx, spec, store_bb.label)
    for label in (f"{base}.drain.head", f"{base}.drain.rc", f"{base}.drain.second", f"{base}.drain.commit"):
        prov[label] = target.loop.header
        new_labels.append(label)
    main.append(Instr(Opcode.CBR, args=(pend,), labels=(drain_entry, store_bb.label)))

    # flush path on loop exit
    flush_bb = new_block(f"{base}.flush")
    fpend = func.new_reg(I64, "ppflush")
    flush_bb.append(Instr(Opcode.INTRIN, dest=fpend, args=(ctx,), callee="rskip.flush"))
    exit_bb = new_block(f"{base}.ppexit")
    exit_bb.append(Instr(Opcode.INTRIN, args=(ctx,), callee="rskip.exit"))
    exit_bb.append(Instr(Opcode.BR, labels=(exit_label,)))
    fdrain_entry = _emit_drain(func, f"{base}.fdrain", ctx, spec, exit_bb.label)
    for label in (f"{base}.fdrain.head", f"{base}.fdrain.rc", f"{base}.fdrain.second", f"{base}.fdrain.commit"):
        prov[label] = target.loop.header
        new_labels.append(label)
    flush_bb.append(Instr(Opcode.CBR, args=(fpend,), labels=(fdrain_entry, exit_bb.label)))

    header_term = func.blocks[target.loop.header].terminator
    header_term.labels = tuple(
        flush_bb.label if t == exit_label else t for t in header_term.labels
    )

    # version selection in front of the loop
    select_bb = new_block(f"{base}.select")
    enter_bb = new_block(f"{base}.enter")
    cp_bb = new_block(f"{base}.cpcall")
    sel = func.new_reg(I64, "ppsel")
    select_bb.append(Instr(Opcode.INTRIN, dest=sel, args=(ctx,), callee="rskip.select"))
    select_bb.append(Instr(Opcode.CBR, args=(sel,), labels=(enter_bb.label, cp_bb.label)))
    enter_bb.append(Instr(Opcode.INTRIN, args=(ctx,), callee="rskip.enter"))
    enter_bb.append(Instr(Opcode.BR, labels=(target.loop.header,)))
    cp_args: List[Value] = [ivar] + list(cp_live)
    cp_bb.append(Instr(Opcode.CALL, args=tuple(cp_args), callee=cp.name))
    cp_bb.append(Instr(Opcode.BR, labels=(exit_label,)))
    _redirect_into_select(func, target, select_bb.label, set(new_labels))

    return TargetLayout(
        key=f"{func.name}:{target.loop.header}",
        ctx_id=ctx_id,
        mode="reduction",
        rmw=rmw,
        wrapper=func.name,
        loop_labels=sorted(target.loop.blocks),
        pp_labels=new_labels,
        body=body.name,
        dup=dup.name,
        cp=cp.name,
        kind=target.kind,
    )


def _transform_call(
    module: Module,
    func: Function,
    target: TargetLoop,
    call_instr: Instr,
    ctx_id: int,
) -> TargetLayout:
    base = f"{func.name}.L{ctx_id}"
    ctx = Const(ctx_id, I64)
    ivar = target.ind.reg
    callee = target.callee

    dup_name = f"{callee}.dup"
    if dup_name not in module.functions:
        g_dup = clone_function(module.get_function(callee), dup_name)
        rename_all_registers(g_dup, ".d")
        module.add_function(g_dup)
    cp_callee_name = f"{callee}.cp"
    if cp_callee_name not in module.functions:
        g_cp = clone_function(module.get_function(callee), cp_callee_name)
        module.add_function(g_cp)
    cp, cp_live = _build_cp(
        module, func, target, f"{base}.cp", callee_cp={callee: cp_callee_name}
    )

    exit_label = _exit_label_of(func, target)
    store_label, store_idx = target.store_site
    store_block = func.blocks[store_label]
    store_instr = store_block.instrs[store_idx]
    value, addr = store_instr.args
    tail = store_block.instrs[store_idx + 1 :]
    store_block.instrs = store_block.instrs[:store_idx]

    prov = _provenance(func)
    new_labels: List[str] = []

    def new_block(label: str):
        block = func.add_block(label)
        prov[label] = target.loop.header
        new_labels.append(label)
        return block

    cont = new_block(f"{base}.store")
    cont.append(store_instr)
    cont.instrs.extend(tail)

    n_args = len(call_instr.args)
    observe_args: List[Value] = [ctx, ivar, value, addr]
    observe_args.extend(call_instr.args)
    pend = func.new_reg(I64, "pppend")
    store_block.append(
        Instr(Opcode.INTRIN, dest=pend, args=tuple(observe_args), callee="rskip.observe")
    )
    spec = RecomputeSpec(dup_name, n_args=n_args)
    drain_entry = _emit_drain(func, f"{base}.drain", ctx, spec, cont.label)
    for label in (f"{base}.drain.head", f"{base}.drain.rc", f"{base}.drain.second", f"{base}.drain.commit"):
        prov[label] = target.loop.header
        new_labels.append(label)
    store_block.append(Instr(Opcode.CBR, args=(pend,), labels=(drain_entry, cont.label)))

    flush_bb = new_block(f"{base}.flush")
    fpend = func.new_reg(I64, "ppflush")
    flush_bb.append(Instr(Opcode.INTRIN, dest=fpend, args=(ctx,), callee="rskip.flush"))
    exit_bb = new_block(f"{base}.ppexit")
    exit_bb.append(Instr(Opcode.INTRIN, args=(ctx,), callee="rskip.exit"))
    exit_bb.append(Instr(Opcode.BR, labels=(exit_label,)))
    fdrain_entry = _emit_drain(func, f"{base}.fdrain", ctx, spec, exit_bb.label)
    for label in (f"{base}.fdrain.head", f"{base}.fdrain.rc", f"{base}.fdrain.second", f"{base}.fdrain.commit"):
        prov[label] = target.loop.header
        new_labels.append(label)
    flush_bb.append(Instr(Opcode.CBR, args=(fpend,), labels=(fdrain_entry, exit_bb.label)))

    header_term = func.blocks[target.loop.header].terminator
    header_term.labels = tuple(
        flush_bb.label if t == exit_label else t for t in header_term.labels
    )

    select_bb = new_block(f"{base}.select")
    enter_bb = new_block(f"{base}.enter")
    cp_bb = new_block(f"{base}.cpcall")
    sel = func.new_reg(I64, "ppsel")
    select_bb.append(Instr(Opcode.INTRIN, dest=sel, args=(ctx,), callee="rskip.select"))
    select_bb.append(Instr(Opcode.CBR, args=(sel,), labels=(enter_bb.label, cp_bb.label)))
    enter_bb.append(Instr(Opcode.INTRIN, args=(ctx,), callee="rskip.enter"))
    enter_bb.append(Instr(Opcode.BR, labels=(target.loop.header,)))
    cp_args: List[Value] = [ivar] + list(cp_live)
    cp_bb.append(Instr(Opcode.CALL, args=tuple(cp_args), callee=cp.name))
    cp_bb.append(Instr(Opcode.BR, labels=(exit_label,)))
    _redirect_into_select(func, target, select_bb.label, set(new_labels))

    return TargetLayout(
        key=f"{func.name}:{target.loop.header}",
        ctx_id=ctx_id,
        mode="call",
        rmw=False,
        wrapper=func.name,
        loop_labels=sorted(target.loop.blocks),
        pp_labels=new_labels,
        callee=callee,
        callee_dup=dup_name,
        cp=cp.name,
        n_args=n_args,
        kind=target.kind,
    )


# ---------------------------------------------------------------------------
# public entry point
# ---------------------------------------------------------------------------

def apply_rskip(
    module: Module,
    config: Optional[RSkipConfig] = None,
    profiles: Optional[Dict[str, LoopProfile]] = None,
    protect: bool = True,
    only: Optional[Sequence[str]] = None,
    ar_overrides: Optional[Dict[str, float]] = None,
) -> RskipApplication:
    """Transform the module in place; returns the application handle.

    *profiles* maps target keys (``"func:header"``) to trained
    :class:`LoopProfile` objects.  With ``protect=False`` the SWIFT-R pass
    over the loop skeleton is skipped (useful for isolating the predictor's
    own overhead in ablations).

    *ar_overrides* is the paper's pragma: per-loop acceptable ranges keyed
    by target key, with ``fnmatch`` wildcards (``{"main:*": 0.0}`` forces
    exact validation — the highest protection rate — on every loop of
    ``main``).  A function attribute ``attrs["rskip.acceptable_range"]``
    acts as the same pragma at function granularity.
    """
    config = config or RSkipConfig()
    profiles = profiles or {}
    ar_overrides = ar_overrides or {}
    layouts: List[TargetLayout] = []
    ctx_id = 0

    func_names = list(only) if only is not None else list(module.functions)
    for name in func_names:
        func = module.functions[name]
        for target in detect_target_loops(func, module):
            call_instr = _call_mode_info(func, target)
            if call_instr is not None:
                layout = _transform_call(module, func, target, call_instr, ctx_id)
            else:
                layout = _transform_reduction(module, func, target, ctx_id)
            layouts.append(layout)
            ctx_id += 1

    if protect:
        excluded: Set[str] = set()
        for layout in layouts:
            excluded.update(layout.unprotected_funcs)
        apply_swift_r(module, exclude_funcs=excluded)

    return rebuild_application(module, layouts, config, profiles, ar_overrides)


def rebuild_application(
    module: Module,
    layouts: List[TargetLayout],
    config: Optional[RSkipConfig] = None,
    profiles: Optional[Dict[str, LoopProfile]] = None,
    ar_overrides: Optional[Dict[str, float]] = None,
) -> RskipApplication:
    """Construct a fresh runtime application over an already-transformed
    module.  The module surgery is a pure function of the input IR, so a
    cached transformed module plus its layouts is enough to rebuild the
    (stateful, never-cached) run-time manager with the caller's config,
    profiles and pragma overrides."""
    config = config or RSkipConfig()
    profiles = profiles or {}
    ar_overrides = ar_overrides or {}
    runtime = RskipRuntime(config)
    for layout in layouts:
        runtime.add_loop(
            layout.ctx_id,
            layout.key,
            profiles.get(layout.key),
            config=_loop_config(module, config, layout, ar_overrides),
            rmw=layout.rmw,
        )
    return RskipApplication(module, layouts, runtime, config)


def _loop_config(
    module: Module,
    config: RSkipConfig,
    layout: TargetLayout,
    ar_overrides: Dict[str, float],
) -> RSkipConfig:
    """Resolve the pragma chain: explicit key override > function attribute
    > the global configuration."""
    import fnmatch

    for pattern in sorted(ar_overrides):
        if fnmatch.fnmatch(layout.key, pattern):
            return config.with_ar(ar_overrides[pattern])
    func = module.functions.get(layout.wrapper)
    if func is not None:
        pragma = func.attrs.get("rskip.acceptable_range")
        if pragma is not None:
            return config.with_ar(float(pragma))
    return config
