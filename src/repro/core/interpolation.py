"""Dynamic interpolation: the first-level predictor (paper section 4.1).

The algorithm slices the stream of loop outputs into *phases* — maximal
runs whose slope changes stay under the tuning parameter (TP) — and, when
a phase is cut, validates its interior points against the straight line
through the phase's two endpoints.  Interior points within the acceptable
range skip re-computation; endpoints (which a line through themselves
cannot validate) and interior outliers are re-computed.

The same machine is used three ways:

* at run time inside `repro.core.manager.LoopRuntime`;
* during offline training, replayed over recorded outputs for each TP of
  the sweep (`repro.core.training`);
* for the Figure 2 motivation study (`repro.eval.motivation`).
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .acceptance import EPSILON, within_range


@dataclass
class Point:
    """One observed loop output."""

    index: int
    value: float


@dataclass
class CutEvent:
    """A completed phase, ready for validation."""

    points: List[Point]
    #: why the phase ended: "slope" (trend break), "cap" (buffer limit),
    #: or "flush" (loop ended)
    reason: str = "slope"


class PhaseSlicer:
    """The setup / extend / cut machine of Figure 5.

    ``observe`` returns a :class:`CutEvent` when the incoming point breaks
    the current trend; the breaking point then *starts the next phase*
    (Figure 5d: after the first cut, the setup stage is no longer needed).
    """

    def __init__(self, tuning_parameter: float, max_pending: int = 4096):
        self.tp = tuning_parameter
        self.max_pending = max_pending
        self._points: List[Point] = []
        self._prev_slope: Optional[float] = None
        self._last: Optional[Point] = None
        #: relative slope changes seen since the last signature window —
        #: consumed by run-time management to build context signatures.
        self.slope_changes: List[float] = []

    def __len__(self) -> int:
        return len(self._points)

    @property
    def pending(self) -> List[Point]:
        return self._points

    def set_tp(self, tp: float) -> None:
        self.tp = tp

    def observe(self, index: int, value: float) -> Optional[CutEvent]:
        point = Point(index, value)
        last = self._last

        if last is None:
            self._points = [point]
            self._last = point
            return None

        di = point.index - last.index
        slope = (value - last.value) / di if di else 0.0

        if self._prev_slope is None:
            self._points.append(point)
            self._last = point
            self._prev_slope = slope
            return None

        denom = abs(self._prev_slope)
        if denom < EPSILON:
            denom = EPSILON
        change = abs(slope - self._prev_slope) / denom
        if math.isnan(change):
            change = math.inf
        self.slope_changes.append(change)

        if change <= self.tp and len(self._points) < self.max_pending:
            self._points.append(point)
            self._last = point
            self._prev_slope = slope
            return None

        reason = "slope" if change > self.tp else "cap"
        cut = CutEvent(self._points, reason)
        # the breaking point starts the next phase
        self._points = [point]
        self._last = point
        self._prev_slope = None
        return cut

    def flush(self) -> Optional[CutEvent]:
        """End of the loop: hand back whatever is still pending."""
        if not self._points:
            return None
        cut = CutEvent(self._points, "flush")
        self._points = []
        self._last = None
        self._prev_slope = None
        return cut

    def reset(self) -> None:
        self._points = []
        self._last = None
        self._prev_slope = None
        self.slope_changes = []


def linear_prediction(first: Point, last: Point, index: int) -> float:
    """Value at *index* on the line through the phase endpoints."""
    di = last.index - first.index
    if di == 0:
        return first.value
    slope = (last.value - first.value) / di
    return first.value + slope * (index - first.index)


def validate_phase(
    cut: CutEvent,
    acceptable_range: float,
) -> Tuple[List[Point], List[Point]]:
    """Split a cut phase into (validated-by-prediction, needs-recompute).

    Endpoints always need re-computation (the line through them cannot
    witness their own integrity); interior points pass when within the
    acceptable range of the linear prediction.
    """
    points = cut.points
    if len(points) <= 2:
        return [], list(points)
    first, last = points[0], points[-1]
    skipped: List[Point] = []
    recompute: List[Point] = [first]
    for point in points[1:-1]:
        predicted = linear_prediction(first, last, point.index)
        if within_range(point.value, predicted, acceptable_range):
            skipped.append(point)
        else:
            recompute.append(point)
    recompute.append(last)
    return skipped, recompute


@dataclass
class SimulationResult:
    """Outcome of replaying the slicer over a recorded output sequence."""

    total: int
    skipped: int
    phases: int
    phase_lengths: List[int] = field(default_factory=list)

    @property
    def skip_rate(self) -> float:
        return self.skipped / self.total if self.total else 0.0


def simulate(
    values: Sequence[float],
    tuning_parameter: float,
    acceptable_range: float,
    max_pending: int = 4096,
) -> SimulationResult:
    """Replay dynamic interpolation over *values* (training's dry run:
    "we simulate the algorithm on samples without repeatedly running a real
    program")."""
    slicer = PhaseSlicer(tuning_parameter, max_pending)
    skipped = 0
    phases = 0
    lengths: List[int] = []

    def consume(cut: Optional[CutEvent]) -> None:
        nonlocal skipped, phases
        if cut is None:
            return
        good, _bad = validate_phase(cut, acceptable_range)
        skipped += len(good)
        phases += 1
        lengths.append(len(cut.points))

    for i, v in enumerate(values):
        consume(slicer.observe(i, v))
    consume(slicer.flush())
    return SimulationResult(len(values), skipped, phases, lengths)
