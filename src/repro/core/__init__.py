"""repro.core — the paper's contribution: the RSkip transform, the two
prediction models (dynamic interpolation, approximate memoization), fuzzy
validation, context signatures, run-time management and offline training."""
from .acceptance import EPSILON, relative_difference, within_range
from .config import PAPER_ACCEPTABLE_RANGES, RSkipConfig
from .interpolation import (
    CutEvent,
    PhaseSlicer,
    Point,
    SimulationResult,
    linear_prediction,
    simulate,
    validate_phase,
)
from .memoization import (
    InputQuantizer,
    MemoStats,
    MemoTable,
    bit_tuning,
    build_memo_table,
    histogram_levels,
    uniform_levels,
)
from .signature import DEFAULT_BINS, QoSModel, histogram, make_signature
from .manager import (
    Element,
    LoopProfile,
    LoopRuntime,
    RskipRuntime,
    SkipStats,
)
from .rskip import (
    RskipApplication,
    RskipError,
    TargetLayout,
    apply_rskip,
)
from .serialize import (
    load_profiles,
    profile_from_dict,
    profile_to_dict,
    profiles_from_json,
    profiles_to_json,
    save_profiles,
)
from .temporal import TEMPORAL_CHARGE, TemporalPredictor
from .training import (
    TrainingReport,
    collect_traces,
    enable_recording,
    slope_changes_of,
    train_interpolation,
    train_profiles,
)

__all__ = [
    "EPSILON", "relative_difference", "within_range",
    "PAPER_ACCEPTABLE_RANGES", "RSkipConfig",
    "CutEvent", "PhaseSlicer", "Point", "SimulationResult",
    "linear_prediction", "simulate", "validate_phase",
    "InputQuantizer", "MemoStats", "MemoTable",
    "bit_tuning", "build_memo_table", "histogram_levels", "uniform_levels",
    "DEFAULT_BINS", "QoSModel", "histogram", "make_signature",
    "Element", "LoopProfile", "LoopRuntime", "RskipRuntime", "SkipStats",
    "RskipApplication", "RskipError", "TargetLayout", "apply_rskip",
    "load_profiles", "profile_from_dict", "profile_to_dict",
    "profiles_from_json", "profiles_to_json", "save_profiles",
    "TEMPORAL_CHARGE", "TemporalPredictor",
    "TrainingReport", "collect_traces", "enable_recording",
    "slope_changes_of", "train_interpolation", "train_profiles",
]
