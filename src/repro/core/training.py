"""Offline training (paper section 6).

RSkip samples outputs from the detected loops while running the training
inputs, then *simulates* the dynamic-interpolation algorithm over the
samples — "without repeatedly running a real program" — sweeping the
tuning parameter to find the best TP per context signature.  The result is
a QoS model (signature -> TP table) per loop, plus a memoization lookup
table for call-mode targets.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.events import (
    TRAIN_LOOP,
    emit as obs_emit,
    enabled as obs_enabled,
    span as obs_span,
)
from .acceptance import EPSILON
from .config import RSkipConfig
from .interpolation import simulate
from .manager import Element, LoopProfile, RskipRuntime
from .memoization import build_memo_table
from .signature import QoSModel, make_signature


def slope_changes_of(values: Sequence[float]) -> List[float]:
    """Relative slope changes of a value sequence (TP-independent)."""
    out: List[float] = []
    prev_slope: Optional[float] = None
    for k in range(1, len(values)):
        slope = values[k] - values[k - 1]
        if prev_slope is not None:
            denom = abs(prev_slope)
            if denom < EPSILON:
                denom = EPSILON
            change = abs(slope - prev_slope) / denom
            out.append(change if change == change else float("inf"))
        prev_slope = slope
    return out


@dataclass
class TrainingReport:
    """What training produced for one loop."""

    key: str
    executions: int
    elements: int
    default_tp: float
    qos_entries: int
    memo_bits: Optional[List[int]] = None
    memo_accuracy: Optional[float] = None


def enable_recording(runtime: RskipRuntime) -> None:
    """Switch every loop runtime into trace-recording mode."""
    for loop in runtime.loops.values():
        loop.recording = []


def collect_traces(runtime: RskipRuntime) -> Dict[str, List[List[Element]]]:
    """Recorded per-execution element traces per loop key."""
    traces: Dict[str, List[List[Element]]] = {}
    for loop in runtime.loops.values():
        if loop.recording is not None:
            traces[loop.key] = loop.recording
    return traces


def train_interpolation(
    traces: Sequence[Sequence[Element]],
    config: RSkipConfig,
) -> Tuple[QoSModel, float]:
    """TP sweep over recorded traces; returns (QoS model, default TP).

    Traces are segmented into signature windows; for each window every TP
    in the grid is simulated and the best-TP votes are aggregated per
    signature (majority of best-skip-rate wins).
    """
    window = config.window
    grid = config.tp_grid
    ar = config.acceptable_range

    votes: Dict[str, Dict[float, float]] = {}
    global_score: Dict[float, float] = {tp: 0.0 for tp in grid}

    for trace in traces:
        values = [e.value for e in trace]
        for start in range(0, max(len(values) - window + 1, 1), window):
            chunk = values[start : start + window]
            if len(chunk) < 4:
                continue
            signature = make_signature(
                slope_changes_of(chunk), config.signature_bins
            )
            scores = votes.setdefault(signature, {tp: 0.0 for tp in grid})
            for tp in grid:
                rate = simulate(chunk, tp, ar, config.max_pending).skip_rate
                scores[tp] += rate
                global_score[tp] += rate

    table = {
        signature: max(scores, key=lambda tp: (scores[tp], -tp))
        for signature, scores in votes.items()
    }
    if any(v > 0 for v in global_score.values()):
        default_tp = max(global_score, key=lambda tp: (global_score[tp], -tp))
    else:
        default_tp = config.tuning_parameter
    return QoSModel(table, default_tp), default_tp


def train_profiles(
    traces: Dict[str, List[List[Element]]],
    config: RSkipConfig,
    memo_keys: Sequence[str] = (),
) -> Tuple[Dict[str, LoopProfile], List[TrainingReport]]:
    """Build a :class:`LoopProfile` per loop from recorded traces."""
    profiles: Dict[str, LoopProfile] = {}
    reports: List[TrainingReport] = []
    memo_wanted = set(memo_keys)

    for key, loop_traces in traces.items():
        with obs_span(f"train:{key}"):
            qos, default_tp = train_interpolation(loop_traces, config)
            profile = LoopProfile(qos=qos, default_tp=default_tp)

            memo_bits = None
            memo_accuracy = None
            if key in memo_wanted and config.memoization:
                X = [list(e.args) for trace in loop_traces for e in trace if e.args]
                y = [e.value for trace in loop_traces for e in trace if e.args]
                if X:
                    profile.memo = build_memo_table(X, y, config.memo_address_bits)
                    memo_bits = list(profile.memo.bits)
                    memo_accuracy = profile.memo.accuracy(X, y)

        profiles[key] = profile
        report = TrainingReport(
            key=key,
            executions=len(loop_traces),
            elements=sum(len(t) for t in loop_traces),
            default_tp=default_tp,
            qos_entries=len(qos),
            memo_bits=memo_bits,
            memo_accuracy=memo_accuracy,
        )
        reports.append(report)
        if obs_enabled():
            obs_emit(
                TRAIN_LOOP, loop=key,
                executions=report.executions, elements=report.elements,
                default_tp=report.default_tp, qos_entries=report.qos_entries,
                memo=report.memo_bits is not None,
            )
    return profiles, reports
