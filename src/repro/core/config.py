"""Configuration of the RSkip protection scheme."""
from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: The four acceptable ranges evaluated in the paper (section 7).
PAPER_ACCEPTABLE_RANGES = (0.2, 0.5, 0.8, 1.0)


@dataclass(frozen=True)
class RSkipConfig:
    """Tunables of the prediction-based protection scheme.

    ``acceptable_range`` is the AR of the fuzzy validation: the maximum
    relative difference between the original computation and the prediction
    for the computation to be assumed fault-free (0.2 == "AR20").  Setting
    it to 0 forces exact validation everywhere — the paper's pragma escape
    hatch for code that must have the highest protection rate.
    """

    acceptable_range: float = 0.2
    #: Initial tuning parameter (TP) of dynamic interpolation: the maximum
    #: accepted relative slope change for a point to extend the phase.
    tuning_parameter: float = 0.5
    #: Elements per run-time-management observation window.
    window: int = 48
    #: Upper edges of the slope-change histogram bins used for the context
    #: signature (an implicit final bin catches everything above the last).
    signature_bins: Tuple[float, ...] = (0.02, 0.1, 0.3, 1.0)
    #: TP values swept during offline training.
    tp_grid: Tuple[float, ...] = (0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 12.0, 30.0)
    #: Total address bits of the approximate-memoization lookup table.
    memo_address_bits: int = 12
    #: Run-time management disables memoization below this hit accuracy.
    memo_min_hit_rate: float = 0.5
    #: Run-time management falls back to conventional protection when the
    #: measured skip rate of a loop drops below this (paper: "may disable
    #: the dynamic interpolation at low accuracy").
    interp_min_skip: float = 0.02
    #: Safety cap on the phase buffer; reaching it forces a cut.
    max_pending: int = 4096
    #: Enable the second-level memoization predictor where applicable.
    memoization: bool = True
    #: Enable the temporal (last-execution) extension predictor — beyond
    #: the paper's evaluated system (see `repro.core.temporal`).
    temporal: bool = False

    def __post_init__(self) -> None:
        if self.acceptable_range < 0:
            raise ValueError("acceptable_range must be non-negative")
        if self.tuning_parameter < 0:
            raise ValueError("tuning_parameter must be non-negative")
        if self.window < 2:
            raise ValueError("window must be at least 2")
        if self.max_pending < 4:
            raise ValueError("max_pending must be at least 4")

    def with_ar(self, acceptable_range: float) -> "RSkipConfig":
        """Copy of this config at a different acceptable range."""
        from dataclasses import replace

        return replace(self, acceptable_range=acceptable_range)

    @property
    def label(self) -> str:
        """Paper-style label, e.g. 0.2 -> 'AR20'."""
        return f"AR{int(round(self.acceptable_range * 100))}"
