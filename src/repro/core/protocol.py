"""Loop-level detection/recovery protocol runtimes: REPLAY<n> and CKPT<i>.

Both families reuse the RSkip transform machinery (loop detection, body
outlining, the drain loop shape) but replace spatial redundancy with
*temporal* redundancy — the re-execution calls the **same** outlined body
again, so there is no instruction duplication anywhere:

* **REPLAY<n>** (RepTFD) — every loop iteration's inputs/outputs are
  recorded as a signature :class:`~repro.core.manager.Element`; completed
  windows of ``window`` iterations are grouped, and every *n*-th window
  is re-executed through the drain and compared exactly.  A mismatch is
  an uncorrectable detection: the runtime raises
  :class:`~repro.runtime.errors.FaultDetectedError` (detected-or-masked
  contract, fully honoured at the ``REPLAY1`` point where every window
  is replayed).

* **CKPT<i>** (Aupy/Robert/Vivien) — loop results are *buffered*, not
  stored: the store in the main path is elided and every element reaches
  memory only through a checkpoint commit, which validates the whole
  segment by re-execution first.  A mismatch triggers rollback —
  re-execute once more and majority-vote — so memory state is exactly
  the fault-free one (exactly-masked contract).  The live commit
  interval shrinks below *i* when the RSkip predictor's fault-likelihood
  signal (:class:`~repro.core.manager.FaultLikelihoodSignal`) rises:
  fault prediction steering checkpoint frequency is exactly that
  paper's subject.

The transformed IR talks to the runtimes through ``intrin proto.*``
calls with the same shapes as ``rskip.*`` (the drain emitter is shared,
parameterized by namespace), so **both** execution engines — the
reference interpreter and the lane-vectorized batch engine — dispatch
protocol work through their one existing intrinsic point: per-lane
intrinsic tables, detection raises retiring lanes, and state-dependent
charge divergence forking lane groups.  No engine knows scheme names.
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..analysis.patterns import detect_target_loops
from ..ir.instructions import Instr, Opcode
from ..ir.module import Module
from ..ir.types import F64, I64
from ..ir.values import Const, Value
from ..obs.events import EXEC, RECOVERY, emit as obs_emit, enabled as obs_enabled
from ..runtime.errors import FaultDetectedError
from .manager import (
    ENQUEUE_CHARGE,
    Element,
    FaultLikelihoodSignal,
    SIGNAL_CHARGE,
    SkipStats,
)
from .rskip import (
    RecomputeSpec,
    TargetLayout,
    _clone_affine,
    _emit_drain,
    _exit_label_of,
    _outline_body,
    _provenance,
    _redirect_into_select,
    RskipError,
)

#: Intrinsic namespace shared by both protocol families (the per-loop
#: handler object encodes replay-vs-ckpt semantics, not the name).
PROTOCOL_NS = "proto"

#: Function attribute marking outlined protocol bodies; the O3 oracle
#: derives its region flip scope from it (attrs round-trip through the
#: artifact cache, so a cache-hit module keeps its markers).
PROTOCOL_REGION_ATTR = "protocol-region"

#: Signature-recording bookkeeping per observed element.
_RECORD_CHARGE = (Opcode.MOV, Opcode.ADD, Opcode.ICMP)
_FETCH_CHARGE = (Opcode.LOAD, Opcode.ICMP)
_READ_CHARGE = (Opcode.LOAD,)
_RESOLVE_CHARGE = (Opcode.FCMP,)
_RESOLVE2_CHARGE = (Opcode.FCMP, Opcode.FCMP)
_ENTER_CHARGE = (Opcode.MOV, Opcode.MOV)

#: How hard the fault-likelihood signal compresses the commit interval:
#: at likelihood 1.0 the live interval is (1 - _SIGNAL_PRESSURE) * base.
_SIGNAL_PRESSURE = 0.75


def _same(a: float, b: float) -> bool:
    """Exact comparison that treats NaN as equal to itself."""
    return a == b or (a != a and b != b)


class _ProtocolLoop:
    """State shared by both per-loop protocol runtimes."""

    def __init__(self, key: str, rmw: bool = False):
        self.key = key
        self.rmw = rmw
        self.queue: Deque[Element] = deque()
        self.current: Optional[Element] = None
        self.stats = SkipStats()
        self._enter_mark = 0

    # -- lifecycle ---------------------------------------------------------
    def enter(self) -> None:
        self.queue.clear()
        self.current = None
        self.stats.executions_pp += 1
        self._enter_mark = self.stats.elements

    def exit(self) -> None:
        if obs_enabled():
            obs_emit(
                EXEC, loop=self.key, execution=self.stats.executions_pp,
                elements=self.stats.elements - self._enter_mark, skipped=0,
            )

    def reset(self) -> None:
        self.queue.clear()
        self.current = None
        self.stats = SkipStats()
        self._enter_mark = 0

    # -- drain plumbing ----------------------------------------------------
    def fetch(self) -> Tuple[int, List[Opcode]]:
        if not self.queue:
            self.current = None
            return -1, list(_FETCH_CHARGE)
        self.current = self.queue.popleft()
        return self.current.index, list(_FETCH_CHARGE)

    def _require_current(self) -> Element:
        if self.current is None:
            raise RuntimeError(f"protocol runtime {self.key}: no element fetched")
        return self.current

    def orig(self) -> Tuple[float, List[Opcode]]:
        return self._require_current().orig, list(_READ_CHARGE)

    def addr(self) -> Tuple[int, List[Opcode]]:
        return self._require_current().addr, list(_READ_CHARGE)


class ReplayLoopRuntime(_ProtocolLoop):
    """REPLAY<n> for one loop: sampled-window re-execution, abort on
    mismatch."""

    def __init__(self, key: str, sample_period: int, window: int, rmw: bool = False):
        super().__init__(key, rmw)
        if sample_period < 1:
            raise ValueError("REPLAY sample period must be >= 1")
        self.sample_period = sample_period
        self.window = max(1, window)
        self._buffer: List[Element] = []
        self._windows_seen = 0

    def enter(self) -> None:
        super().enter()
        self._buffer = []
        self._windows_seen = 0

    def reset(self) -> None:
        super().reset()
        self._buffer = []
        self._windows_seen = 0

    def _close_window(self, charge: List[Opcode]) -> None:
        wid = self._windows_seen
        self._windows_seen += 1
        if wid % self.sample_period == 0:
            self.stats.phases += 1  # a replayed window
            for _ in self._buffer:
                charge.extend(ENQUEUE_CHARGE)
            self.queue.extend(self._buffer)
        self._buffer = []

    def observe(self, element: Element) -> Tuple[int, List[Opcode]]:
        self.stats.elements += 1
        charge: List[Opcode] = list(_RECORD_CHARGE)
        self._buffer.append(element)
        if len(self._buffer) >= self.window:
            self._close_window(charge)
        return len(self.queue), charge

    def flush(self) -> Tuple[int, List[Opcode]]:
        charge: List[Opcode] = []
        if self._buffer:
            self._close_window(charge)
        return len(self.queue), charge

    def resolve(self, rv: float) -> Tuple[float, List[Opcode]]:
        element = self._require_current()
        self.stats.recomputed += 1
        if _same(rv, element.value):
            return element.value, list(_RESOLVE_CHARGE)
        self.stats.recompute_mismatches += 1
        if obs_enabled():
            obs_emit(RECOVERY, loop=self.key, stage="detect",
                     index=element.index)
        raise FaultDetectedError(
            f"replay mismatch at {self.key}[{element.index}]: "
            f"recorded {element.value!r}, re-executed {rv!r}"
        )

    def need2(self) -> Tuple[int, List[Opcode]]:
        return 0, list(_READ_CHARGE)

    def resolve2(self, rv2: float) -> Tuple[float, List[Opcode]]:
        # unreachable fault-free (need2 is always 0): getting here means
        # the protocol's own control flow was corrupted, which is itself
        # a detection — REPLAY has no vote to fall back on.
        self.stats.recompute_mismatches += 1
        if obs_enabled():
            obs_emit(RECOVERY, loop=self.key, stage="detect",
                     index=self.current.index if self.current else -1)
        raise FaultDetectedError(
            f"replay control-flow anomaly at {self.key}: vote requested "
            "but REPLAY never votes"
        )


class CkptLoopRuntime(_ProtocolLoop):
    """CKPT<i> for one loop: buffered results committed at validated
    checkpoints, rollback (re-execute + vote) on mismatch."""

    def __init__(
        self,
        key: str,
        interval: int,
        rmw: bool = False,
        predictor: bool = True,
        tolerance: float = 0.2,
        signal_window: int = 16,
    ):
        super().__init__(key, rmw)
        if interval < 1:
            raise ValueError("CKPT interval must be >= 1")
        self.base_interval = interval
        self.signal = (
            FaultLikelihoodSignal(tolerance, signal_window) if predictor else None
        )
        self._segment: List[Element] = []
        self._rv1: Optional[float] = None
        self._need2 = False
        #: committed segment lengths (the live interval trace the
        #: EXPERIMENTS table reads out)
        self.commit_intervals: List[int] = []

    def enter(self) -> None:
        super().enter()
        self._segment = []
        self._rv1 = None
        self._need2 = False
        if self.signal is not None:
            self.signal.reset()

    def reset(self) -> None:
        super().reset()
        self._segment = []
        self._rv1 = None
        self._need2 = False
        if self.signal is not None:
            self.signal.reset()
        self.commit_intervals = []

    def live_interval(self) -> int:
        """The current commit interval: the base, compressed by the
        fault-likelihood signal (more mispredictions -> commit sooner,
        so less work is at risk between checkpoints)."""
        if self.signal is None:
            return self.base_interval
        rate = self.signal.likelihood()
        if rate <= 0.0:
            return self.base_interval
        shrunk = int(self.base_interval * (1.0 - _SIGNAL_PRESSURE * rate))
        return max(1, shrunk)

    def _commit_segment(self, charge: List[Opcode], adjusted: bool) -> None:
        self.stats.phases += 1  # one checkpoint
        if adjusted:
            self.stats.tp_adjustments += 1  # signal shrank the interval
        self.commit_intervals.append(len(self._segment))
        for _ in self._segment:
            charge.extend(ENQUEUE_CHARGE)
        self.queue.extend(self._segment)
        self._segment = []

    def observe(self, element: Element) -> Tuple[int, List[Opcode]]:
        self.stats.elements += 1
        charge: List[Opcode] = list(_RECORD_CHARGE)
        if self.signal is not None:
            self.signal.observe(element.value)
            charge.extend(SIGNAL_CHARGE)
        self._segment.append(element)
        live = self.live_interval()
        if len(self._segment) >= live:
            self._commit_segment(charge, adjusted=live < self.base_interval)
        return len(self.queue), charge

    def flush(self) -> Tuple[int, List[Opcode]]:
        charge: List[Opcode] = []
        if self._segment:
            # final checkpoint: whatever remains commits at loop exit
            self._commit_segment(charge, adjusted=False)
        return len(self.queue), charge

    def resolve(self, rv: float) -> Tuple[float, List[Opcode]]:
        element = self._require_current()
        self.stats.recomputed += 1
        if _same(rv, element.value):
            self._need2 = False
            return element.value, list(_RESOLVE_CHARGE)
        # recorded result and validation re-execution disagree: roll the
        # element back — one more re-execution decides by majority vote
        self.stats.recompute_mismatches += 1
        if obs_enabled():
            obs_emit(RECOVERY, loop=self.key, stage="detect",
                     index=element.index)
        self._need2 = True
        self._rv1 = rv
        return rv, list(_RESOLVE_CHARGE)

    def need2(self) -> Tuple[int, List[Opcode]]:
        return (1 if self._need2 else 0), list(_READ_CHARGE)

    def resolve2(self, rv2: float) -> Tuple[float, List[Opcode]]:
        element = self._require_current()
        rv1 = self._rv1
        self._need2 = False
        if rv1 is not None and _same(rv1, rv2):
            # both re-executions agree: the recorded value was corrupted
            self.stats.corrected_master += 1
            if obs_enabled():
                obs_emit(RECOVERY, loop=self.key, stage="vote",
                         verdict="master", index=element.index)
            return rv1, list(_RESOLVE2_CHARGE)
        if _same(element.value, rv2):
            # the first re-execution was corrupted
            self.stats.corrected_shadow += 1
            if obs_enabled():
                obs_emit(RECOVERY, loop=self.key, stage="vote",
                         verdict="shadow", index=element.index)
            return element.value, list(_RESOLVE2_CHARGE)
        self.stats.unresolved_votes += 1
        if obs_enabled():
            obs_emit(RECOVERY, loop=self.key, stage="vote",
                     verdict="unresolved", index=element.index)
        return rv2, list(_RESOLVE2_CHARGE)


class ProtocolRuntime:
    """All protocol loop runtimes of a transformed module + the
    ``proto.*`` intrinsic table (mirrors :class:`RskipRuntime`)."""

    def __init__(self, kind: str):
        if kind not in ("replay", "ckpt"):
            raise ValueError(f"unknown protocol kind {kind!r}")
        self.kind = kind
        self.loops: Dict[int, _ProtocolLoop] = {}

    def add_loop(self, ctx_id: int, loop: _ProtocolLoop) -> _ProtocolLoop:
        self.loops[ctx_id] = loop
        return loop

    def loop(self, ctx_id: int) -> _ProtocolLoop:
        return self.loops[int(ctx_id)]

    def reset(self) -> None:
        for runtime in self.loops.values():
            runtime.reset()

    def total_stats(self) -> SkipStats:
        total = SkipStats()
        for runtime in self.loops.values():
            total.merge(runtime.stats)
        return total

    def stats_delta(self, since: SkipStats) -> SkipStats:
        return self.total_stats().delta(since)

    @property
    def skip_rate(self) -> float:
        return self.total_stats().skip_rate

    def commit_intervals(self) -> List[int]:
        """Committed CKPT segment lengths across all loops, in order."""
        out: List[int] = []
        for ctx_id in sorted(self.loops):
            runtime = self.loops[ctx_id]
            if isinstance(runtime, CkptLoopRuntime):
                out.extend(runtime.commit_intervals)
        return out

    # -- intrinsic table ----------------------------------------------------
    def intrinsics(self) -> Dict[str, object]:
        """Handlers for both execution engines (same calling convention
        as ``rskip.*``: ``fn(interp, args) -> (value, charge)``)."""

        def enter(interp, args):
            self.loop(args[0]).enter()
            return 0, _ENTER_CHARGE

        def observe(interp, args):
            ctx, index, value, addr = args[0], args[1], args[2], args[3]
            rest = args[4:]
            runtime = self.loop(ctx)
            if runtime.rmw:
                element = Element(int(index), value, addr, orig=rest[0])
            else:
                element = Element(int(index), value, addr)
            return runtime.observe(element)

        def fetch(interp, args):
            return self.loop(args[0]).fetch()

        def orig(interp, args):
            return self.loop(args[0]).orig()

        def addr(interp, args):
            return self.loop(args[0]).addr()

        def resolve(interp, args):
            return self.loop(args[0]).resolve(args[1])

        def need2(interp, args):
            return self.loop(args[0]).need2()

        def resolve2(interp, args):
            return self.loop(args[0]).resolve2(args[1])

        def flush(interp, args):
            return self.loop(args[0]).flush()

        def loop_exit(interp, args):
            self.loop(args[0]).exit()
            return 0, ()

        ns = PROTOCOL_NS
        return {
            f"{ns}.enter": enter,
            f"{ns}.observe": observe,
            f"{ns}.fetch": fetch,
            f"{ns}.orig": orig,
            f"{ns}.addr": addr,
            f"{ns}.resolve": resolve,
            f"{ns}.need2": need2,
            f"{ns}.resolve2": resolve2,
            f"{ns}.flush": flush,
            f"{ns}.exit": loop_exit,
        }


@dataclass
class ProtocolApplication:
    """Result of applying a protocol transform to a module (duck-typed
    like :class:`RskipApplication`: ``.layouts``/``.runtime``/
    ``.intrinsics()`` are what the eval layer reads)."""

    module: Module
    layouts: List[TargetLayout]
    runtime: ProtocolRuntime
    kind: str

    def intrinsics(self) -> Dict[str, object]:
        return self.runtime.intrinsics()

    def layout_for(self, key: str) -> TargetLayout:
        for layout in self.layouts:
            if layout.key == key:
                return layout
        raise KeyError(key)


# ---------------------------------------------------------------------------
# the transform
# ---------------------------------------------------------------------------

def _transform_protocol_loop(
    module: Module,
    func,
    target,
    ctx_id: int,
    kind: str,
) -> TargetLayout:
    """Outline the target loop's body and wire it to the ``proto.*``
    runtime.  Identical skeleton to the RSkip reduction transform minus
    everything spatial: no ``.dup`` clone (the drain re-executes the
    *same* body — temporal redundancy), no CP version, no ``select``.

    For ``kind == "replay"`` the main path still stores each result
    immediately (detection-only: memory always matches the unprotected
    run); for ``kind == "ckpt"`` the main-path store is elided and every
    element reaches memory only through a checkpoint commit drain.
    """
    base = f"{func.name}.P{ctx_id}"
    ctx = Const(ctx_id, I64)
    ivar = target.ind.reg
    ns = PROTOCOL_NS

    body = _outline_body(module, func, target, f"{base}.body")
    body.attrs[PROTOCOL_REGION_ATTR] = kind

    exit_label = _exit_label_of(func, target)
    store_block = func.blocks[target.store_site[0]]
    store_term = store_block.terminator
    if store_term is None or store_term.op is not Opcode.BR:
        raise RskipError(f"{target.func_name}: store block must end in 'br'")
    latch_label = store_term.labels[0]

    # clone the address computation before the region disappears
    addr_out: List[Instr] = []
    addr_val = _clone_affine(func, target, addr_out, "")

    # remove the region (it now lives in @body)
    region_entry = target.region_entry
    for label in target.region_labels:
        func.remove_block(label)

    prov = _provenance(func)
    new_labels: List[str] = []

    def new_block(label: str):
        block = func.add_block(label)
        prov[label] = target.loop.header
        new_labels.append(label)
        return block

    # main block (keeps the region-entry label so the header is untouched)
    main = new_block(region_entry)
    for instr in addr_out:
        main.append(instr)

    call_args: List[Value] = [ivar] + list(target.live_ins)
    observe_args: List[Value] = [ctx, ivar]
    rmw = bool(target.rmw_load_sites)
    if rmw:
        orig = func.new_reg(F64, "porig")
        main.append(Instr(Opcode.LOAD, dest=orig, args=(addr_val,)))
        call_args.append(orig)
    v = func.new_reg(F64, "pv")
    main.append(Instr(Opcode.CALL, dest=v, args=tuple(call_args), callee=body.name))
    observe_args.extend((v, addr_val))
    if rmw:
        observe_args.append(orig)
    pend = func.new_reg(I64, "ppend")
    main.append(
        Instr(Opcode.INTRIN, dest=pend, args=tuple(observe_args),
              callee=f"{ns}.observe")
    )

    store_bb = new_block(f"{base}.store")
    if kind == "replay":
        store_bb.append(Instr(Opcode.STORE, args=(v, addr_val)))
    store_bb.append(Instr(Opcode.BR, labels=(latch_label,)))

    spec = RecomputeSpec(body.name, tuple(target.live_ins), rmw=rmw, ns=ns)
    drain_entry = _emit_drain(func, f"{base}.drain", ctx, spec, store_bb.label, ns=ns)
    for label in (f"{base}.drain.head", f"{base}.drain.rc",
                  f"{base}.drain.second", f"{base}.drain.commit"):
        prov[label] = target.loop.header
        new_labels.append(label)
    main.append(Instr(Opcode.CBR, args=(pend,), labels=(drain_entry, store_bb.label)))

    # flush path on loop exit: replay/commit whatever is still buffered
    flush_bb = new_block(f"{base}.flush")
    fpend = func.new_reg(I64, "pflush")
    flush_bb.append(Instr(Opcode.INTRIN, dest=fpend, args=(ctx,), callee=f"{ns}.flush"))
    exit_bb = new_block(f"{base}.pexit")
    exit_bb.append(Instr(Opcode.INTRIN, args=(ctx,), callee=f"{ns}.exit"))
    exit_bb.append(Instr(Opcode.BR, labels=(exit_label,)))
    fdrain_entry = _emit_drain(func, f"{base}.fdrain", ctx, spec, exit_bb.label, ns=ns)
    for label in (f"{base}.fdrain.head", f"{base}.fdrain.rc",
                  f"{base}.fdrain.second", f"{base}.fdrain.commit"):
        prov[label] = target.loop.header
        new_labels.append(label)
    flush_bb.append(Instr(Opcode.CBR, args=(fpend,), labels=(fdrain_entry, exit_bb.label)))

    header_term = func.blocks[target.loop.header].terminator
    header_term.labels = tuple(
        flush_bb.label if t == exit_label else t for t in header_term.labels
    )

    # per-execution runtime reset in front of the loop (no version select)
    enter_bb = new_block(f"{base}.enter")
    enter_bb.append(Instr(Opcode.INTRIN, args=(ctx,), callee=f"{ns}.enter"))
    enter_bb.append(Instr(Opcode.BR, labels=(target.loop.header,)))
    _redirect_into_select(func, target, enter_bb.label, set(new_labels))

    return TargetLayout(
        key=f"{func.name}:{target.loop.header}",
        ctx_id=ctx_id,
        mode=kind,
        rmw=rmw,
        wrapper=func.name,
        loop_labels=sorted(target.loop.blocks),
        pp_labels=new_labels,
        body=body.name,
        kind=target.kind,
    )


def _make_loop_runtime(
    kind: str,
    layout: TargetLayout,
    *,
    sample_period: int,
    window: int,
    interval: int,
    predictor: bool,
    tolerance: float,
    signal_window: int,
) -> _ProtocolLoop:
    if kind == "replay":
        return ReplayLoopRuntime(
            layout.key, sample_period, window, rmw=layout.rmw)
    return CkptLoopRuntime(
        layout.key, interval, rmw=layout.rmw, predictor=predictor,
        tolerance=tolerance, signal_window=signal_window,
    )


def apply_protocol(
    module: Module,
    kind: str,
    *,
    sample_period: int = 1,
    window: int = 4,
    interval: int = 8,
    predictor: bool = True,
    tolerance: float = 0.2,
    signal_window: int = 16,
    only: Optional[Sequence[str]] = None,
) -> ProtocolApplication:
    """Transform the module in place for REPLAY (``kind="replay"``) or
    CKPT (``kind="ckpt"``); returns the application handle.

    Unlike RSkip there is no SWIFT-R skeleton pass afterwards: the whole
    point of these families is a different cost/coverage trade — only the
    outlined loop bodies are protected (temporally), the loop skeleton is
    left bare.
    """
    layouts: List[TargetLayout] = []
    ctx_id = 0
    func_names = list(only) if only is not None else list(module.functions)
    for name in func_names:
        func = module.functions[name]
        for target in detect_target_loops(func, module):
            layouts.append(
                _transform_protocol_loop(module, func, target, ctx_id, kind))
            ctx_id += 1
    return rebuild_protocol_application(
        module, layouts, kind,
        sample_period=sample_period, window=window, interval=interval,
        predictor=predictor, tolerance=tolerance, signal_window=signal_window,
    )


def rebuild_protocol_application(
    module: Module,
    layouts: List[TargetLayout],
    kind: str,
    *,
    sample_period: int = 1,
    window: int = 4,
    interval: int = 8,
    predictor: bool = True,
    tolerance: float = 0.2,
    signal_window: int = 16,
) -> ProtocolApplication:
    """Fresh (stateful, never-cached) protocol runtime over an
    already-transformed module — the cache-hit path, mirroring
    :func:`repro.core.rskip.rebuild_application`."""
    runtime = ProtocolRuntime(kind)
    for layout in layouts:
        runtime.add_loop(
            layout.ctx_id,
            _make_loop_runtime(
                kind, layout,
                sample_period=sample_period, window=window, interval=interval,
                predictor=predictor, tolerance=tolerance,
                signal_window=signal_window,
            ),
        )
    return ProtocolApplication(module, layouts, runtime, kind)
