"""Temporal prediction: an extension predictor (paper future work).

The paper notes that RSkip's "applicability can be broadened with new
approximation techniques that have a wider target".  This module adds one
such technique: a *temporal* predictor that remembers the loop's outputs
from its previous execution and predicts that element *i* repeats.

It shines exactly where dynamic interpolation cannot help: loops that are
re-executed with identical or slowly-drifting live-ins (the frame loop of
conv1d, blackscholes' runs loop, iterative solvers), where the output
series may be trendless but is *stable across executions*.  It is cheaper
than approximate memoization — one indexed load and a fuzzy compare, no
quantization — so the runtime tries it before the memo table.

Disabled by default (``RSkipConfig(temporal=True)`` opts in); it is an
extension beyond the paper's evaluated system.
"""
from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.instructions import Opcode
from .acceptance import within_range

#: Charged per attempted temporal prediction: the history load plus the
#: fuzzy comparison.
TEMPORAL_CHARGE = (Opcode.LOAD, Opcode.FSUB, Opcode.FABS, Opcode.FMUL, Opcode.FCMP)


class TemporalPredictor:
    """Last-execution value table for one target loop."""

    def __init__(self, max_entries: int = 65536):
        self.max_entries = max_entries
        self._previous: Dict[int, float] = {}
        self._current: Dict[int, float] = {}
        self.predictions = 0
        self.hits = 0

    def begin_execution(self) -> None:
        """Rotate histories at loop entry: last execution becomes the
        prediction source, and a fresh table starts recording."""
        if self._current:
            self._previous = self._current
            self._current = {}

    def record(self, index: int, value: float) -> None:
        if len(self._current) < self.max_entries:
            self._current[index] = value

    def predict(self, index: int) -> Optional[float]:
        return self._previous.get(index)

    def validate(self, index: int, value: float, acceptable_range: float) -> bool:
        """True when the previous execution's value fuzzily confirms this one."""
        predicted = self.predict(index)
        if predicted is None:
            return False
        self.predictions += 1
        if within_range(value, predicted, acceptable_range):
            self.hits += 1
            return True
        return False

    @property
    def hit_rate(self) -> float:
        return self.hits / self.predictions if self.predictions else 0.0

    def charge(self) -> List[Opcode]:
        return list(TEMPORAL_CHARGE)
