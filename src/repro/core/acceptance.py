"""Fuzzy validation: the acceptable-range (AR) test.

The paper uses *relative difference* to define the acceptable range: the
original computation is assumed fault-free when

    |original - prediction| <= AR * |prediction|

A tiny absolute epsilon keeps values near zero comparable (a prediction of
exactly 0.0 would otherwise reject everything but itself even at AR100).
"""
from __future__ import annotations

import math

#: Absolute floor applied to the denominator of the relative difference.
EPSILON = 1e-12


def relative_difference(actual: float, predicted: float) -> float:
    """|actual - predicted| / max(|predicted|, EPSILON); inf for NaNs."""
    if math.isnan(actual) or math.isnan(predicted):
        return math.inf
    denom = abs(predicted)
    if denom < EPSILON:
        denom = EPSILON
    try:
        return abs(actual - predicted) / denom
    except OverflowError:  # pragma: no cover - inf arithmetic
        return math.inf


def within_range(actual: float, predicted: float, acceptable_range: float) -> bool:
    """The fuzzy-validation predicate.

    ``acceptable_range == 0`` degenerates to exact equality — the paper's
    pragma for regions that need the highest protection rate.
    """
    if acceptable_range == 0:
        return actual == predicted
    return relative_difference(actual, predicted) <= acceptable_range
