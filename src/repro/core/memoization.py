"""Approximate memoization: the second-level predictor (paper section 4.2).

Expensive, side-effect-free computations (the blackscholes pricing call)
are replaced by a lookup table indexed by *quantized* inputs.  Two pieces
reproduce the paper's improvements over Paraprox [Samadi et al. 2014]:

* **bit tuning** distributes a fixed budget of address bits across inputs,
  greedily giving the next bit to the input whose refinement most improves
  training accuracy;
* **histogram-based quantization** sizes each quantization level by the
  observed input density (build a fine uniform histogram, then repeatedly
  merge the least-crowded adjacent bins) instead of assuming uniformly
  distributed inputs.  ``uniform_levels`` keeps the prior work's scheme for
  the ablation benchmark.
"""
from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.instructions import Opcode

MAX_BITS_PER_INPUT = 8
#: Training-time accuracy tolerance (relative error) for bit tuning.
TUNING_TOLERANCE = 0.05


@dataclass
class InputQuantizer:
    """Maps one scalar input to a level index via its level boundaries."""

    edges: List[float]

    @property
    def levels(self) -> int:
        return len(self.edges) + 1

    def quantize(self, x: float) -> int:
        if math.isnan(x):
            return 0
        return bisect.bisect_right(self.edges, x)


def uniform_levels(samples: Sequence[float], levels: int) -> List[float]:
    """Equal-width level edges between the training min and max (the prior
    work's scheme: "inputs are uniformly distributed")."""
    if levels <= 1 or not samples:
        return []
    lo, hi = min(samples), max(samples)
    if hi <= lo:
        return []
    step = (hi - lo) / levels
    return [lo + step * k for k in range(1, levels)]


def histogram_levels(
    samples: Sequence[float],
    levels: int,
    fine_bins: int = 64,
) -> List[float]:
    """Density-adaptive level edges.

    Build a fine uniform histogram, then merge the adjacent pair of bins
    with the smallest combined population until only *levels* bins remain;
    the surviving interior boundaries are the level edges.  Crowded value
    ranges end up with narrow levels, sparse ranges with wide ones.
    """
    if levels <= 1 or not samples:
        return []
    lo, hi = min(samples), max(samples)
    if hi <= lo:
        return []
    fine_bins = max(fine_bins, levels)
    width = (hi - lo) / fine_bins
    if width <= 0.0:
        # subnormal span: (hi - lo) / fine_bins underflows to zero even
        # though hi > lo — the range is too narrow to split into levels
        return []
    counts = [0] * fine_bins
    for x in samples:
        k = int((x - lo) / width)
        if k >= fine_bins:
            k = fine_bins - 1
        if k < 0:
            k = 0
        counts[k] += 1

    # bins as (left_edge, count); right edge of bin i is left edge of i+1
    edges = [lo + width * k for k in range(fine_bins + 1)]
    bins: List[Tuple[float, int]] = [(edges[k], counts[k]) for k in range(fine_bins)]
    while len(bins) > levels:
        best_k = 0
        best = None
        for k in range(len(bins) - 1):
            combined = bins[k][1] + bins[k + 1][1]
            if best is None or combined < best:
                best = combined
                best_k = k
        bins[best_k] = (bins[best_k][0], best)
        del bins[best_k + 1]
    return [b[0] for b in bins[1:]]


@dataclass
class MemoStats:
    lookups: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class MemoTable:
    """The deployed lookup table."""

    quantizers: List[InputQuantizer]
    bits: List[int]
    table: Dict[Tuple[int, ...], float]
    stats: MemoStats = field(default_factory=MemoStats)

    @property
    def address_bits(self) -> int:
        return sum(self.bits)

    def cell(self, args: Sequence[float]) -> Tuple[int, ...]:
        return tuple(q.quantize(x) for q, x in zip(self.quantizers, args))

    def predict(self, args: Sequence[float]) -> Optional[float]:
        """Predicted output, or None when the cell was never trained."""
        self.stats.lookups += 1
        value = self.table.get(self.cell(args))
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def charge(self) -> List[Opcode]:
        """Opcodes accounted per lookup: quantization of each input (a
        subtract, a scale and a float->int) plus the table access."""
        ops: List[Opcode] = []
        for _ in self.quantizers:
            ops.extend((Opcode.FSUB, Opcode.FMUL, Opcode.FPTOSI))
        ops.extend((Opcode.ADD, Opcode.SHL, Opcode.LOAD))
        return ops

    def accuracy(self, X: Sequence[Sequence[float]], y: Sequence[float],
                 tolerance: float = TUNING_TOLERANCE) -> float:
        """Fraction of samples predicted within *tolerance* relative error."""
        if not y:
            return 0.0
        good = 0
        for args, expect in zip(X, y):
            got = self.table.get(self.cell(args))
            if got is None:
                continue
            denom = max(abs(expect), 1e-12)
            if abs(got - expect) <= tolerance * denom:
                good += 1
        return good / len(y)

    def mean_relative_error(self, X: Sequence[Sequence[float]], y: Sequence[float]) -> float:
        """Average relative prediction error over training samples (misses
        count as error 1).  Continuous, so the greedy bit tuner always has
        a gradient — a thresholded accuracy would plateau and starve
        low-impact inputs of bits."""
        if not y:
            return 1.0
        total = 0.0
        for args, expect in zip(X, y):
            got = self.table.get(self.cell(args))
            if got is None:
                total += 1.0
                continue
            denom = max(abs(expect), 1e-12)
            err = abs(got - expect) / denom
            total += err if err < 1.0 else 1.0
        return total / len(y)


def _build_quantizers(
    X: Sequence[Sequence[float]],
    bits: Sequence[int],
    histogram_quantization: bool,
) -> List[InputQuantizer]:
    k = len(bits)
    quantizers = []
    builder = histogram_levels if histogram_quantization else uniform_levels
    for j in range(k):
        column = [row[j] for row in X]
        quantizers.append(InputQuantizer(builder(column, 1 << bits[j])))
    return quantizers


def _fill_table(
    quantizers: List[InputQuantizer],
    X: Sequence[Sequence[float]],
    y: Sequence[float],
) -> Dict[Tuple[int, ...], float]:
    sums: Dict[Tuple[int, ...], float] = {}
    counts: Dict[Tuple[int, ...], int] = {}
    for args, out in zip(X, y):
        cell = tuple(q.quantize(x) for q, x in zip(quantizers, args))
        sums[cell] = sums.get(cell, 0.0) + out
        counts[cell] = counts.get(cell, 0) + 1
    return {cell: sums[cell] / counts[cell] for cell in sums}


def bit_tuning(
    X: Sequence[Sequence[float]],
    y: Sequence[float],
    total_bits: int,
    histogram_quantization: bool = True,
    tolerance: float = TUNING_TOLERANCE,
) -> List[int]:
    """Greedy bit assignment: each round gives one more address bit to the
    input whose refinement most improves training accuracy."""
    if not X:
        return []
    k = len(X[0])
    bits = [0] * k
    builder = histogram_levels if histogram_quantization else uniform_levels
    columns = [[row[j] for row in X] for j in range(k)]
    qcache: Dict[Tuple[int, int], InputQuantizer] = {}

    def quantizer(j: int, b: int) -> InputQuantizer:
        q = qcache.get((j, b))
        if q is None:
            q = InputQuantizer(builder(columns[j], 1 << b))
            qcache[(j, b)] = q
        return q

    def score(candidate: List[int]) -> float:
        quantizers = [quantizer(j, candidate[j]) for j in range(k)]
        table = MemoTable(quantizers, list(candidate), _fill_table(quantizers, X, y))
        # regularize by occupancy: a table with nearly as many cells as
        # training samples will answer unseen inputs with misses
        penalty = 0.3 * len(table.table) / len(X)
        return table.mean_relative_error(X, y) + penalty

    current = score(bits)
    for _ in range(total_bits):
        best_j, best_score = None, None
        for j in range(k):
            if bits[j] >= MAX_BITS_PER_INPUT:
                continue
            bits[j] += 1
            s = score(bits)
            bits[j] -= 1
            if best_score is None or s < best_score:
                best_j, best_score = j, s
        if best_j is None:
            break  # every input is already at the per-input bit cap
        if best_score > current - max(0.005 * current, 1e-6):
            # no meaningful refinement left: stop before slicing the input
            # space finer than the training set covers (over-fine cells
            # turn test lookups into misses)
            break
        bits[best_j] += 1
        current = best_score
    return bits


def build_memo_table(
    X: Sequence[Sequence[float]],
    y: Sequence[float],
    total_bits: int = 12,
    histogram_quantization: bool = True,
) -> MemoTable:
    """Train a lookup table: tune bits, build quantizers, fill cell means."""
    if len(X) != len(y):
        raise ValueError("X and y must have equal length")
    if not X:
        raise ValueError("cannot build a memoization table from no samples")
    bits = bit_tuning(X, y, total_bits, histogram_quantization)
    quantizers = _build_quantizers(X, bits, histogram_quantization)
    return MemoTable(quantizers, bits, _fill_table(quantizers, X, y))
