"""Context signatures (paper section 5).

A signature summarizes the run-time context of a loop so the QoS model can
pick a good tuning parameter.  For dynamic interpolation the context is the
histogram of recent relative slope changes; the signature is the ordering
of the histogram bins by count — the paper's example: signature "312"
means the 3rd bin has the largest count, then the 1st, then the 2nd.
"""
from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

DEFAULT_BINS: Tuple[float, ...] = (0.02, 0.1, 0.3, 1.0)


def histogram(changes: Sequence[float], bins: Sequence[float] = DEFAULT_BINS) -> List[int]:
    """Counts per bin; bin *k* holds changes in (bins[k-1], bins[k]], the
    final implicit bin everything above the last edge."""
    counts = [0] * (len(bins) + 1)
    edges = list(bins)
    for c in changes:
        counts[bisect.bisect_left(edges, c)] += 1
    return counts


def make_signature(changes: Sequence[float], bins: Sequence[float] = DEFAULT_BINS) -> str:
    """Rank the histogram bins by count (descending, ties by bin index) and
    concatenate their 1-based indices: the paper's "312"-style string."""
    counts = histogram(changes, bins)
    order = sorted(range(len(counts)), key=lambda k: (-counts[k], k))
    return "".join(str(k + 1) for k in order)


class QoSModel:
    """The (signature -> best tuning parameter) table built by training.

    Unknown signatures keep the previous TP (the paper's stated fallback
    policy).
    """

    def __init__(self, table: Dict[str, float] = None, default_tp: float = 0.5):
        self.table: Dict[str, float] = dict(table or {})
        self.default_tp = default_tp

    def lookup(self, signature: str, current_tp: float) -> float:
        return self.table.get(signature, current_tp)

    def __len__(self) -> int:
        return len(self.table)

    def __repr__(self) -> str:
        return f"<QoSModel {len(self.table)} signatures, default TP {self.default_tp}>"
