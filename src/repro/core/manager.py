"""Run-time management (paper section 5) and the RSkip runtime.

``RskipRuntime`` owns one :class:`LoopRuntime` per transformed target loop.
The transformed IR talks to it through ``intrin rskip.*`` calls:

==================  ========================================================
``rskip.select``    choose the PP or CP loop version for this execution
``rskip.enter``     reset per-execution predictor state
``rskip.observe``   feed one loop output (index, value, addr[, orig/args]);
                    runs phase slicing, fuzzy validation and the QoS window
``rskip.fetch``     next element index needing re-computation, or -1
``rskip.orig``      buffered read-modify-write original for that element
``rskip.arg``       buffered call argument *k* for that element
``rskip.resolve``   first re-computation result -> provisional fixed value
``rskip.need2``     1 when the first re-computation mismatched (vote needed)
``rskip.resolve2``  second re-computation result -> majority-voted value
``rskip.addr``      the element's store address (commit)
``rskip.flush``     loop ended: validate the unfinished phase
``rskip.exit``      update QoS state (may disable predictors)
==================  ========================================================

Every handler returns ``(value, charge)`` where *charge* is the list of
opcodes accounted against the program — predictor bookkeeping is paid for,
not free (see DESIGN.md).
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..ir.instructions import Opcode
from ..obs.events import (
    EXEC,
    PHASE_CUT,
    QOS_DISABLE,
    RECOMPUTE,
    RECOVERY,
    SKIP,
    TP_ADJUST,
    emit as obs_emit,
    enabled as obs_enabled,
)
from .acceptance import within_range
from .config import RSkipConfig
from .interpolation import CutEvent, PhaseSlicer, validate_phase
from .memoization import MemoStats, MemoTable
from .signature import QoSModel, make_signature
from .temporal import TemporalPredictor

#: Slope/trend bookkeeping per observed element (Figure 5's extend test;
#: the relative test |Δslope| <= TP·|slope| is strength-reduced to a
#: multiply, as a compiler would emit it).
OBSERVE_CHARGE = (
    Opcode.FSUB, Opcode.FSUB, Opcode.FABS, Opcode.FMUL, Opcode.FCMP,
    Opcode.ADD, Opcode.MOV, Opcode.MOV,
)
#: Linear prediction + fuzzy validation per interior point at a cut.
VALIDATE_CHARGE = (
    Opcode.FMUL, Opcode.FADD, Opcode.FSUB, Opcode.FABS, Opcode.FMUL, Opcode.FCMP,
)
#: Queueing one element for re-computation.
ENQUEUE_CHARGE = (Opcode.MOV, Opcode.MOV)
#: The QoS window: signature generation and table lookup.
ADJUST_CHARGE = (Opcode.ADD, Opcode.ADD, Opcode.LOAD, Opcode.MOV)

_FETCH_CHARGE = (Opcode.LOAD, Opcode.ICMP)
_READ_CHARGE = (Opcode.LOAD,)
_RESOLVE_CHARGE = (Opcode.FCMP,)
_RESOLVE2_CHARGE = (Opcode.FCMP, Opcode.FCMP)
_SELECT_CHARGE = (Opcode.LOAD, Opcode.ICMP)
_ENTER_CHARGE = (Opcode.MOV, Opcode.MOV)

#: Loop executions the QoS disable decision looks back over.  The check
#: must track the *recent* predictor quality: a long good history must not
#: mask a predictor that stopped working, nor a bad warm-up phase condemn
#: one that has since settled.
QOS_RECENT_EXECUTIONS = 8

#: Minimum memo attempts inside the recent window before the accuracy
#: verdict is trusted (below it, the sample is too small to disable on).
MEMO_QOS_MIN_ATTEMPTS = 64


@dataclass
class Element:
    """One buffered loop output awaiting validation."""

    index: int
    value: float
    addr: int
    orig: float = 0.0
    args: Tuple[float, ...] = ()


@dataclass
class SkipStats:
    """Counters the evaluation reads out (skip rate, recovery activity)."""

    elements: int = 0
    skipped_interp: int = 0
    skipped_memo: int = 0
    skipped_temporal: int = 0
    recomputed: int = 0
    endpoint_recomputes: int = 0
    interp_mispredictions: int = 0
    memo_mispredictions: int = 0
    recompute_mismatches: int = 0
    corrected_master: int = 0
    corrected_shadow: int = 0
    unresolved_votes: int = 0
    phases: int = 0
    executions_pp: int = 0
    executions_cp: int = 0
    tp_adjustments: int = 0

    @property
    def skipped(self) -> int:
        return self.skipped_interp + self.skipped_memo + self.skipped_temporal

    @property
    def skip_rate(self) -> float:
        return self.skipped / self.elements if self.elements else 0.0

    def merge(self, other: "SkipStats") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def copy(self) -> "SkipStats":
        """Snapshot of the current counter values."""
        return SkipStats(**{
            name: getattr(self, name) for name in self.__dataclass_fields__
        })

    def delta(self, since: "SkipStats") -> "SkipStats":
        """Counters accumulated after *since* was snapshotted.

        Callers measuring one run of a long-lived runtime should use
        ``snapshot = runtime.total_stats()`` before the run and
        ``runtime.total_stats().delta(snapshot)`` after it, instead of
        subtracting individual cumulative counters by hand.
        """
        return SkipStats(**{
            name: getattr(self, name) - getattr(since, name)
            for name in self.__dataclass_fields__
        })


@dataclass
class LoopProfile:
    """Trained artifacts for one target loop (see `repro.core.training`)."""

    qos: QoSModel = field(default_factory=QoSModel)
    memo: Optional[MemoTable] = None
    default_tp: Optional[float] = None


#: Linear extrapolation + relative compare per observation fed to the
#: fault-likelihood signal (same shape as the predictor's validate step).
SIGNAL_CHARGE = (
    Opcode.FMUL, Opcode.FSUB, Opcode.FSUB, Opcode.FABS, Opcode.FMUL,
    Opcode.FCMP,
)


class FaultLikelihoodSignal:
    """The RSkip predictor repurposed as a fault-likelihood monitor.

    Each observed loop output is checked against the same linear
    extrapolation the skip predictors use (``v̂ = 2·v[-1] − v[-2]``,
    Figure 5's extend test).  A value outside the acceptable range of its
    prediction is a *misprediction* — on a smooth stream that is exactly
    the symptom a soft fault leaves, so the misprediction rate over a
    sliding window acts as the fault-likelihood signal that steers the
    CKPT<i> commit interval (Aupy/Robert/Vivien: prediction-driven
    checkpointing).  Fully deterministic in the observed value stream.
    """

    def __init__(self, tolerance: float = 0.2, window: int = 16):
        self.tolerance = tolerance
        self.window = window
        self._history: Deque[float] = deque(maxlen=2)
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self.observations = 0
        self.mispredictions = 0

    def reset(self) -> None:
        self._history.clear()
        self._outcomes.clear()
        self.observations = 0
        self.mispredictions = 0

    def charge(self) -> Tuple[Opcode, ...]:
        return SIGNAL_CHARGE

    def observe(self, value: float) -> None:
        self.observations += 1
        if len(self._history) == 2:
            predicted = 2.0 * self._history[1] - self._history[0]
            miss = not within_range(value, predicted, self.tolerance)
            self._outcomes.append(miss)
            if miss:
                self.mispredictions += 1
        self._history.append(value)

    def likelihood(self) -> float:
        """Misprediction rate over the recent window, in [0, 1]."""
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)


class LoopRuntime:
    """Predictors + run-time management for one transformed loop."""

    def __init__(
        self,
        key: str,
        config: RSkipConfig,
        profile: Optional[LoopProfile] = None,
        rmw: bool = False,
    ):
        self.key = key
        self.config = config
        self.rmw = rmw
        self.profile = profile or LoopProfile()
        tp = self.profile.default_tp
        if tp is None:
            tp = config.tuning_parameter
        self._initial_tp = tp
        self.slicer = PhaseSlicer(tp, config.max_pending)
        self.payloads: List[Element] = []
        self.queue: Deque[Element] = deque()
        self.current: Optional[Element] = None
        self._rv1: Optional[float] = None
        self._need2 = False
        self.stats = SkipStats()
        self.disabled = False
        self.memo_active = (
            config.memoization and self.profile.memo is not None
        )
        self.temporal = TemporalPredictor() if config.temporal else None
        self.signatures: List[str] = []
        #: (elements, skipped) at the last ``enter`` — the per-execution
        #: delta feeds the recent-window QoS check in ``exit``.
        self._enter_mark: Tuple[int, int] = (0, 0)
        #: per-execution (elements, skipped) deltas of the most recent
        #: executions; the QoS disable decision is taken over this window.
        self._recent_execs: Deque[Tuple[int, int]] = deque(
            maxlen=QOS_RECENT_EXECUTIONS
        )
        #: (skipped_memo, memo_mispredictions) at the last ``enter``.
        self._memo_enter_mark: Tuple[int, int] = (0, 0)
        #: per-execution memo (attempts, hits) deltas of the most recent
        #: executions — the memo-QoS disable judges accuracy over this
        #: window, like the interpolation path, never whole-life counters.
        self._memo_recent: Deque[Tuple[int, int]] = deque(
            maxlen=QOS_RECENT_EXECUTIONS
        )
        #: record mode captures per-execution output traces for offline
        #: training (`repro.core.training` flips this on); each loop
        #: execution appends a fresh sublist
        self.recording: Optional[List[List[Element]]] = None

    # -- version selection & lifecycle ------------------------------------
    def select(self) -> int:
        if self.disabled:
            self.stats.executions_cp += 1
            return 0
        self.stats.executions_pp += 1
        return 1

    def enter(self) -> None:
        if self.recording is not None:
            self.recording.append([])
        if self.temporal is not None:
            self.temporal.begin_execution()
        self.slicer.reset()
        self.payloads = []
        self.queue.clear()
        self.current = None
        self._rv1 = None
        self._need2 = False
        self._enter_mark = (self.stats.elements, self.stats.skipped)
        self._memo_enter_mark = (
            self.stats.skipped_memo, self.stats.memo_mispredictions
        )

    def exit(self) -> None:
        # QoS: disable a persistently useless predictor for future runs.
        # The decision is taken over the skip rate of the most recent
        # executions, not the whole-life cumulative counters: a long good
        # history must not mask a predictor that has stopped working, and
        # a bad warm-up must not condemn one that has since settled.
        stats = self.stats
        d_elements = stats.elements - self._enter_mark[0]
        d_skipped = stats.skipped - self._enter_mark[1]
        if d_elements > 0:
            self._recent_execs.append((d_elements, d_skipped))
        recent_elements = sum(e for e, _ in self._recent_execs)
        recent_skipped = sum(s for _, s in self._recent_execs)
        if not self.disabled and recent_elements >= 4 * self.config.window:
            if recent_skipped / recent_elements < self.config.interp_min_skip:
                self.disabled = True
                if obs_enabled():
                    obs_emit(
                        QOS_DISABLE, loop=self.key, predictor="interp",
                        recent_elements=recent_elements,
                        recent_skipped=recent_skipped,
                        threshold=self.config.interp_min_skip,
                    )
        # memoization QoS "simply monitors the occurrence of misprediction
        # and disables its usage at poor run-time accuracy" (paper sec. 5).
        # Accuracy is judged over the same bounded recent window as the
        # interpolation path: a long accurate prefix must not mask a memo
        # table that a workload phase change has made stale.
        d_hits = stats.skipped_memo - self._memo_enter_mark[0]
        d_misses = stats.memo_mispredictions - self._memo_enter_mark[1]
        if d_hits + d_misses > 0:
            self._memo_recent.append((d_hits + d_misses, d_hits))
        if self.memo_active:
            recent_attempts = sum(a for a, _ in self._memo_recent)
            recent_hits = sum(h for _, h in self._memo_recent)
            if recent_attempts >= MEMO_QOS_MIN_ATTEMPTS:
                accuracy = recent_hits / recent_attempts
                if accuracy < self.config.memo_min_hit_rate:
                    self.memo_active = False
                    if obs_enabled():
                        obs_emit(
                            QOS_DISABLE, loop=self.key, predictor="memo",
                            recent_attempts=recent_attempts,
                            recent_hits=recent_hits,
                            threshold=self.config.memo_min_hit_rate,
                        )
        if obs_enabled():
            obs_emit(
                EXEC, loop=self.key,
                execution=stats.executions_pp + stats.executions_cp,
                elements=d_elements, skipped=d_skipped,
            )

    def reset(self) -> None:
        """Restore the just-constructed state.

        Everything a run can mutate goes back to its initial value: stats,
        the QoS disable flags, the tuning parameter (run-time management
        may have adjusted it), phase-slicer state, the re-computation
        queue, temporal-predictor history and the memo table's hit
        counters.  Campaign trials call this so every fault lands in a
        statistically independent execution.
        """
        self.slicer = PhaseSlicer(self._initial_tp, self.config.max_pending)
        self.payloads = []
        self.queue.clear()
        self.current = None
        self._rv1 = None
        self._need2 = False
        self.stats = SkipStats()
        self.disabled = False
        self.memo_active = (
            self.config.memoization and self.profile.memo is not None
        )
        if self.profile.memo is not None:
            self.profile.memo.stats = MemoStats()
        self.temporal = TemporalPredictor() if self.config.temporal else None
        self.signatures = []
        self.recording = None
        self._enter_mark = (0, 0)
        self._recent_execs.clear()
        self._memo_enter_mark = (0, 0)
        self._memo_recent.clear()

    # -- the observation path ------------------------------------------------
    def observe(self, element: Element) -> Tuple[int, List[Opcode]]:
        """Feed one loop output; returns (#queued for re-computation, charge)."""
        stats = self.stats
        stats.elements += 1
        charge: List[Opcode] = list(OBSERVE_CHARGE)

        if self.recording is not None:
            if not self.recording:
                self.recording.append([])
            self.recording[-1].append(element)

        # periodic run-time management: adjust TP from the context signature
        changes = self.slicer.slope_changes
        if len(changes) >= self.config.window:
            signature = make_signature(changes, self.config.signature_bins)
            self.signatures.append(signature)
            new_tp = self.profile.qos.lookup(signature, self.slicer.tp)
            if new_tp != self.slicer.tp:
                if obs_enabled():
                    obs_emit(
                        TP_ADJUST, loop=self.key, old=self.slicer.tp,
                        new=new_tp, signature=signature,
                    )
                self.slicer.set_tp(new_tp)
            stats.tp_adjustments += 1
            self.slicer.slope_changes = []
            charge.extend(ADJUST_CHARGE)

        cut = self.slicer.observe(element.index, element.value)
        if cut is None:
            self.payloads.append(element)
            return len(self.queue), charge

        phase_payloads = self.payloads
        self.payloads = [element]
        self._process_cut(cut, phase_payloads, charge)
        return len(self.queue), charge

    def flush(self) -> Tuple[int, List[Opcode]]:
        charge: List[Opcode] = []
        cut = self.slicer.flush()
        if cut is not None:
            phase_payloads = self.payloads
            self.payloads = []
            self._process_cut(cut, phase_payloads, charge)
        return len(self.queue), charge

    def _process_cut(
        self,
        cut: CutEvent,
        payloads: List[Element],
        charge: List[Opcode],
    ) -> None:
        stats = self.stats
        stats.phases += 1
        traced = obs_enabled()
        if traced:
            mark = (stats.skipped_temporal, stats.skipped_memo,
                    stats.memo_mispredictions, stats.endpoint_recomputes,
                    len(self.queue))
        by_index = {e.index: e for e in payloads}
        skipped, recompute = validate_phase(cut, self.config.acceptable_range)

        n_interior = max(len(cut.points) - 2, 0)
        charge.extend((Opcode.FSUB, Opcode.FSUB, Opcode.FDIV))  # phase slope
        for _ in range(n_interior):
            charge.extend(VALIDATE_CHARGE)

        stats.skipped_interp += len(skipped)
        temporal = self.temporal
        if temporal is not None:
            for point in skipped:
                temporal.record(point.index, point.value)
        endpoints = {cut.points[0].index, cut.points[-1].index}
        interior_failures = sum(1 for p in recompute if p.index not in endpoints)
        stats.interp_mispredictions += interior_failures

        memo = self.profile.memo if self.memo_active else None
        for point in recompute:
            element = by_index[point.index]
            if temporal is not None:
                charge.extend(temporal.charge())
                if temporal.validate(
                    element.index, element.value, self.config.acceptable_range
                ):
                    stats.skipped_temporal += 1
                    temporal.record(element.index, element.value)
                    continue
            if memo is not None and element.args:
                charge.extend(memo.charge())
                predicted = memo.predict(element.args)
                if predicted is not None and within_range(
                    element.value, predicted, self.config.acceptable_range
                ):
                    stats.skipped_memo += 1
                    if temporal is not None:
                        temporal.record(element.index, element.value)
                    continue
                stats.memo_mispredictions += 1
            if point.index in endpoints:
                stats.endpoint_recomputes += 1
            charge.extend(ENQUEUE_CHARGE)
            self.queue.append(element)

        if traced:
            d_temporal = stats.skipped_temporal - mark[0]
            d_memo = stats.skipped_memo - mark[1]
            d_memo_miss = stats.memo_mispredictions - mark[2]
            d_endpoint = stats.endpoint_recomputes - mark[3]
            queued = len(self.queue) - mark[4]
            obs_emit(
                PHASE_CUT, loop=self.key, phase=stats.phases,
                start=cut.points[0].index, end=cut.points[-1].index,
                points=len(cut.points), interior_failures=interior_failures,
                memo_misses=d_memo_miss,
            )
            for predictor, count in (
                ("interp", len(skipped)), ("temporal", d_temporal),
                ("memo", d_memo),
            ):
                if count:
                    obs_emit(SKIP, loop=self.key, phase=stats.phases,
                             predictor=predictor, count=count)
            if queued:
                obs_emit(RECOMPUTE, loop=self.key, phase=stats.phases,
                         count=queued, endpoints=d_endpoint)

    # -- the re-computation drain ---------------------------------------------
    def fetch(self) -> Tuple[int, List[Opcode]]:
        if not self.queue:
            self.current = None
            return -1, list(_FETCH_CHARGE)
        self.current = self.queue.popleft()
        self._rv1 = None
        self._need2 = False
        return self.current.index, list(_FETCH_CHARGE)

    def _require_current(self) -> Element:
        if self.current is None:
            raise RuntimeError(f"rskip runtime {self.key}: no element fetched")
        return self.current

    def orig(self) -> Tuple[float, List[Opcode]]:
        return self._require_current().orig, list(_READ_CHARGE)

    def arg(self, k: int) -> Tuple[float, List[Opcode]]:
        element = self._require_current()
        return element.args[int(k)], list(_READ_CHARGE)

    def addr(self) -> Tuple[int, List[Opcode]]:
        return self._require_current().addr, list(_READ_CHARGE)

    def resolve(self, rv: float) -> Tuple[float, List[Opcode]]:
        element = self._require_current()
        self.stats.recomputed += 1
        if rv == element.value or (rv != rv and element.value != element.value):
            self._need2 = False
            if self.temporal is not None:
                self.temporal.record(element.index, element.value)
            return element.value, list(_RESOLVE_CHARGE)
        # mismatch: the original and the redundant copy disagree —
        # a possible transient fault; majority vote over a third evaluation
        self.stats.recompute_mismatches += 1
        if obs_enabled():
            obs_emit(RECOVERY, loop=self.key, stage="detect",
                     index=element.index)
        self._need2 = True
        self._rv1 = rv
        return rv, list(_RESOLVE_CHARGE)

    def need2(self) -> Tuple[int, List[Opcode]]:
        return (1 if self._need2 else 0), list(_READ_CHARGE)

    def resolve2(self, rv2: float) -> Tuple[float, List[Opcode]]:
        element = self._require_current()
        rv1 = self._rv1
        self._need2 = False
        if rv1 == rv2:
            # both re-computations agree: the original value was corrupted
            self.stats.corrected_master += 1
            if obs_enabled():
                obs_emit(RECOVERY, loop=self.key, stage="vote",
                         verdict="master", index=element.index)
            if self.temporal is not None:
                self.temporal.record(element.index, rv1)
            return rv1, list(_RESOLVE2_CHARGE)
        if element.value == rv2:
            # the first re-computation was corrupted
            self.stats.corrected_shadow += 1
            if obs_enabled():
                obs_emit(RECOVERY, loop=self.key, stage="vote",
                         verdict="shadow", index=element.index)
            if self.temporal is not None:
                self.temporal.record(element.index, element.value)
            return element.value, list(_RESOLVE2_CHARGE)
        self.stats.unresolved_votes += 1
        if obs_enabled():
            obs_emit(RECOVERY, loop=self.key, stage="vote",
                     verdict="unresolved", index=element.index)
        return rv2, list(_RESOLVE2_CHARGE)


class RskipRuntime:
    """All loop runtimes of a transformed module + the intrinsic table."""

    def __init__(self, config: RSkipConfig):
        self.config = config
        self.loops: Dict[int, LoopRuntime] = {}

    def add_loop(
        self,
        ctx_id: int,
        key: str,
        profile: Optional[LoopProfile] = None,
        config: Optional[RSkipConfig] = None,
        rmw: bool = False,
    ) -> LoopRuntime:
        runtime = LoopRuntime(key, config or self.config, profile, rmw=rmw)
        self.loops[ctx_id] = runtime
        return runtime

    def loop(self, ctx_id: int) -> LoopRuntime:
        return self.loops[int(ctx_id)]

    def reset(self) -> None:
        """Reset every loop runtime to its just-constructed state."""
        for runtime in self.loops.values():
            runtime.reset()

    def total_stats(self) -> SkipStats:
        total = SkipStats()
        for runtime in self.loops.values():
            total.merge(runtime.stats)
        return total

    def stats_delta(self, since: SkipStats) -> SkipStats:
        """Counters accumulated since a ``total_stats()`` snapshot."""
        return self.total_stats().delta(since)

    @property
    def skip_rate(self) -> float:
        return self.total_stats().skip_rate

    # -- intrinsic table ----------------------------------------------------
    def intrinsics(self) -> Dict[str, object]:
        """Handlers for `repro.runtime.interpreter.Interpreter`."""

        def select(interp, args):
            return self.loop(args[0]).select(), _SELECT_CHARGE

        def enter(interp, args):
            self.loop(args[0]).enter()
            return 0, _ENTER_CHARGE

        def observe(interp, args):
            ctx, index, value, addr = args[0], args[1], args[2], args[3]
            rest = args[4:]
            runtime = self.loop(ctx)
            if runtime.rmw:
                element = Element(int(index), value, addr, orig=rest[0], args=tuple(rest[1:]))
            else:
                element = Element(int(index), value, addr, args=tuple(rest))
            return runtime.observe(element)

        def fetch(interp, args):
            return self.loop(args[0]).fetch()

        def orig(interp, args):
            return self.loop(args[0]).orig()

        def arg(interp, args):
            return self.loop(args[0]).arg(args[1])

        def addr(interp, args):
            return self.loop(args[0]).addr()

        def resolve(interp, args):
            return self.loop(args[0]).resolve(args[1])

        def need2(interp, args):
            return self.loop(args[0]).need2()

        def resolve2(interp, args):
            return self.loop(args[0]).resolve2(args[1])

        def flush(interp, args):
            return self.loop(args[0]).flush()

        def loop_exit(interp, args):
            self.loop(args[0]).exit()
            return 0, ()

        return {
            "rskip.select": select,
            "rskip.enter": enter,
            "rskip.observe": observe,
            "rskip.fetch": fetch,
            "rskip.orig": orig,
            "rskip.arg": arg,
            "rskip.addr": addr,
            "rskip.resolve": resolve,
            "rskip.need2": need2,
            "rskip.resolve2": resolve2,
            "rskip.flush": flush,
            "rskip.exit": loop_exit,
        }
