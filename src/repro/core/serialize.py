"""Persistence of trained profiles.

RSkip's offline training produces, per target loop, a QoS model
(signature -> TP) and optionally a memoization table.  Deployment needs
these shipped alongside the executable; this module round-trips them
through plain JSON so a profile trained once can be reloaded by any later
run (`save_profiles` / `load_profiles`).
"""
from __future__ import annotations

import json
from typing import Dict, IO, Union

from .manager import LoopProfile
from .memoization import InputQuantizer, MemoStats, MemoTable
from .signature import QoSModel

FORMAT_VERSION = 1


def profile_to_dict(profile: LoopProfile) -> dict:
    out: dict = {
        "qos": {
            "table": dict(profile.qos.table),
            "default_tp": profile.qos.default_tp,
        },
        "default_tp": profile.default_tp,
    }
    if profile.memo is not None:
        memo = profile.memo
        out["memo"] = {
            "bits": list(memo.bits),
            "edges": [list(q.edges) for q in memo.quantizers],
            "table": {
                ",".join(str(k) for k in cell): value
                for cell, value in memo.table.items()
            },
        }
    return out


def profile_from_dict(data: dict) -> LoopProfile:
    qos_data = data.get("qos", {})
    qos = QoSModel(
        {str(k): float(v) for k, v in qos_data.get("table", {}).items()},
        default_tp=float(qos_data.get("default_tp", 0.5)),
    )
    memo = None
    memo_data = data.get("memo")
    if memo_data is not None:
        quantizers = [InputQuantizer([float(e) for e in edges])
                      for edges in memo_data["edges"]]
        table = {
            tuple(int(part) for part in key.split(",")): float(value)
            for key, value in memo_data["table"].items()
        }
        memo = MemoTable(
            quantizers,
            [int(b) for b in memo_data["bits"]],
            table,
            MemoStats(),
        )
    default_tp = data.get("default_tp")
    return LoopProfile(
        qos=qos,
        memo=memo,
        default_tp=float(default_tp) if default_tp is not None else None,
    )


def profiles_to_json(profiles: Dict[str, LoopProfile]) -> str:
    payload = {
        "format": FORMAT_VERSION,
        "profiles": {key: profile_to_dict(p) for key, p in profiles.items()},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def profiles_from_json(text: str) -> Dict[str, LoopProfile]:
    payload = json.loads(text)
    version = payload.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported profile format {version!r}")
    return {
        key: profile_from_dict(data)
        for key, data in payload.get("profiles", {}).items()
    }


def save_profiles(profiles: Dict[str, LoopProfile], path_or_file: Union[str, IO]) -> None:
    text = profiles_to_json(profiles)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path_or_file.write(text)


def load_profiles(path_or_file: Union[str, IO]) -> Dict[str, LoopProfile]:
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            return profiles_from_json(handle.read())
    return profiles_from_json(path_or_file.read())
