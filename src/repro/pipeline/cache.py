"""Fingerprint-keyed artifact cache for pipeline products.

Protecting a module is deterministic: the same input text through the
same pass list always yields the same output text (the print/parse
fixpoint oracle O2 pins this).  Campaign workers, difftest oracles and
benchmarks therefore re-derive identical artifacts hundreds of times.
This cache memoizes them, keyed by **module fingerprint × scheme
descriptor hash** (plus whatever else shaped the artifact — pass list,
sync points, training parameters), with two tiers:

* an in-process LRU (:class:`ArtifactCache`), always on when caching is
  enabled;
* an optional on-disk store under ``.repro-cache/`` (one JSON file per
  key, atomic write-then-rename) that survives processes — useful for
  repeated campaign/benchmark invocations.

Payloads are JSON-safe dicts.  Protected modules are stored as printed
IR text and re-materialized on hit (parse once per key, structural
clones afterwards), so a cached artifact is byte-identical to a fresh
one *by construction* (O2 again).  Entries embed the full key:
if a module changes, its fingerprint changes, the key changes, and the
stale entry simply never resolves — invalidation is structural.

Configuration is environment-driven so every entry point (CLI, pytest,
campaign workers) agrees without plumbing:

* ``REPRO_CACHE`` — ``off`` (no caching), ``mem`` (in-process LRU, the
  default), ``on`` (LRU + disk store);
* ``REPRO_CACHE_DIR`` — disk store location (default ``.repro-cache``).
"""
from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Optional

#: Bump when payload layout changes; stale on-disk entries become misses.
CACHE_VERSION = 1

#: Default on-disk store location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

MODE_OFF = "off"
MODE_MEM = "mem"
MODE_DISK = "on"

_MODE_ALIASES = {
    "off": MODE_OFF, "0": MODE_OFF, "false": MODE_OFF, "no": MODE_OFF,
    "mem": MODE_MEM, "memory": MODE_MEM, "": MODE_MEM,
    "on": MODE_DISK, "disk": MODE_DISK, "1": MODE_DISK, "true": MODE_DISK,
    "yes": MODE_DISK,
}


def cache_mode() -> str:
    """The configured cache mode (``off`` / ``mem`` / ``on``)."""
    raw = os.environ.get("REPRO_CACHE", MODE_MEM).strip().lower()
    mode = _MODE_ALIASES.get(raw)
    if mode is None:
        raise ValueError(
            f"bad REPRO_CACHE value {raw!r}; choose off, mem, or on"
        )
    return mode


def cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


def artifact_key(*parts) -> str:
    """Stable digest over JSON-safe key *parts* (order matters)."""
    def norm(part):
        if isinstance(part, (tuple, set, frozenset)):
            return sorted(part) if isinstance(part, (set, frozenset)) else list(part)
        return part

    payload = json.dumps([norm(p) for p in parts],
                         sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """In-process LRU over JSON-safe payloads, with an optional disk tier.

    ``get`` returns a deep-ish copy-free payload — callers must treat the
    returned dict as immutable (the protect layer only reads it).  Disk
    entries are validated against :data:`CACHE_VERSION` and their own
    embedded key; anything corrupt or stale is treated as a miss and
    removed — but only if the file on disk is still the one that was
    read (:meth:`_drop_stale`), so a concurrent writer's fresh entry is
    never deleted.

    The memory tier and the hit/miss counters are guarded by a lock:
    the serve daemon's executor threads share one instance, and both
    ``OrderedDict`` reordering and ``+=`` on the counters are unsafe
    under concurrent mutation.  Disk I/O happens outside the lock —
    the disk protocol is already safe under contention (atomic
    write-then-rename, identity-checked removal).
    """

    def __init__(self, capacity: int = 64, directory: Optional[str] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.directory = directory
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.puts = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        if self.directory is not None:
            entry = self._read_disk(key)
            if entry is not None:
                with self._lock:
                    self.hits += 1
                    self.disk_hits += 1
                    self._remember(key, entry)
                return entry
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, payload: dict) -> None:
        with self._lock:
            self.puts += 1
            self._remember(key, payload)
        if self.directory is not None:
            self._write_disk(key, payload)

    def _remember(self, key: str, payload: dict) -> None:
        # caller holds self._lock
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def _read_disk(self, key: str) -> Optional[dict]:
        path = self._path(key)
        try:
            handle = open(path, "r", encoding="utf-8")
        except OSError:
            return None
        with handle:
            try:
                stamp = os.fstat(handle.fileno())
            except OSError:
                stamp = None
            try:
                record = json.load(handle)
            except ValueError:
                # unparseable entry (truncated write, manual edit): drop it
                # so it cannot shadow a future valid write-then-crash
                # sequence
                _drop_stale(path, stamp)
                return None
        if (
            not isinstance(record, dict)
            or record.get("version") != CACHE_VERSION
            or record.get("key") != key
            or not isinstance(record.get("payload"), dict)
        ):
            _drop_stale(path, stamp)
            return None
        return record["payload"]

    def _write_disk(self, key: str, payload: dict) -> None:
        record = {"version": CACHE_VERSION, "key": key, "payload": payload}
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key[:12]}-", suffix=".tmp", dir=self.directory)
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(record, handle, separators=(",", ":"))
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # a read-only or full disk degrades to memory-only caching
            pass

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses,
                "disk_hits": self.disk_hits, "puts": self.puts,
                "directory": self.directory,
            }


def _drop_stale(path: str, stamp) -> None:
    """Remove *path* only if it is still the file identified by *stamp*.

    Closes the TOCTOU between reading a corrupt/stale entry and removing
    it: a concurrent ``_write_disk`` may ``os.replace`` a fresh, valid
    entry onto *path* in between, and an unconditional ``os.remove``
    would delete that writer's work.  The fstat taken while the bad file
    was open identifies exactly what was read; if the directory entry now
    points at a different inode, the bad file is already gone and there
    is nothing to clean up.
    """
    try:
        current = os.stat(path)
    except OSError:
        return
    if stamp is not None and (
        (current.st_ino, current.st_dev) != (stamp.st_ino, stamp.st_dev)
    ):
        return
    try:
        os.remove(path)
    except OSError:
        pass


#: Tmp files older than this are presumed orphaned by a crashed writer.
STALE_TMP_AGE = 3600.0


def sweep_stale_tmp(directory: str, max_age: float = STALE_TMP_AGE) -> int:
    """Remove ``*.tmp`` files under *directory* older than *max_age* seconds.

    ``_write_disk`` (and the campaign checkpoint/section-store writers,
    which follow the same ``mkstemp`` + ``os.replace`` discipline) leak
    their temp file when the process dies between the two calls.  The
    age gate keeps a live writer's in-flight tmp safe; anything older
    has no owner.  Returns the number of files removed.
    """
    removed = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    cutoff = time.time() - max_age
    for name in names:
        if not name.endswith(".tmp"):
            continue
        path = os.path.join(directory, name)
        try:
            if os.stat(path).st_mtime >= cutoff:
                continue
            os.remove(path)
            removed += 1
        except OSError:
            continue  # vanished or unreadable: someone else's problem
    return removed


_cache: Optional[ArtifactCache] = None
_cache_signature = None
_cache_init_lock = threading.Lock()


def get_cache() -> Optional[ArtifactCache]:
    """The process-wide cache per the current environment, or ``None``
    when caching is off.  Re-reads the environment on every call so tests
    and subprocesses can flip ``REPRO_CACHE`` without import-order games;
    the instance is rebuilt only when the configuration changes.  Init is
    locked so concurrent first callers (serve executor threads) agree on
    one instance instead of each building and publishing their own."""
    global _cache, _cache_signature
    mode = cache_mode()
    if mode == MODE_OFF:
        return None
    directory = cache_dir() if mode == MODE_DISK else None
    signature = (mode, directory)
    with _cache_init_lock:
        if _cache is None or _cache_signature != signature:
            _cache = ArtifactCache(directory=directory)
            _cache_signature = signature
        return _cache


def reset_cache() -> None:
    """Drop the process-wide cache (tests; campaign workers at startup)."""
    global _cache, _cache_signature
    with _cache_init_lock:
        _cache = None
        _cache_signature = None
