"""Fingerprint-keyed artifact cache for pipeline products.

Protecting a module is deterministic: the same input text through the
same pass list always yields the same output text (the print/parse
fixpoint oracle O2 pins this).  Campaign workers, difftest oracles and
benchmarks therefore re-derive identical artifacts hundreds of times.
This cache memoizes them, keyed by **module fingerprint × scheme
descriptor hash** (plus whatever else shaped the artifact — pass list,
sync points, training parameters), with two tiers:

* an in-process LRU (:class:`ArtifactCache`), always on when caching is
  enabled;
* an optional on-disk store under ``.repro-cache/`` (one JSON file per
  key, atomic write-then-rename) that survives processes — useful for
  repeated campaign/benchmark invocations.

Payloads are JSON-safe dicts.  Protected modules are stored as printed
IR text and re-materialized on hit (parse once per key, structural
clones afterwards), so a cached artifact is byte-identical to a fresh
one *by construction* (O2 again).  Entries embed the full key:
if a module changes, its fingerprint changes, the key changes, and the
stale entry simply never resolves — invalidation is structural.

Configuration is environment-driven so every entry point (CLI, pytest,
campaign workers) agrees without plumbing:

* ``REPRO_CACHE`` — ``off`` (no caching), ``mem`` (in-process LRU, the
  default), ``on`` (LRU + disk store);
* ``REPRO_CACHE_DIR`` — disk store location (default ``.repro-cache``).
"""
from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Optional

#: Bump when payload layout changes; stale on-disk entries become misses.
CACHE_VERSION = 1

#: Default on-disk store location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

MODE_OFF = "off"
MODE_MEM = "mem"
MODE_DISK = "on"

_MODE_ALIASES = {
    "off": MODE_OFF, "0": MODE_OFF, "false": MODE_OFF, "no": MODE_OFF,
    "mem": MODE_MEM, "memory": MODE_MEM, "": MODE_MEM,
    "on": MODE_DISK, "disk": MODE_DISK, "1": MODE_DISK, "true": MODE_DISK,
    "yes": MODE_DISK,
}


def cache_mode() -> str:
    """The configured cache mode (``off`` / ``mem`` / ``on``)."""
    raw = os.environ.get("REPRO_CACHE", MODE_MEM).strip().lower()
    mode = _MODE_ALIASES.get(raw)
    if mode is None:
        raise ValueError(
            f"bad REPRO_CACHE value {raw!r}; choose off, mem, or on"
        )
    return mode


def cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


def artifact_key(*parts) -> str:
    """Stable digest over JSON-safe key *parts* (order matters)."""
    def norm(part):
        if isinstance(part, (tuple, set, frozenset)):
            return sorted(part) if isinstance(part, (set, frozenset)) else list(part)
        return part

    payload = json.dumps([norm(p) for p in parts],
                         sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """In-process LRU over JSON-safe payloads, with an optional disk tier.

    ``get`` returns a deep-ish copy-free payload — callers must treat the
    returned dict as immutable (the protect layer only reads it).  Disk
    entries are validated against :data:`CACHE_VERSION` and their own
    embedded key; anything corrupt or stale is treated as a miss and
    removed.
    """

    def __init__(self, capacity: int = 64, directory: Optional[str] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.directory = directory
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.puts = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        if self.directory is not None:
            entry = self._read_disk(key)
            if entry is not None:
                self.hits += 1
                self.disk_hits += 1
                self._remember(key, entry)
                return entry
        self.misses += 1
        return None

    def put(self, key: str, payload: dict) -> None:
        self.puts += 1
        self._remember(key, payload)
        if self.directory is not None:
            self._write_disk(key, payload)

    def _remember(self, key: str, payload: dict) -> None:
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def _read_disk(self, key: str) -> Optional[dict]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except OSError:
            return None
        except ValueError:
            # unparseable entry (truncated write, manual edit): drop it so
            # it cannot shadow a future valid write-then-crash sequence
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        if (
            not isinstance(record, dict)
            or record.get("version") != CACHE_VERSION
            or record.get("key") != key
            or not isinstance(record.get("payload"), dict)
        ):
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        return record["payload"]

    def _write_disk(self, key: str, payload: dict) -> None:
        record = {"version": CACHE_VERSION, "key": key, "payload": payload}
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key[:12]}-", suffix=".tmp", dir=self.directory)
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(record, handle, separators=(",", ":"))
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # a read-only or full disk degrades to memory-only caching
            pass

    def stats(self) -> dict:
        return {
            "entries": len(self._entries), "capacity": self.capacity,
            "hits": self.hits, "misses": self.misses,
            "disk_hits": self.disk_hits, "puts": self.puts,
            "directory": self.directory,
        }


_cache: Optional[ArtifactCache] = None
_cache_signature = None


def get_cache() -> Optional[ArtifactCache]:
    """The process-wide cache per the current environment, or ``None``
    when caching is off.  Re-reads the environment on every call so tests
    and subprocesses can flip ``REPRO_CACHE`` without import-order games;
    the instance is rebuilt only when the configuration changes."""
    global _cache, _cache_signature
    mode = cache_mode()
    if mode == MODE_OFF:
        return None
    directory = cache_dir() if mode == MODE_DISK else None
    signature = (mode, directory)
    if _cache is None or _cache_signature != signature:
        _cache = ArtifactCache(directory=directory)
        _cache_signature = signature
    return _cache


def reset_cache() -> None:
    """Drop the process-wide cache (tests; campaign workers at startup)."""
    global _cache, _cache_signature
    _cache = None
    _cache_signature = None
