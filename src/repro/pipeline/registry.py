"""The scheme registry: one declarative source of truth for protection
schemes.

Historically the repo kept four divergent scheme tables — the driver's
``("none", "swift", "swift-r", "rskip")``, the evaluation's
``UNSAFE``/``SWIFT-R``/``AR<k>`` labels, the difftest transform dicts and
the CLI choices — and each layer re-implemented name parsing.  This
module replaces all of them with :class:`SchemeDescriptor` records:
canonical name, accepted aliases, the ordered pass list the scheme runs,
its parameters (acceptable range), and what it needs at run time
(trained profiles, a stateful runtime manager).

Canonical names are the paper's labels: ``UNSAFE``, ``SWIFT``,
``SWIFT-R`` and ``AR<k>`` for the RSkip family (``AR20`` == acceptable
range 0.2), plus the post-paper families ``REPLAY<n>`` (sampled
re-execution, RepTFD) and ``CKPT<i>`` (predictor-steered
checkpoint/rollback, Aupy/Robert/Vivien).  :func:`canonical_scheme` maps
every historical spelling onto them — case-insensitively, so
``"swift-r"`` and ``"SWIFT-R"`` are the same scheme — and raises with
the full alias list on anything unknown.

Every descriptor also carries a :class:`Protocol`: the declarative
detection/recovery semantics of the scheme.  Engines never read it (they
dispatch through the scheme's intrinsic table), but the O3 metamorphic
oracle derives each scheme's fault contract from it, ``repro schemes``
prints it, and the descriptor hash covers it — so changing a scheme's
semantics invalidates cached artifacts and campaign checkpoints.
"""
from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.config import RSkipConfig

#: Bump when descriptor semantics change — part of every descriptor hash,
#: so artifact-cache entries from an older pipeline never resolve.
REGISTRY_VERSION = 2

UNSAFE = "UNSAFE"
SWIFT = "SWIFT"
SWIFT_R = "SWIFT-R"

#: The scheme order of the paper's figures.
PAPER_SCHEMES = (UNSAFE, SWIFT_R, "AR20", "AR50", "AR80", "AR100")

#: The compiler driver's historical spellings (one alias per family);
#: kept as the stable `repro.SCHEMES` export.
DRIVER_SCHEMES = ("none", "swift", "swift-r", "rskip")

#: Default listed instance of each open-parameter family beyond AR<k>.
REPLAY_DEFAULT = "REPLAY2"
CKPT_DEFAULT = "CKPT8"

#: Elements per REPLAY signature window (runtime knob, part of the
#: protocol params so it is covered by the descriptor hash).
REPLAY_WINDOW = 4


def rskip_label(acceptable_range: float) -> str:
    """Paper-style label for an acceptable range, e.g. ``0.2 -> "AR20"``."""
    return f"AR{int(round(acceptable_range * 100))}"


@dataclass(frozen=True)
class Protocol:
    """Declarative detection/recovery semantics of one scheme.

    ``detect``      how faults are noticed: ``none`` | ``dup-compare``
                    (spatially redundant copy) | ``predict-compare``
                    (value prediction validates results) |
                    ``replay-compare`` (temporal re-execution).
    ``compare``     the comparison rule feeding detection: ``none`` |
                    ``exact`` | ``range`` (fuzzy, acceptable-range) |
                    ``majority``.
    ``recovery``    the action on a mismatch: ``none`` | ``abort``
                    (raise, detected-or-masked contract) | ``vote`` |
                    ``rollback`` (both exactly-masked contracts).
    ``redundancy``  what is duplicated: ``none`` | ``space``
                    (instructions) | ``prediction`` | ``time``
                    (re-execution).
    ``flip_scope``  where O3 injects flips: ``none`` | ``shadow``
                    (``.sw1``/``.sw2`` register copies) | ``region``
                    (frames of ``protocol-region``-marked functions).
    ``verify_as``   the family instance O3 verifies — sampled protocols
                    only honour the contract at their full-coverage
                    point (e.g. ``REPLAY1``); ``None`` = verify as-is.
    ``params``      the scheme's cost knobs, ``((name, value), ...)``.
    ``overhead_hint``  cost-model hook: rough expected slowdown vs
                    UNSAFE, used for listings and tradeoff ordering
                    (measured numbers always win where available).
    """

    detect: str = "none"
    compare: str = "none"
    recovery: str = "none"
    redundancy: str = "none"
    flip_scope: str = "none"
    verify_as: Optional[str] = None
    params: Tuple[Tuple[str, float], ...] = ()
    overhead_hint: float = 1.0

    @property
    def contract(self) -> str:
        """The O3 fault contract implied by the recovery action alone.

        ``abort`` may surface a landed flip as a detection *or* mask it
        (``detected-or-masked``); correcting recoveries (``vote``,
        ``rollback``) must leave final state exactly golden
        (``exactly-masked``); ``none`` makes no promise.
        """
        if self.recovery == "abort":
            return "detected-or-masked"
        if self.recovery in ("vote", "rollback"):
            return "exactly-masked"
        return "none"

    def param(self, name: str, default: float = 0.0) -> float:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def to_dict(self) -> dict:
        return {
            "detect": self.detect,
            "compare": self.compare,
            "recovery": self.recovery,
            "redundancy": self.redundancy,
            "flip_scope": self.flip_scope,
            "verify_as": self.verify_as,
            "params": [[k, v] for k, v in self.params],
            "overhead_hint": self.overhead_hint,
        }

    def describe(self) -> str:
        """One-line rendering for ``repro schemes``."""
        knobs = ", ".join(f"{k}={v:g}" for k, v in self.params)
        return (
            f"detect={self.detect}/{self.compare} recover={self.recovery} "
            f"redundancy={self.redundancy} contract={self.contract}"
            + (f" knobs[{knobs}]" if knobs else "")
        )


@dataclass(frozen=True)
class SchemeDescriptor:
    """One protection scheme, declaratively.

    ``passes`` is the ordered list of protection-stage pass names (see
    :mod:`repro.pipeline.passes`); cleanup passes are orthogonal and
    prepended by callers that optimize.  ``acceptable_range`` is set for
    the RSkip family only.  ``protocol`` declares the scheme's
    detection/recovery semantics (see :class:`Protocol`).
    """

    name: str
    aliases: Tuple[str, ...]
    passes: Tuple[str, ...]
    acceptable_range: Optional[float] = None
    needs_training: bool = False
    needs_runtime: bool = False
    description: str = ""
    protocol: Protocol = field(default_factory=Protocol)

    @property
    def is_rskip(self) -> bool:
        return self.acceptable_range is not None

    def descriptor_hash(self) -> str:
        """Stable digest of everything that identifies this scheme —
        one axis of the artifact-cache key (and, since checkpoint
        format v3, of campaign checkpoint params)."""
        payload = json.dumps(
            {
                "version": REGISTRY_VERSION,
                "name": self.name,
                "passes": list(self.passes),
                "acceptable_range": self.acceptable_range,
                "needs_training": self.needs_training,
                "needs_runtime": self.needs_runtime,
                "protocol": self.protocol.to_dict(),
            },
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


_STATIC: Dict[str, SchemeDescriptor] = {
    UNSAFE: SchemeDescriptor(
        name=UNSAFE,
        aliases=("UNSAFE", "none"),
        passes=(),
        description="no protection (baseline and golden-output source)",
        protocol=Protocol(),
    ),
    SWIFT: SchemeDescriptor(
        name=SWIFT,
        aliases=("SWIFT", "swift"),
        passes=("swift",),
        description="instruction duplication + detection-only checkers",
        protocol=Protocol(
            detect="dup-compare", compare="exact", recovery="abort",
            redundancy="space", flip_scope="shadow", overhead_hint=2.3,
        ),
    ),
    SWIFT_R: SchemeDescriptor(
        name=SWIFT_R,
        aliases=("SWIFT-R", "swift-r"),
        passes=("swift-r",),
        description="instruction triplication + majority-vote recovery",
        protocol=Protocol(
            detect="dup-compare", compare="majority", recovery="vote",
            redundancy="space", flip_scope="shadow", overhead_hint=3.4,
        ),
    ),
}

_AR_PATTERN = re.compile(r"^ar(\d{1,3})$")
_REPLAY_PATTERN = re.compile(r"^replay(\d{1,3})$")
_CKPT_PATTERN = re.compile(r"^ckpt(\d{1,4})(fix)?$")

#: lowercase alias -> canonical name (the open-parameter families are
#: handled by pattern + their bare-name default aliases, not this table)
_ALIASES: Dict[str, str] = {
    alias.lower(): desc.name
    for desc in _STATIC.values()
    for alias in desc.aliases
}


def _rskip_descriptor(percent: int) -> SchemeDescriptor:
    return SchemeDescriptor(
        name=f"AR{percent}",
        aliases=(f"AR{percent}", f"ar{percent}", "rskip"),
        passes=("rskip",),
        acceptable_range=percent / 100.0,
        needs_training=True,
        needs_runtime=True,
        description=(
            f"prediction-based protection at acceptable range "
            f"{percent / 100.0:g} (PP/CP outlining + SWIFT-R skeleton)"
        ),
        protocol=Protocol(
            detect="predict-compare",
            compare="range" if percent else "exact",
            recovery="vote",
            redundancy="prediction",
            flip_scope="shadow",
            params=(("acceptable_range", percent / 100.0),),
            overhead_hint=1.5,
        ),
    )


def _replay_descriptor(period: int) -> SchemeDescriptor:
    """REPLAY<n>: record loop-level input/output signatures, re-execute
    every n-th signature window temporally (the same outlined body — no
    instruction duplication) and compare exactly; mismatch aborts.

    Detection only covers replayed windows, so the detected-or-masked
    contract holds in full at the ``REPLAY1`` point — that is where O3
    verifies the family (``verify_as``).
    """
    aliases = (f"REPLAY{period}", f"replay{period}")
    if period == 1:
        aliases += ("replay",)
    return SchemeDescriptor(
        name=f"REPLAY{period}",
        aliases=aliases,
        passes=("replay",),
        needs_runtime=True,
        description=(
            f"replay-based detection: re-execute every {_ordinal(period)} "
            f"signature window of {REPLAY_WINDOW} loop iterations and "
            f"compare (RepTFD; temporal redundancy, no duplication)"
        ),
        protocol=Protocol(
            detect="replay-compare",
            compare="exact",
            recovery="abort",
            redundancy="time",
            flip_scope="region",
            verify_as="REPLAY1",
            params=(
                ("sample_period", float(period)),
                ("window", float(REPLAY_WINDOW)),
            ),
            overhead_hint=1.0 + 1.0 / period,
        ),
    )


def _ckpt_descriptor(interval: int, fixed: bool = False) -> SchemeDescriptor:
    """CKPT<i>: buffer loop results and commit them at checkpoints every
    ~i iterations, validating the whole segment by re-execution first;
    a mismatch rolls the element back (re-execute + majority vote)
    instead of aborting.  The live commit interval shrinks below *i*
    when the RSkip predictor's misprediction rate — its fault-likelihood
    signal — rises (Aupy/Robert/Vivien: prediction steers checkpointing).
    The ``CKPT<i>FIX`` variant pins the interval (no predictor
    steering) — the control arm for measuring the signal's effect.
    """
    name = f"CKPT{interval}" + ("FIX" if fixed else "")
    aliases = (name, name.lower())
    if name == CKPT_DEFAULT:
        aliases += ("ckpt",)
    return SchemeDescriptor(
        name=name,
        aliases=aliases,
        passes=("ckpt",),
        needs_runtime=True,
        description=(
            f"checkpoint/restart recovery: validate-and-commit segments "
            f"every <= {interval} iterations, rollback-on-detection; "
            + ("fixed interval (no predictor steering)" if fixed else
               "interval steered by the predictor fault signal")
        ),
        protocol=Protocol(
            detect="replay-compare",
            compare="exact",
            recovery="rollback",
            redundancy="time",
            flip_scope="region",
            params=(
                ("interval", float(interval)),
                ("predictor", 0.0 if fixed else 1.0),
            ),
            overhead_hint=2.0,
        ),
    )


def _ordinal(n: int) -> str:
    if n == 1:
        return "1st (every)"
    suffix = {2: "nd", 3: "rd"}.get(n if n < 20 else n % 10, "th")
    return f"{n}{suffix}"


def alias_help() -> str:
    """Human-readable alias table for unknown-scheme errors."""
    parts = [
        f"{desc.name} (aliases: {', '.join(a for a in desc.aliases if a != desc.name)})"
        for desc in _STATIC.values()
    ]
    parts.append("AR<k> for any integer k (aliases: ar<k>; 'rskip' = the "
                 "config's acceptable range, AR20 by default; the AR "
                 "sweep goes past 100)")
    parts.append("REPLAY<n> for any sample period n >= 1 (aliases: "
                 "replay<n>; bare 'replay' = REPLAY1, the full-coverage "
                 "point)")
    parts.append(f"CKPT<i> for any checkpoint interval i >= 1 (aliases: "
                 f"ckpt<i>; bare 'ckpt' = {CKPT_DEFAULT}; CKPT<i>FIX pins "
                 f"the interval, no predictor steering)")
    return "; ".join(parts)


def canonical_scheme(
    name: Union[str, SchemeDescriptor],
    config: Optional[RSkipConfig] = None,
) -> str:
    """Map any accepted spelling onto the canonical scheme name.

    ``"rskip"`` resolves to the AR label of *config* (the default
    :class:`RSkipConfig` when none is given); bare ``"replay"`` and
    ``"ckpt"`` resolve to their family defaults.  Unknown names raise
    ``ValueError`` carrying the full alias list.
    """
    if isinstance(name, SchemeDescriptor):
        return name.name
    key = str(name).strip().lower()
    canon = _ALIASES.get(key)
    if canon is not None:
        return canon
    if key == "rskip":
        ar = (config or RSkipConfig()).acceptable_range
        return rskip_label(ar)
    if key == "replay":
        # The bare spelling is the protection *pass* name, so it must
        # mean the point whose contract the pass implements unsampled.
        return "REPLAY1"
    if key == "ckpt":
        return CKPT_DEFAULT
    match = _AR_PATTERN.match(key)
    if match:
        return f"AR{int(match.group(1))}"
    match = _REPLAY_PATTERN.match(key)
    if match:
        period = int(match.group(1))
        if period < 1:
            raise ValueError(
                f"invalid scheme {name!r}: REPLAY<n> needs a sample "
                f"period n >= 1"
            )
        return f"REPLAY{period}"
    match = _CKPT_PATTERN.match(key)
    if match:
        interval = int(match.group(1))
        if interval < 1:
            raise ValueError(
                f"invalid scheme {name!r}: CKPT<i> needs a checkpoint "
                f"interval i >= 1"
            )
        return f"CKPT{interval}" + ("FIX" if match.group(2) else "")
    raise ValueError(
        f"unknown scheme {name!r}; known schemes: {alias_help()}"
    )


def get_scheme(
    name: Union[str, SchemeDescriptor],
    config: Optional[RSkipConfig] = None,
) -> SchemeDescriptor:
    """The descriptor behind any accepted scheme spelling."""
    if isinstance(name, SchemeDescriptor):
        return name
    canon = canonical_scheme(name, config)
    static = _STATIC.get(canon)
    if static is not None:
        return static
    if canon.startswith("AR"):
        return _rskip_descriptor(int(canon[2:]))
    if canon.startswith("REPLAY"):
        return _replay_descriptor(int(canon[len("REPLAY"):]))
    fixed = canon.endswith("FIX")
    digits = canon[len("CKPT"):len(canon) - 3 if fixed else len(canon)]
    return _ckpt_descriptor(int(digits), fixed=fixed)


def scheme_names(include_paper_ars: bool = True) -> Tuple[str, ...]:
    """Canonical names for listings: the static schemes, (by default) the
    paper's four AR points, and one default point per open-parameter
    family beyond AR<k>."""
    names = tuple(_STATIC)
    if include_paper_ars:
        names += tuple(s for s in PAPER_SCHEMES if s.startswith("AR"))
    names += (REPLAY_DEFAULT, CKPT_DEFAULT)
    return names


def all_descriptors() -> Tuple[SchemeDescriptor, ...]:
    """Descriptors for :func:`scheme_names` — what ``repro schemes`` lists."""
    return tuple(get_scheme(name) for name in scheme_names())


def protection_pass_schemes() -> Tuple[Optional[str], ...]:
    """One representative label per registered protection *pass*, in
    registry order, with ``None`` for the unprotected baseline.

    This is the scheme axis for pass-level analyses (skip maps,
    vulnerability tables): those care which transform ran, not which
    parameter point, so each pass appears once.  Sourcing the axis here
    means a newly registered family shows up in every such analysis
    without edits (pinned by a regression test).
    """
    axis: List[Optional[str]] = [None]
    seen = set()
    for desc in all_descriptors():
        for pass_name in desc.passes:
            if pass_name not in seen:
                seen.add(pass_name)
                axis.append(pass_name)
    return tuple(axis)


def default_campaign_schemes(include_unsafe: bool = True) -> Tuple[str, ...]:
    """The default scheme axis for campaign-style enumerations
    (tradeoffs, figure-9 sweeps): the paper's axis first, then every
    additionally registered scheme, deduplicated in order.

    Like :func:`protection_pass_schemes` this is registry-sourced so a
    registered scheme can never silently be missing from tradeoff
    output.
    """
    names: List[str] = [
        s for s in PAPER_SCHEMES if include_unsafe or s != UNSAFE
    ]
    for name in scheme_names():
        if name not in names and (include_unsafe or name != UNSAFE):
            names.append(name)
    return tuple(names)
