"""The scheme registry: one declarative source of truth for protection
schemes.

Historically the repo kept four divergent scheme tables — the driver's
``("none", "swift", "swift-r", "rskip")``, the evaluation's
``UNSAFE``/``SWIFT-R``/``AR<k>`` labels, the difftest transform dicts and
the CLI choices — and each layer re-implemented name parsing.  This
module replaces all of them with :class:`SchemeDescriptor` records:
canonical name, accepted aliases, the ordered pass list the scheme runs,
its parameters (acceptable range), and what it needs at run time
(trained profiles, the RSkip runtime manager).

Canonical names are the paper's labels: ``UNSAFE``, ``SWIFT``,
``SWIFT-R`` and ``AR<k>`` for the RSkip family (``AR20`` == acceptable
range 0.2).  :func:`canonical_scheme` maps every historical spelling onto
them — case-insensitively, so ``"swift-r"`` and ``"SWIFT-R"`` are the
same scheme — and raises with the full alias list on anything unknown.
"""
from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..core.config import RSkipConfig

#: Bump when descriptor semantics change — part of every descriptor hash,
#: so artifact-cache entries from an older pipeline never resolve.
REGISTRY_VERSION = 1

UNSAFE = "UNSAFE"
SWIFT = "SWIFT"
SWIFT_R = "SWIFT-R"

#: The scheme order of the paper's figures.
PAPER_SCHEMES = (UNSAFE, SWIFT_R, "AR20", "AR50", "AR80", "AR100")

#: The compiler driver's historical spellings (one alias per family);
#: kept as the stable `repro.SCHEMES` export.
DRIVER_SCHEMES = ("none", "swift", "swift-r", "rskip")


def rskip_label(acceptable_range: float) -> str:
    """Paper-style label for an acceptable range, e.g. ``0.2 -> "AR20"``."""
    return f"AR{int(round(acceptable_range * 100))}"


@dataclass(frozen=True)
class SchemeDescriptor:
    """One protection scheme, declaratively.

    ``passes`` is the ordered list of protection-stage pass names (see
    :mod:`repro.pipeline.passes`); cleanup passes are orthogonal and
    prepended by callers that optimize.  ``acceptable_range`` is set for
    the RSkip family only.
    """

    name: str
    aliases: Tuple[str, ...]
    passes: Tuple[str, ...]
    acceptable_range: Optional[float] = None
    needs_training: bool = False
    needs_runtime: bool = False
    description: str = ""

    @property
    def is_rskip(self) -> bool:
        return self.acceptable_range is not None

    def descriptor_hash(self) -> str:
        """Stable digest of everything that identifies this scheme —
        one axis of the artifact-cache key."""
        payload = json.dumps(
            {
                "version": REGISTRY_VERSION,
                "name": self.name,
                "passes": list(self.passes),
                "acceptable_range": self.acceptable_range,
                "needs_training": self.needs_training,
                "needs_runtime": self.needs_runtime,
            },
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


_STATIC: Dict[str, SchemeDescriptor] = {
    UNSAFE: SchemeDescriptor(
        name=UNSAFE,
        aliases=("UNSAFE", "none"),
        passes=(),
        description="no protection (baseline and golden-output source)",
    ),
    SWIFT: SchemeDescriptor(
        name=SWIFT,
        aliases=("SWIFT", "swift"),
        passes=("swift",),
        description="instruction duplication + detection-only checkers",
    ),
    SWIFT_R: SchemeDescriptor(
        name=SWIFT_R,
        aliases=("SWIFT-R", "swift-r"),
        passes=("swift-r",),
        description="instruction triplication + majority-vote recovery",
    ),
}

_AR_PATTERN = re.compile(r"^ar(\d{1,3})$")

#: lowercase alias -> canonical name (the RSkip family is handled by
#: pattern + the ``rskip`` default-config alias, not this table)
_ALIASES: Dict[str, str] = {
    alias.lower(): desc.name
    for desc in _STATIC.values()
    for alias in desc.aliases
}


def _rskip_descriptor(percent: int) -> SchemeDescriptor:
    return SchemeDescriptor(
        name=f"AR{percent}",
        aliases=(f"AR{percent}", f"ar{percent}", "rskip"),
        passes=("rskip",),
        acceptable_range=percent / 100.0,
        needs_training=True,
        needs_runtime=True,
        description=(
            f"prediction-based protection at acceptable range "
            f"{percent / 100.0:g} (PP/CP outlining + SWIFT-R skeleton)"
        ),
    )


def alias_help() -> str:
    """Human-readable alias table for unknown-scheme errors."""
    parts = [
        f"{desc.name} (aliases: {', '.join(a for a in desc.aliases if a != desc.name)})"
        for desc in _STATIC.values()
    ]
    parts.append("AR<k> for any integer k (aliases: ar<k>; 'rskip' = the "
                 "config's acceptable range, AR20 by default; the AR "
                 "sweep goes past 100)")
    return "; ".join(parts)


def canonical_scheme(
    name: Union[str, SchemeDescriptor],
    config: Optional[RSkipConfig] = None,
) -> str:
    """Map any accepted spelling onto the canonical scheme name.

    ``"rskip"`` resolves to the AR label of *config* (the default
    :class:`RSkipConfig` when none is given).  Unknown names raise
    ``ValueError`` carrying the full alias list.
    """
    if isinstance(name, SchemeDescriptor):
        return name.name
    key = str(name).strip().lower()
    canon = _ALIASES.get(key)
    if canon is not None:
        return canon
    if key == "rskip":
        ar = (config or RSkipConfig()).acceptable_range
        return rskip_label(ar)
    match = _AR_PATTERN.match(key)
    if match:
        return f"AR{int(match.group(1))}"
    raise ValueError(
        f"unknown scheme {name!r}; known schemes: {alias_help()}"
    )


def get_scheme(
    name: Union[str, SchemeDescriptor],
    config: Optional[RSkipConfig] = None,
) -> SchemeDescriptor:
    """The descriptor behind any accepted scheme spelling."""
    if isinstance(name, SchemeDescriptor):
        return name
    canon = canonical_scheme(name, config)
    static = _STATIC.get(canon)
    if static is not None:
        return static
    return _rskip_descriptor(int(canon[2:]))


def scheme_names(include_paper_ars: bool = True) -> Tuple[str, ...]:
    """Canonical names for listings: the static schemes plus (by default)
    the paper's four AR points."""
    names = tuple(_STATIC)
    if include_paper_ars:
        names += tuple(s for s in PAPER_SCHEMES if s.startswith("AR"))
    return names


def all_descriptors() -> Tuple[SchemeDescriptor, ...]:
    """Descriptors for :func:`scheme_names` — what ``repro schemes`` lists."""
    return tuple(get_scheme(name) for name in scheme_names())
