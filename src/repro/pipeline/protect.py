"""Scheme application through the registry, pass manager and cache.

:func:`protect` is the one routine every layer (driver, evaluation
harness, campaign workers, difftest, benchmarks) goes through to turn an
unprotected module into a protected one.  It resolves the scheme
descriptor, runs the descriptor's pass list via
:func:`repro.pipeline.passes.run_pipeline`, and — when caching is
enabled — memoizes the result keyed by module fingerprint × scheme
descriptor hash.

Cache-hit semantics are engineered for byte-identity with the uncached
path:

* the protected module is stored as printed IR text; a hit parses it
  back (memoized per key — later hits take a structural
  :meth:`Module.clone` of the parsed template), so ``format_module`` of
  a cached module equals the stored text exactly (the difftest O2
  fixpoint oracle pins this property, and a clone prints exactly like
  its parse);
* function attributes (provenance, ``protected``, pragmas) are not part
  of the textual IR, so they are stored alongside and re-applied;
* RSkip target layouts are stored too, and the (stateful, never cached)
  run-time manager is rebuilt fresh from them with the *caller's* config
  and profiles via :func:`repro.core.rskip.rebuild_application`;
* the per-pass ``pass-run`` events are replayed from the stored counts,
  so observability traces do not depend on cache warmth (pinned by the
  campaign trace-equality tests).  Only the wall-clock spans differ —
  those live in the manifest channel, which is explicitly
  non-deterministic.
"""
from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from ..core.config import RSkipConfig
from ..core.manager import LoopProfile
from ..core.protocol import rebuild_protocol_application
from ..core.rskip import RskipApplication, TargetLayout, rebuild_application
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import format_module
from ..ir.verifier import verify_module
from ..transforms.swift import DETECT_INTRINSIC
from .cache import ArtifactCache, artifact_key, get_cache
from .passes import (
    CLEANUP_PASSES,
    CLEANUP_PIPELINE,
    PassRun,
    ProtectContext,
    emit_pass_run,
    protocol_kwargs,
    run_pipeline,
    swift_detected,
)
from .registry import SchemeDescriptor, get_scheme

#: Cleanup pass name -> the driver's historical reporting key.
_OPT_REPORT_NAMES = {"simplify": "constfold"}


@dataclass
class ProtectedProgram:
    """One scheme applied to one module, plus everything run time needs."""

    scheme: str  # canonical name, e.g. "AR20"
    descriptor: SchemeDescriptor
    module: Module
    intrinsics: Dict[str, object] = field(default_factory=dict)
    #: RskipApplication or ProtocolApplication (duck-typed: .layouts,
    #: .runtime, .intrinsics())
    application: Optional[object] = None
    pass_runs: List[PassRun] = field(default_factory=list)
    optimizations: Dict[str, int] = field(default_factory=dict)
    cache_hit: bool = False


def _optimizations_from_runs(runs: List[PassRun]) -> Dict[str, int]:
    return {
        _OPT_REPORT_NAMES.get(run.name, run.name): run.result
        for run in runs
        if run.name in CLEANUP_PASSES and run.name != "clone"
    }


def _collect_attrs(module: Module) -> Dict[str, dict]:
    return {
        name: dict(func.attrs)
        for name, func in module.functions.items()
        if func.attrs
    }


def _apply_attrs(module: Module, attrs: Dict[str, dict]) -> None:
    for name, values in attrs.items():
        func = module.functions.get(name)
        if func is not None:
            func.attrs.update(values)


def _module_key(
    fingerprint: str,
    descriptor: SchemeDescriptor,
    passes: Iterable[str],
    sync_points: Optional[Iterable[str]],
) -> str:
    sync = "all" if sync_points is None else sorted(sync_points)
    return artifact_key(
        "protected-module", fingerprint, descriptor.descriptor_hash(),
        list(passes), sync,
    )


def protect(
    module: Module,
    scheme: Union[str, SchemeDescriptor],
    *,
    config: Optional[RSkipConfig] = None,
    profiles: Optional[Dict[str, LoopProfile]] = None,
    optimize: bool = False,
    verify: bool = False,
    sync_points: Optional[Iterable[str]] = None,
    ar_overrides: Optional[Dict[str, float]] = None,
    use_cache: bool = True,
    cache: Optional[ArtifactCache] = None,
) -> ProtectedProgram:
    """Apply *scheme* (any accepted spelling) to *module*.

    On a cache miss (or with ``use_cache=False``) the module is
    transformed **in place** and returned; on a hit a freshly parsed,
    byte-identical module is returned and the input stays untouched.
    Callers relying on in-place mutation (the driver's documented
    contract) must pass ``use_cache=False``.  An explicit *cache* object
    overrides the environment-configured one (tests, selfcheck).

    ``config``/``profiles``/``ar_overrides`` shape only the run-time
    manager, never the module surgery, so they are deliberately not part
    of the cache key — the runtime is rebuilt fresh on every call.
    """
    descriptor = get_scheme(scheme, config)
    if descriptor.is_rskip:
        config = (config or RSkipConfig()).with_ar(descriptor.acceptable_range)
    passes = (tuple(CLEANUP_PIPELINE) if optimize else ()) + descriptor.passes

    if not passes:
        return ProtectedProgram(descriptor.name, descriptor, module)

    if cache is None:
        cache = get_cache() if use_cache else None
    key = None
    if cache is not None:
        from ..runtime.compiler import module_fingerprint

        key = _module_key(
            module_fingerprint(module), descriptor, passes, sync_points)
        payload = cache.get(key)
        if payload is not None:
            return _rebuild_from_payload(
                descriptor, payload, config, profiles, ar_overrides, key=key)

    ctx = ProtectContext(
        config=config, profiles=profiles, ar_overrides=ar_overrides,
        sync_points=sync_points, descriptor=descriptor,
    )
    runs = run_pipeline(module, passes, verify=verify, context=ctx)

    if cache is not None:
        layouts = (
            [layout.to_dict() for layout in ctx.application.layouts]
            if ctx.application is not None else None
        )
        cache.put(key, {
            "kind": "protected-module",
            "scheme": descriptor.name,
            "text": format_module(module),
            "attrs": _collect_attrs(module),
            "layouts": layouts,
            "pass_runs": [run.to_dict() for run in runs],
            "optimizations": _optimizations_from_runs(runs),
        })

    return ProtectedProgram(
        scheme=descriptor.name,
        descriptor=descriptor,
        module=module,
        intrinsics=dict(ctx.intrinsics),
        application=ctx.application,
        pass_runs=runs,
        optimizations=_optimizations_from_runs(runs),
    )


#: Parsed-module templates per cache key: re-parsing the stored IR text
#: dominates hit cost, so each key is parsed once per process and later
#: hits take a structural :meth:`Module.clone` instead (byte-identical —
#: the clone prints exactly like its parse).  Keys are content-addressed
#: (fingerprint × descriptor), so entries can never go stale.
_TEMPLATE_CAP = 32
_templates: "OrderedDict[str, Module]" = OrderedDict()
#: serve executor threads hit the template LRU concurrently; parsing
#: happens outside the lock (a duplicate parse is wasted work, not a
#: correctness problem — first insert wins), reorder/evict inside it
_templates_lock = threading.Lock()


def _module_from_text(text: str, key: Optional[str]) -> Module:
    if key is None:
        return parse_module(text)
    with _templates_lock:
        template = _templates.get(key)
        if template is not None:
            _templates.move_to_end(key)
    if template is None:
        parsed = parse_module(text)
        with _templates_lock:
            template = _templates.setdefault(key, parsed)
            _templates.move_to_end(key)
            while len(_templates) > _TEMPLATE_CAP:
                _templates.popitem(last=False)
    return template.clone()


def _rebuild_from_payload(
    descriptor: SchemeDescriptor,
    payload: dict,
    config: Optional[RSkipConfig],
    profiles: Optional[Dict[str, LoopProfile]],
    ar_overrides: Optional[Dict[str, float]],
    key: Optional[str] = None,
) -> ProtectedProgram:
    module = _module_from_text(payload["text"], key)
    _apply_attrs(module, payload.get("attrs", {}))

    intrinsics: Dict[str, object] = {}
    application = None
    protocol_pass = next(
        (p for p in descriptor.passes if p in ("replay", "ckpt")), None)
    if protocol_pass is not None:
        layouts = [TargetLayout.from_dict(d) for d in payload.get("layouts") or []]
        application = rebuild_protocol_application(
            module, layouts, protocol_pass,
            **protocol_kwargs(descriptor, protocol_pass))
        intrinsics.update(application.intrinsics())
    elif payload.get("layouts") is not None:
        layouts = [TargetLayout.from_dict(d) for d in payload["layouts"]]
        application = rebuild_application(
            module, layouts, config, profiles, ar_overrides)
        intrinsics.update(application.intrinsics())
    elif "swift" in descriptor.passes:
        intrinsics[DETECT_INTRINSIC] = swift_detected

    runs = [PassRun.from_dict(d) for d in payload.get("pass_runs", [])]
    for run in runs:
        emit_pass_run(run.name, run.instrs_in, run.instrs_out)

    return ProtectedProgram(
        scheme=descriptor.name,
        descriptor=descriptor,
        module=module,
        intrinsics=intrinsics,
        application=application,
        pass_runs=runs,
        optimizations=dict(payload.get("optimizations", {})),
        cache_hit=True,
    )


def selfcheck_byte_identity(
    text: str,
    schemes: Iterable[Union[str, SchemeDescriptor]] = ("SWIFT", "SWIFT-R", "AR20"),
    optimize: bool = True,
) -> List[str]:
    """Protect the program in *text* with the cache bypassed, then again
    through a miss and a hit, and compare the printed modules bytewise.

    Returns human-readable mismatch descriptions (empty == all equal).
    Used by ``repro cache-check`` and ``make verify``.
    """
    problems: List[str] = []
    for scheme in schemes:
        descriptor = get_scheme(scheme)

        def run_once(**kwargs) -> str:
            program = protect(
                parse_module(text), descriptor, optimize=optimize, **kwargs)
            verify_module(program.module)
            return format_module(program.module)

        baseline = run_once(use_cache=False)
        if run_once(use_cache=False) != baseline:
            problems.append(
                f"{descriptor.name}: uncached protection is nondeterministic")
            continue

        scratch = ArtifactCache()
        if run_once(cache=scratch) != baseline:
            problems.append(
                f"{descriptor.name}: cache-miss module differs from uncached")
        if scratch.puts != 1:
            problems.append(
                f"{descriptor.name}: expected one cache fill, saw "
                f"{scratch.puts}")
        if run_once(cache=scratch) != baseline:
            problems.append(
                f"{descriptor.name}: cache-hit module differs from uncached")
        if scratch.hits != 1:
            problems.append(
                f"{descriptor.name}: expected a cache hit on re-protection, "
                f"saw {scratch.hits} hits / {scratch.misses} misses")
    return problems
