"""Scheme registry, pass pipeline and artifact cache (DESIGN.md §7).

The single source of truth for protection schemes: what they are called
(:mod:`.registry`), what passes they run (:mod:`.passes`), and how their
products are memoized (:mod:`.cache`, :mod:`.protect`).
"""
from .cache import (
    ArtifactCache,
    artifact_key,
    cache_dir,
    cache_mode,
    get_cache,
    reset_cache,
)
from .passes import (
    CLEANUP_PASSES,
    CLEANUP_PIPELINE,
    PROTECTION_APPLIERS,
    PROTECTIONS,
    PassRun,
    PassVerificationError,
    ProtectContext,
    module_instr_count,
    pass_names,
    run_pipeline,
)
from .protect import ProtectedProgram, protect, selfcheck_byte_identity
from .registry import (
    CKPT_DEFAULT,
    DRIVER_SCHEMES,
    PAPER_SCHEMES,
    REPLAY_DEFAULT,
    SWIFT,
    SWIFT_R,
    UNSAFE,
    Protocol,
    SchemeDescriptor,
    all_descriptors,
    alias_help,
    canonical_scheme,
    default_campaign_schemes,
    get_scheme,
    protection_pass_schemes,
    rskip_label,
    scheme_names,
)

__all__ = [
    "ArtifactCache", "artifact_key", "cache_dir", "cache_mode",
    "get_cache", "reset_cache",
    "CLEANUP_PASSES", "CLEANUP_PIPELINE", "PROTECTION_APPLIERS",
    "PROTECTIONS", "PassRun", "PassVerificationError", "ProtectContext",
    "module_instr_count", "pass_names", "run_pipeline",
    "ProtectedProgram", "protect", "selfcheck_byte_identity",
    "CKPT_DEFAULT", "DRIVER_SCHEMES", "PAPER_SCHEMES", "REPLAY_DEFAULT",
    "SWIFT", "SWIFT_R", "UNSAFE", "Protocol", "SchemeDescriptor",
    "all_descriptors", "alias_help", "canonical_scheme",
    "default_campaign_schemes", "get_scheme", "protection_pass_schemes",
    "rskip_label", "scheme_names",
]
