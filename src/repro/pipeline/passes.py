"""Named IR passes and the pass manager that runs them.

This module owns the only scheme→transform tables in the repo:

* :data:`CLEANUP_PASSES` — semantics-preserving module passes
  (``dce``/``cse``/``licm``/``simplify``/``clone``), plain
  ``fn(module) -> result`` callables;
* :data:`PROTECTION_APPLIERS` — protection transforms
  (``swift``/``swift-r``/``rskip``/``replay``/``ckpt``) as context-aware
  appliers that record the intrinsics table and (for the runtime-managed
  families) the runtime application on a :class:`ProtectContext`;
* :data:`PROTECTIONS` — the historical ``fn(module) -> intrinsics dict``
  view of the appliers, kept for the difftest oracles.

:func:`run_pipeline` executes a named pass list in order with the
guarantees the compilation system needs: optional verifier runs between
passes (a broken pass is reported *by name*), one ``pass-run``
observability event per pass (name plus in/out instruction counts,
guarded by the zero-cost ``enabled()`` check), and per-pass wall-clock
spans that fold into the run manifest.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.config import RSkipConfig
from ..core.manager import LoopProfile
from ..core.protocol import ProtocolApplication, apply_protocol
from ..core.rskip import RskipApplication, apply_rskip
from ..ir.module import Module
from ..ir.verifier import VerificationError, verify_module
from ..obs.events import PASS_RUN
from ..obs.events import emit as obs_emit
from ..obs.events import enabled as obs_enabled
from ..obs.events import span as obs_span
from ..runtime.errors import FaultDetectedError
from ..transforms.clone import duplicate_into_module
from ..transforms.cse import run_cse_module
from ..transforms.dce import run_dce_module
from ..transforms.licm import run_licm_module
from ..transforms.simplify import run_simplify_module
from ..transforms.swift import (
    ALL_SYNC_POINTS,
    DETECT_INTRINSIC,
    apply_swift,
    apply_swift_r,
)

#: The cleanup pipeline the driver runs before protection.
CLEANUP_PIPELINE = ("simplify", "licm", "cse", "dce")


def swift_detected(interp, args):
    """The linked SWIFT checker handler: abort the run on a mismatch."""
    raise FaultDetectedError("SWIFT detected a transient fault")


def _clone_pass(module: Module) -> object:
    """Clone main into a renamed sibling (exercises the renaming machinery;
    the clone is never called, so semantics must be untouched)."""
    if "main" in module.functions and "main.ck" not in module.functions:
        duplicate_into_module(module, "main", "main.ck")
    return None


#: Semantics-preserving cleanup passes, applied in place.
CLEANUP_PASSES: Dict[str, Callable[[Module], object]] = {
    "dce": run_dce_module,
    "cse": run_cse_module,
    "licm": run_licm_module,
    "simplify": run_simplify_module,
    "clone": _clone_pass,
}


@dataclass
class ProtectContext:
    """Inputs a protection pass may need and outputs it produces."""

    config: Optional[RSkipConfig] = None
    profiles: Optional[Dict[str, LoopProfile]] = None
    ar_overrides: Optional[Dict[str, float]] = None
    sync_points: Optional[Iterable[str]] = None
    intrinsics: Dict[str, object] = field(default_factory=dict)
    application: Optional[object] = None  # RskipApplication | ProtocolApplication
    #: the resolved SchemeDescriptor (set by protect()); protocol passes
    #: read their cost knobs from its Protocol.  None in the compat path,
    #: where each family falls back to its bare-alias default point.
    descriptor: Optional[object] = None

    @property
    def effective_sync_points(self) -> Iterable[str]:
        return ALL_SYNC_POINTS if self.sync_points is None else self.sync_points


def _apply_swift_ctx(module: Module, ctx: ProtectContext) -> None:
    apply_swift(module, sync_points=ctx.effective_sync_points)
    ctx.intrinsics[DETECT_INTRINSIC] = swift_detected


def _apply_swift_r_ctx(module: Module, ctx: ProtectContext) -> None:
    apply_swift_r(module, sync_points=ctx.effective_sync_points)


def _apply_rskip_ctx(module: Module, ctx: ProtectContext) -> None:
    ctx.application = apply_rskip(
        module, ctx.config, ctx.profiles, ar_overrides=ctx.ar_overrides
    )
    ctx.intrinsics.update(ctx.application.intrinsics())


def protocol_kwargs(descriptor, pass_name: str) -> Dict[str, object]:
    """Runtime knobs for a protocol pass, read from the descriptor's
    :class:`~repro.pipeline.registry.Protocol` params.

    With no descriptor (the compat ``PROTECTIONS`` path) each family
    resolves its bare pass-name alias — ``replay`` is REPLAY1, the
    full-coverage point whose contract the unparameterized transform
    honours, and ``ckpt`` is the default CKPT point.
    """
    if descriptor is None:
        from .registry import get_scheme

        descriptor = get_scheme(pass_name)
    proto = descriptor.protocol
    if pass_name == "replay":
        return {
            "sample_period": int(proto.param("sample_period", 1.0)),
            "window": int(proto.param("window", 4.0)),
        }
    return {
        "interval": int(proto.param("interval", 8.0)),
        "predictor": bool(proto.param("predictor", 1.0)),
    }


def _apply_replay_ctx(module: Module, ctx: ProtectContext) -> None:
    ctx.application = apply_protocol(
        module, "replay", **protocol_kwargs(ctx.descriptor, "replay"))
    ctx.intrinsics.update(ctx.application.intrinsics())


def _apply_ckpt_ctx(module: Module, ctx: ProtectContext) -> None:
    ctx.application = apply_protocol(
        module, "ckpt", **protocol_kwargs(ctx.descriptor, "ckpt"))
    ctx.intrinsics.update(ctx.application.intrinsics())


#: Protection transforms: pass name -> context-aware in-place applier.
PROTECTION_APPLIERS: Dict[str, Callable[[Module, ProtectContext], None]] = {
    "swift": _apply_swift_ctx,
    "swift-r": _apply_swift_r_ctx,
    "rskip": _apply_rskip_ctx,
    "replay": _apply_replay_ctx,
    "ckpt": _apply_ckpt_ctx,
}


def _compat_protection(name: str) -> Callable[[Module], dict]:
    def apply(module: Module) -> dict:
        ctx = ProtectContext()
        PROTECTION_APPLIERS[name](module, ctx)
        return ctx.intrinsics

    apply.__name__ = f"apply_{name.replace('-', '_')}"
    return apply


#: Protection transforms in the historical ``fn(module) -> intrinsics``
#: shape the difftest oracles consume.
PROTECTIONS: Dict[str, Callable[[Module], dict]] = {
    name: _compat_protection(name) for name in PROTECTION_APPLIERS
}


def pass_names() -> tuple:
    """Every registered pass name (cleanups then protections)."""
    return tuple(CLEANUP_PASSES) + tuple(PROTECTION_APPLIERS)


class PassVerificationError(VerificationError):
    """The verifier rejected the module right after a named pass."""

    def __init__(self, pass_name: str, cause: VerificationError):
        super().__init__(
            f"verifier rejected module after pass {pass_name!r}: {cause}"
        )
        self.pass_name = pass_name


@dataclass
class PassRun:
    """One executed pass: name, result and module size before/after."""

    name: str
    instrs_in: int
    instrs_out: int
    result: object = None

    def to_dict(self) -> dict:
        data = {"name": self.name, "instrs_in": self.instrs_in,
                "instrs_out": self.instrs_out}
        if isinstance(self.result, int):
            data["result"] = self.result
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PassRun":
        return cls(data["name"], data["instrs_in"], data["instrs_out"],
                   data.get("result"))


def module_instr_count(module: Module) -> int:
    return sum(
        1 for func in module.functions.values() for _ in func.instructions()
    )


def emit_pass_run(name: str, instrs_in: int, instrs_out: int) -> None:
    """The ``pass-run`` event site (also replayed on artifact-cache hits,
    so traces are byte-identical whether or not the cache was warm)."""
    if obs_enabled():
        obs_emit(PASS_RUN, name=name, instrs_in=instrs_in,
                 instrs_out=instrs_out)


def run_pipeline(
    module: Module,
    passes: Sequence[str],
    *,
    verify: bool = True,
    context: Optional[ProtectContext] = None,
) -> List[PassRun]:
    """Run named *passes* over *module* in place, in order.

    With ``verify=True`` the IR verifier runs after every pass and a
    rejection is raised as :class:`PassVerificationError` naming the
    offending pass.  Each pass emits a ``pass-run`` event (when tracing
    is on) and times itself under a ``pass:<name>`` span.
    """
    ctx = context if context is not None else ProtectContext()
    runs: List[PassRun] = []
    for name in passes:
        cleanup = CLEANUP_PASSES.get(name)
        applier = None if cleanup is not None else PROTECTION_APPLIERS.get(name)
        if cleanup is None and applier is None:
            raise ValueError(
                f"unknown pass {name!r}; registered passes: "
                f"{', '.join(pass_names())}"
            )
        instrs_in = module_instr_count(module)
        with obs_span(f"pass:{name}"):
            result = cleanup(module) if cleanup is not None else applier(module, ctx)
        instrs_out = module_instr_count(module)
        emit_pass_run(name, instrs_in, instrs_out)
        runs.append(PassRun(name, instrs_in, instrs_out, result))
        if verify:
            try:
                verify_module(module)
            except PassVerificationError:
                raise
            except VerificationError as exc:
                raise PassVerificationError(name, exc) from exc
    return runs
