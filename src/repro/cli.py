"""Command-line entry point: regenerate any table or figure of the paper.

::

    python -m repro table1
    python -m repro figure2
    python -m repro figure7  [--scale 0.6] [--inputs 1]
    python -m repro figure8a
    python -m repro figure8b [--inputs 10]
    python -m repro figure9  [--trials 100] [--scale 0.35] [--jobs 4]
                             [--checkpoint fig9.json] [--resume]
    python -m repro tradeoff [--trials 60] [--jobs 4]
    python -m repro costratio
    python -m repro difftest [--seed 0] [--n 200] [--oracle all] [--shrink]
                             [--jobs 4]
    python -m repro schemes
    python -m repro cache-check [--corpus difftest/corpus]
    python -m repro run blackscholes --scheme AR50 --trace-out t.jsonl
    python -m repro campaign lud --scheme AR100 --trials 200 --jobs 4 \\
                             --trace-out t.jsonl
    python -m repro report t.jsonl
    python -m repro serve [--port 8787] [--workers 4]
    python -m repro all

The global ``--backend {ref,compiled,batch}`` flag selects the execution
backend for clean runs (default ``compiled``); instrumented runs always
use the reference interpreter.  ``batch`` additionally routes campaign
trial chunks through the lane-vectorized batch engine
(``repro.runtime.batch``), which runs every trial of a chunk in lockstep.
"""
from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from .eval import (
    Harness,
    charts,
    cost_ratio,
    figure2,
    figure7,
    figure8a,
    figure8b,
    figure9,
    reporting,
    section73,
    table1,
)
from .pipeline.registry import PAPER_SCHEMES, canonical_scheme, get_scheme, scheme_names
from .workloads import ALL_WORKLOADS, get_workload


def _scheme_arg(value: str) -> str:
    """argparse type for ``--scheme``: any registry spelling, canonicalized.

    The accepted set comes from the scheme registry, so the CLI can never
    drift from the schemes the library actually implements.
    """
    try:
        return canonical_scheme(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


_SCHEME_HELP = (
    f"protection scheme: one of {', '.join(scheme_names())} "
    f"(any AR<k>; lowercase aliases like 'swift-r' and 'rskip' accepted)"
)


def _timed(label):
    class _Timer:
        def __enter__(self):
            self.t0 = time.time()
            print(f"== {label} ==")
            return self

        def __exit__(self, *exc):
            print(f"   ({time.time() - self.t0:.1f}s)\n")

    return _Timer()


def cmd_table1(args) -> None:
    with _timed("Table 1: selected benchmarks"):
        print(reporting.render_table1(table1(ALL_WORKLOADS, scale=args.scale)))


def cmd_figure2(args) -> None:
    with _timed("Figure 2: coverage of predictable computations"):
        print(reporting.render_figure2(figure2(ALL_WORKLOADS, scale=args.scale)))


def cmd_figure7(args) -> None:
    with _timed("Figure 7: performance overhead"):
        result = figure7(ALL_WORKLOADS, scale=args.scale, test_count=args.inputs)
        for metric, title, pct in (
            ("skip", "7a: average skip rate", True),
            ("time", "7b: normalized execution time", False),
            ("instructions", "7c: normalized dynamic instructions", False),
            ("ipc", "7d: normalized IPC", False),
        ):
            print(f"-- Figure {title} --")
            print(reporting.render_figure7(result, metric, pct=pct))
            print()
        averages = result.averages()
        print("-- averages (normalized execution time) --")
        print(charts.bar_chart(
            [(a.scheme, a.norm_time) for a in averages], fmt="{:.2f}x"
        ))
        print()


def cmd_figure8a(args) -> None:
    with _timed("Figure 8a: blackscholes predictor ablation"):
        print(reporting.render_figure8a(figure8a(get_workload("blackscholes"), scale=args.scale)))


def cmd_figure8b(args) -> None:
    with _timed("Figure 8b: lud input diversity (AR20)"):
        print(
            reporting.render_figure8b(
                figure8b(get_workload("lud"), inputs=args.inputs, scale=max(args.scale, 1.0))
            )
        )


def _profile_source_factory(scale):
    harnesses = {}

    def profile_source(workload, ar):
        harness = harnesses.get(workload.name)
        if harness is None:
            harness = Harness(workload, scale=scale, timing=False)
            harnesses[workload.name] = harness
        return harness.profiles_for(ar)

    return profile_source


def cmd_figure9(args) -> None:
    from .eval import eta_printer

    schemes = PAPER_SCHEMES
    sfi_scale = min(args.scale, 0.45)  # injection runs use smaller problems
    resume = getattr(args, "resume", False)
    checkpoint = getattr(args, "checkpoint", None)
    if resume and checkpoint is None:
        checkpoint = "figure9-checkpoint.json"
    jobs = args.jobs
    label = f"{args.trials} trials per scheme"
    if jobs > 1:
        label += f", {jobs} jobs"
    with _timed(f"Figure 9: fault injection ({label})"):
        results = figure9(
            ALL_WORKLOADS,
            schemes=schemes,
            trials=args.trials,
            scale=sfi_scale,
            profile_source=_profile_source_factory(sfi_scale),
            jobs=jobs,
            checkpoint=checkpoint,
            resume=resume,
            progress=eta_printer("figure9") if jobs > 1 or checkpoint else None,
        )
        print("-- Figure 9a: outcome breakdown --")
        print(reporting.render_figure9a(results, schemes))
        print()
        from .runtime import Outcome

        rows = []
        for scheme in schemes:
            group = [c for (w, s), c in results.items() if s == scheme]
            shares = {
                str(o): sum(c.rate(o) for c in group) / len(group)
                for o in Outcome
            }
            rows.append((scheme, shares))
        print(charts.stacked_chart(rows, [str(o) for o in Outcome],
                                   title="outcome shares per scheme"))
        print()
        print("-- Figure 9b: false negatives --")
        print(reporting.render_figure9b(results))


def cmd_tradeoff(args) -> None:
    with _timed("Section 7.3: acceptable-range tradeoff"):
        rows = section73(
            ALL_WORKLOADS,
            trials=args.trials,
            perf_scale=args.scale,
            sfi_scale=min(args.scale, 0.45),
            jobs=args.jobs,
        )
        print(reporting.render_tradeoff(rows))


def cmd_sweep(args) -> None:
    from .eval import ar_sweep, render_sweep

    workload = get_workload(args.workload)
    with _timed(f"Acceptable-range continuum: {workload.name}"):
        points = ar_sweep(
            workload, scale=args.scale, trials=args.trials,
            sfi_scale=min(args.scale, 0.45), jobs=args.jobs,
        )
        print(render_sweep(workload.name, points))


def cmd_scaling(args) -> None:
    from .eval import render_scaling, scaling_study

    workload = get_workload(args.workload)
    with _timed(f"Problem-size scaling: {workload.name}"):
        rows = scaling_study(workload)
        print(render_scaling(workload.name, rows))


def cmd_costratio(args) -> None:
    with _timed("Section 2: prediction vs re-computation cost"):
        for workload in ALL_WORKLOADS:
            print(f"  {cost_ratio(workload)}")


def cmd_all(args) -> None:
    cmd_table1(args)
    cmd_figure2(args)
    cmd_costratio(args)
    cmd_figure7(args)
    cmd_figure8a(args)
    cmd_figure8b(args)
    cmd_figure9(args)
    cmd_tradeoff(args)


def cmd_difftest(args) -> None:
    from .difftest import render_report, run_difftest

    t0 = time.time()
    report = run_difftest(
        seed=args.seed,
        n=args.n,
        oracle=args.oracle,
        jobs=args.jobs,
        fault_samples=args.fault_samples,
        shrink=args.shrink,
        corpus_dir=args.corpus if args.shrink else None,
    )
    # timing on stderr: stdout stays byte-identical for any --jobs
    print(f"difftest: {args.n} programs in {time.time() - t0:.1f}s "
          f"({args.jobs} jobs)", file=sys.stderr)
    print(render_report(report))
    if report.violations:
        sys.exit(1)


def cmd_skipmap(args) -> None:
    """Exhaustive skip-site model checking rendered as a per-scheme table."""
    from .eval.skipmap import render_skipmap, skip_vulnerability_table

    t0 = time.time()
    table = skip_vulnerability_table(
        seed=args.seed,
        programs=args.programs,
        site_cap=args.site_cap,
        burst_len=args.burst_len,
    )
    # timing on stderr: stdout stays deterministic
    print(f"skipmap: {args.programs} program(s) in {time.time() - t0:.1f}s",
          file=sys.stderr)
    print(render_skipmap(table))


def cmd_schemes(args) -> None:
    """List every registered protection scheme from the registry."""
    from .pipeline import CLEANUP_PIPELINE, all_descriptors

    print("registered protection schemes "
          "(canonical name first; any alias is accepted everywhere):")
    for desc in all_descriptors():
        aliases = ", ".join(a for a in desc.aliases if a != desc.name)
        passes = " -> ".join(desc.passes) if desc.passes else "(none)"
        params = []
        if desc.acceptable_range is not None:
            params.append(f"acceptable_range={desc.acceptable_range:g}")
        if desc.needs_training:
            params.append("needs_training")
        if desc.needs_runtime:
            params.append("needs_runtime")
        print(f"  {desc.name:<8} {desc.description}")
        print(f"           aliases: {aliases or '-'}")
        print(f"           passes:  {passes}")
        print(f"           protocol: {desc.protocol.describe()}")
        if desc.protocol.verify_as:
            print(f"           verified-as: {desc.protocol.verify_as} "
                  f"(full-coverage contract point)")
        if params:
            print(f"           params:  {', '.join(params)}")
    print(f"  (AR<k> is accepted for any integer k; 'rskip' resolves to "
          f"the config's acceptable range; REPLAY<n> replays every n-th "
          f"window and CKPT<i>[FIX] checkpoints every i elements, FIX "
          f"pinning the interval against the fault-likelihood signal)")
    print(f"  cleanup pipeline before protection when optimizing: "
          f"{' -> '.join(CLEANUP_PIPELINE)}")


def cmd_cache_check(args) -> None:
    """Byte-identity audit: cached vs uncached protection over the corpus."""
    import glob

    from .pipeline import ArtifactCache, protect, selfcheck_byte_identity
    from .ir.parser import parse_module
    from .ir.printer import format_module

    paths = sorted(glob.glob(os.path.join(args.corpus, "*.ir")))
    if not paths:
        print(f"cache-check: no .ir programs under {args.corpus}",
              file=sys.stderr)
        sys.exit(2)

    problems: List[str] = []
    with _timed(f"cache-check: {len(paths)} corpus programs "
                f"x {{SWIFT, SWIFT-R, AR20}} x {{off, miss, hit, disk}}"):
        for path in paths:
            name = os.path.basename(path)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            for problem in selfcheck_byte_identity(text):
                problems.append(f"{name}: {problem}")

            # disk tier: fill through one cache instance, read back through
            # a fresh one sharing only the directory (cross-process shape)
            import tempfile

            with tempfile.TemporaryDirectory(prefix="repro-cache-") as tmp:
                baseline = protect(parse_module(text), "AR20",
                                   optimize=True, use_cache=False)
                writer = ArtifactCache(directory=tmp)
                protect(parse_module(text), "AR20", optimize=True,
                        cache=writer)
                reader = ArtifactCache(directory=tmp)
                hit = protect(parse_module(text), "AR20", optimize=True,
                              cache=reader)
                if not hit.cache_hit or reader.disk_hits != 1:
                    problems.append(
                        f"{name}: disk store did not serve the re-protection")
                elif (format_module(hit.module)
                        != format_module(baseline.module)):
                    problems.append(
                        f"{name}: disk-cache module differs from uncached")
        for problem in problems:
            print(f"   MISMATCH {problem}")
        if not problems:
            print(f"   all protected modules byte-identical with the "
                  f"cache off, cold, warm and disk-backed")

    # campaign-section store: count entries and let the cache's read path
    # audit each one (corrupt or stale entries are removed on read)
    from .eval import SectionStore, campaign_store_dir

    store_dir = campaign_store_dir()
    entries = sorted(
        name[:-len(".json")]
        for name in (os.listdir(store_dir) if os.path.isdir(store_dir) else ())
        if name.endswith(".json")
    )
    if entries:
        store = SectionStore(capacity=max(len(entries), 1))
        valid = sum(1 for key in entries if store.get(key) is not None)
        dropped = len(entries) - valid
        line = (f"   campaign-section store ({store_dir}): "
                f"{valid} valid entries")
        if dropped:
            line += f", {dropped} corrupt/stale removed"
        print(line)
    else:
        print(f"   campaign-section store ({store_dir}): empty")

    # orphaned atomic-write temp files: a crashed writer between mkstemp
    # and os.replace leaves `.*.tmp` files behind; age-gated so live
    # writers (including other processes mid-write) are never touched
    from .pipeline.cache import cache_dir, sweep_stale_tmp

    swept = sweep_stale_tmp(cache_dir()) + sweep_stale_tmp(store_dir)
    print(f"   stale .tmp files swept: {swept}")
    if problems:
        sys.exit(1)


def cmd_run(args) -> None:
    """One measured (workload, scheme) execution, optionally traced."""
    from dataclasses import asdict

    workload = get_workload(args.workload)
    harness = Harness(workload, scale=args.scale, seed=args.seed)
    sink = None
    run_id = ""
    if args.trace_out:
        from .obs import JsonlSink, install_sink, run_id_for

        run_id = run_id_for("run", workload.name, args.scheme,
                            args.scale, args.seed)
        sink = JsonlSink(args.trace_out)
        install_sink(sink, run_id=run_id)
    try:
        with _timed(f"run: {workload.name} under {args.scheme}"):
            inp = workload.test_inputs(1, seed=args.seed + 17,
                                       scale=args.scale)[0]
            golden = harness.run_scheme("UNSAFE", inp)
            record = harness.run_scheme(args.scheme, inp,
                                        golden=golden.output)
            print(f"   steps={record.steps}  cycles={record.cycles}  "
                  f"ipc={record.ipc:.2f}  correct={record.correct}")
            if record.skip_rate is not None:
                print(f"   skip rate {record.skip_rate:.1%}")
    finally:
        if sink is not None:
            from .obs import remove_sink

            remove_sink()
            sink.close()
    if sink is not None:
        from .obs import RunManifest, manifest_path_for
        from .runtime import default_backend
        from .runtime.compiler import module_fingerprint

        totals = {}
        if record.stats is not None:
            totals = {k: v for k, v in asdict(record.stats).items() if v}
        prepared = harness.prepare_scheme(args.scheme)
        RunManifest(
            run=run_id,
            command="run",
            backend=default_backend(),
            params={"workload": workload.name, "scheme": args.scheme,
                    "scale": args.scale, "seed": args.seed},
            fingerprints={
                f"{workload.name}|{args.scheme}":
                    module_fingerprint(prepared.module),
            },
            totals=totals,
            events=sink.count,
            spans=list(sink.spans),
        ).write(args.trace_out)
        print(f"   trace: {args.trace_out} ({sink.count} events), "
              f"manifest: {manifest_path_for(args.trace_out)}")


def cmd_campaign(args) -> None:
    """One (workload, scheme) fault-injection campaign, optionally traced."""
    from .eval import eta_printer, run_campaign_parallel
    from .runtime import Outcome

    workload = get_workload(args.workload)
    sfi_scale = min(args.scale, 0.45)
    descriptor = get_scheme(args.scheme)
    profiles = None
    if descriptor.needs_training:
        profiles = _profile_source_factory(sfi_scale)(
            workload, descriptor.acceptable_range
        )
    stratified = args.stratified or args.incremental
    if stratified:
        if args.jobs > 1:
            print("campaign: --stratified/--incremental run single-process "
                  "(sections already bound the work); drop --jobs",
                  file=sys.stderr)
            sys.exit(2)
        if args.checkpoint or args.resume or args.trace_out:
            print("campaign: --stratified/--incremental do not combine with "
                  "--checkpoint/--resume/--trace-out (the section store is "
                  "the persistence layer)", file=sys.stderr)
            sys.exit(2)
        _cmd_campaign_stratified(args, workload, sfi_scale, profiles)
        return
    label = f"{args.trials} trials"
    if args.jobs > 1:
        label += f", {args.jobs} jobs"
    with _timed(f"campaign: {workload.name} under {args.scheme} ({label})"):
        result = run_campaign_parallel(
            workload, args.scheme, trials=args.trials, seed=args.seed,
            scale=sfi_scale, profiles=profiles, jobs=args.jobs,
            checkpoint=args.checkpoint, resume=args.resume,
            progress=eta_printer("campaign") if args.jobs > 1 else None,
            trace_out=args.trace_out,
        )
        for outcome in Outcome:
            count = result.tallies.get(outcome, 0)
            if count:
                print(f"   {outcome.name:<10} {count:>5}  "
                      f"({count / result.trials:6.1%})")
        print(f"   detected={result.detected}  caught={result.caught}  "
              f"false negatives={result.false_negatives}")
    if args.trace_out:
        from .obs import manifest_path_for

        print(f"   trace: {args.trace_out}, "
              f"manifest: {manifest_path_for(args.trace_out)}")


def _cmd_campaign_stratified(args, workload, sfi_scale, profiles) -> None:
    """Stratified / incremental campaign path of ``repro campaign``."""
    from .eval import SectionStore, run_campaign_stratified
    from .runtime import Outcome

    store = SectionStore() if args.incremental else None
    mode = "incremental" if args.incremental else "stratified"
    with _timed(f"campaign: {workload.name} under {args.scheme} "
                f"({args.trials} trials, {mode})"):
        outcome = run_campaign_stratified(
            workload, args.scheme, trials=args.trials, seed=args.seed,
            scale=sfi_scale, profiles=profiles, store=store,
            reuse=args.incremental,
        )
        result = outcome.result
        for kind in Outcome:
            count = result.tallies.get(kind, 0)
            if count:
                print(f"   {kind.name:<10} {count:>5}  "
                      f"({count / result.trials:6.1%})")
        print(f"   detected={result.detected}  caught={result.caught}  "
              f"false negatives={result.false_negatives}")
        print(f"   sections: {len(outcome.sections)}  "
              f"reused {outcome.reused_sections} "
              f"({outcome.reused_trials} trials)  "
              f"injected {outcome.injected_sections} "
              f"({outcome.injected_trials} trials)")
        for report in outcome.sections:
            tag = "reused  " if report.reused else "injected"
            print(f"     {tag} {report.name:<24} steps={report.step_count:<8} "
                  f"trials={report.trials}")
    if store is not None:
        print(f"   section store: {store.directory}")


def cmd_serve(args) -> None:
    """Run the protection-as-a-service HTTP/JSON daemon (Ctrl-C stops)."""
    from .serve import run_serve

    run_serve(
        host=args.host, port=args.port, state_dir=args.state_dir,
        workers=args.workers, job_workers=args.job_workers,
        max_inflight=args.max_inflight, per_client=args.per_client,
    )


def cmd_report(args) -> None:
    """Render a trace report, or (legacy) write the markdown results file."""
    if getattr(args, "trace", None):
        from .obs import RunManifest, load_trace, render_trace_report

        events = load_trace(args.trace)
        manifest = RunManifest.load(args.trace)
        print(render_trace_report(events, manifest))
        return
    _cmd_report_markdown(args)


def _cmd_report_markdown(args) -> None:
    """Run everything and write a markdown results report."""
    import contextlib
    import io

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        cmd_all(args)
    body = buffer.getvalue()

    lines = ["# RSkip reproduction — measured results", ""]
    lines.append(
        f"Generated by `python -m repro report` "
        f"(scale {args.scale}, {args.trials} SFI trials per scheme)."
    )
    lines.append("")
    for raw in body.splitlines():
        if raw.startswith("== "):
            lines.append(f"## {raw.strip('= ').strip()}")
            lines.append("")
        elif raw.startswith("-- "):
            lines.append(f"### {raw.strip('- ').strip()}")
            lines.append("")
        elif raw.startswith("   ("):
            lines.append(f"_{raw.strip()}_")
            lines.append("")
        else:
            lines.append(f"    {raw}" if raw.strip() else "")
    text = "\n".join(lines).rstrip() + "\n"
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the RSkip paper (CGO'20).",
    )
    parser.add_argument("--scale", type=float, default=0.6,
                        help="problem-size multiplier (default 0.6)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for fault-injection campaigns "
                             "(default 1 = serial; results are identical for "
                             "any value)")
    parser.add_argument("--backend", choices=("ref", "compiled", "batch"),
                        default=None,
                        help="execution backend for clean (uninstrumented) "
                             "runs: 'compiled' (default) is the closure-"
                             "compiled fast backend, 'ref' forces the "
                             "reference interpreter everywhere; instrumented "
                             "runs always use the reference interpreter")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1").set_defaults(fn=cmd_table1)
    sub.add_parser("figure2").set_defaults(fn=cmd_figure2)
    p7 = sub.add_parser("figure7")
    p7.add_argument("--inputs", type=int, default=1)
    p7.set_defaults(fn=cmd_figure7)
    sub.add_parser("figure8a").set_defaults(fn=cmd_figure8a)
    p8b = sub.add_parser("figure8b")
    p8b.add_argument("--inputs", type=int, default=10)
    p8b.set_defaults(fn=cmd_figure8b)
    p9 = sub.add_parser("figure9")
    p9.add_argument("--trials", type=int, default=100)
    p9.add_argument("--checkpoint", default=None,
                    help="JSON file partial tallies are saved to after every "
                         "trial chunk")
    p9.add_argument("--resume", action="store_true",
                    help="skip the chunks the checkpoint file already holds "
                         "(default file: figure9-checkpoint.json)")
    p9.set_defaults(fn=cmd_figure9)
    ptr = sub.add_parser("tradeoff")
    ptr.add_argument("--trials", type=int, default=60)
    ptr.set_defaults(fn=cmd_tradeoff)
    sub.add_parser("costratio").set_defaults(fn=cmd_costratio)
    psw = sub.add_parser("sweep")
    psw.add_argument("--workload", default="backprop")
    psw.add_argument("--trials", type=int, default=0)
    psw.set_defaults(fn=cmd_sweep)
    psc = sub.add_parser("scaling")
    psc.add_argument("--workload", default="lud")
    psc.set_defaults(fn=cmd_scaling)
    pdt = sub.add_parser(
        "difftest",
        help="differential-test the IR stack on seeded random programs",
    )
    pdt.add_argument("--seed", type=int, default=0)
    pdt.add_argument("--n", type=int, default=100,
                     help="programs to generate and check (default 100)")
    pdt.add_argument("--oracle",
                     choices=("all", "o1", "o2", "o3", "o4", "o5", "o6",
                              "o7"),
                     default="all",
                     help="o1=pipeline equivalence, o2=print/parse fixpoint, "
                          "o3=fault metamorphic property, o4=backend "
                          "equivalence, o5=batch-lane equivalence, "
                          "o6=exhaustive single-skip model checking, "
                          "o7=incremental campaign equivalence "
                          "(default all)")
    pdt.add_argument("--jobs", type=int, default=1,
                     help="worker processes; the report is byte-identical "
                          "for any value (default 1)")
    pdt.add_argument("--fault-samples", type=int, default=12,
                     help="shadow-flip trials per O3 check (default 12)")
    pdt.add_argument("--shrink", action="store_true",
                     help="delta-minimize failing programs")
    pdt.add_argument("--corpus", default="difftest/corpus",
                     help="directory shrunk counterexamples are written to "
                          "(default difftest/corpus)")
    pdt.set_defaults(fn=cmd_difftest)
    psk = sub.add_parser(
        "skipmap",
        help="enumerate every single-skip site of bounded generated "
             "programs and tabulate per-scheme outcomes",
    )
    psk.add_argument("--seed", type=int, default=0)
    psk.add_argument("--programs", type=int, default=3,
                     help="generated programs to model-check (default 3)")
    psk.add_argument("--site-cap", type=int, default=400,
                     help="exhaustive-enumeration ceiling; larger dynamic "
                          "streams are stride-sampled (default 400)")
    psk.add_argument("--burst-len", type=int, default=1,
                     help="drop this many consecutive instructions per "
                          "site (default 1 = single skip)")
    psk.set_defaults(fn=cmd_skipmap)
    psch = sub.add_parser(
        "schemes",
        help="list registered protection schemes, aliases and pass lists",
    )
    psch.set_defaults(fn=cmd_schemes)
    pcc = sub.add_parser(
        "cache-check",
        help="verify cached and uncached protection are byte-identical "
             "over the difftest corpus",
    )
    pcc.add_argument("--corpus", default="difftest/corpus",
                     help="directory of .ir programs to audit "
                          "(default difftest/corpus)")
    pcc.set_defaults(fn=cmd_cache_check)
    pall = sub.add_parser("all")
    pall.add_argument("--trials", type=int, default=60)
    pall.add_argument("--inputs", type=int, default=10)
    pall.set_defaults(fn=cmd_all)
    prun = sub.add_parser(
        "run", help="run one workload under one scheme, optionally tracing"
    )
    prun.add_argument("workload")
    prun.add_argument("--scheme", type=_scheme_arg, default="AR50",
                      help=_SCHEME_HELP)
    prun.add_argument("--seed", type=int, default=1)
    prun.add_argument("--trace-out", default=None, metavar="TRACE.jsonl",
                      help="write observability events (JSONL) plus a run "
                           "manifest alongside; render with `repro report "
                           "TRACE.jsonl`")
    prun.set_defaults(fn=cmd_run)
    pca = sub.add_parser(
        "campaign",
        help="one (workload, scheme) fault-injection campaign",
    )
    pca.add_argument("workload")
    pca.add_argument("--scheme", type=_scheme_arg, default="AR50",
                     help=_SCHEME_HELP)
    pca.add_argument("--trials", type=int, default=100)
    pca.add_argument("--seed", type=int, default=0)
    pca.add_argument("--checkpoint", default=None)
    pca.add_argument("--resume", action="store_true")
    pca.add_argument("--stratified", action="store_true",
                     help="allocate trials to code sections proportionally "
                          "to dynamic step count, each section drawing from "
                          "its own fingerprint-keyed seed stream")
    pca.add_argument("--incremental", action="store_true",
                     help="stratified campaign that persists per-section "
                          "tallies under .repro-cache/campaigns/ and reuses "
                          "them for sections unchanged since the last run")
    pca.add_argument("--trace-out", default=None, metavar="TRACE.jsonl",
                     help="merge per-trial observability events from every "
                          "worker shard into TRACE.jsonl (byte-identical "
                          "for any --jobs) plus a run manifest")
    pca.set_defaults(fn=cmd_campaign)
    psv = sub.add_parser(
        "serve",
        help="protection-as-a-service: an asyncio HTTP/JSON daemon over "
             "the pipeline (POST /protect /train /run /campaigns)",
    )
    psv.add_argument("--host", default="127.0.0.1")
    psv.add_argument("--port", type=int, default=8787,
                     help="TCP port (0 picks a free one; the bound port is "
                          "printed on the 'listening' line)")
    psv.add_argument("--state-dir", default=None,
                     help="job records, campaign checkpoints and request "
                          "manifests (default <cache-dir>/serve)")
    psv.add_argument("--workers", type=int, default=4,
                     help="request executor threads (default 4)")
    psv.add_argument("--job-workers", type=int, default=1,
                     help="concurrent background campaign jobs (default 1)")
    psv.add_argument("--max-inflight", type=int, default=32,
                     help="global admitted-request budget; beyond it POSTs "
                          "get 429 + Retry-After (default 32)")
    psv.add_argument("--per-client", type=int, default=8,
                     help="per-client in-flight cap (default 8)")
    psv.set_defaults(fn=cmd_serve)
    prep = sub.add_parser("report")
    prep.add_argument("trace", nargs="?", default=None,
                      help="a trace written by --trace-out; renders per-loop "
                           "skip timelines, QoS-disable causes and recovery "
                           "activity (omit for the legacy markdown results "
                           "report)")
    prep.add_argument("--trials", type=int, default=60)
    prep.add_argument("--inputs", type=int, default=10)
    prep.add_argument("--output", default="results.md")
    prep.set_defaults(fn=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.backend is not None:
        from .runtime import set_default_backend

        set_default_backend(args.backend)
        # campaign pool workers are fresh processes; they pick the
        # backend up from the environment
        os.environ["REPRO_BACKEND"] = args.backend
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
