"""repro — a reproduction of "Low-Cost Prediction-Based Fault Protection
Strategy" (Park, Li, Zhang, Mahlke — CGO 2020): the RSkip compiler and
runtime, its SWIFT/SWIFT-R baselines, and every substrate they need.

Quick tour
----------

>>> from repro import workloads
>>> from repro.eval import Harness
>>> w = workloads.get_workload("sgemm")
>>> harness = Harness(w, scale=0.5)
>>> inp = w.test_inputs(1, scale=0.5)[0]
>>> records = harness.run_all(["SWIFT-R", "AR20"], inp)  # doctest: +SKIP

Package map (see DESIGN.md for the full inventory):

* ``repro.ir`` — the IR substrate (builder, parser, verifier)
* ``repro.analysis`` — CFG/dominators/loops/def-use/cost/patterns
* ``repro.runtime`` — interpreter, timing model, memory, fault injector
* ``repro.transforms`` — SWIFT, SWIFT-R, DCE, constant folding
* ``repro.core`` — RSkip: transform, predictors, runtime management, training
* ``repro.pipeline`` — scheme registry, pass manager, artifact cache
* ``repro.workloads`` — the nine Table 1 benchmarks
* ``repro.eval`` — every figure and table of the evaluation
"""
from . import analysis, core, eval, ir, pipeline, runtime, transforms, workloads
from .driver import CompiledProgram, SCHEMES, compile_protected
from .pipeline import (
    SchemeDescriptor,
    canonical_scheme,
    get_scheme,
    protect,
    scheme_names,
)

__version__ = "1.0.0"

__all__ = [
    "analysis", "core", "eval", "ir", "pipeline", "runtime", "transforms",
    "workloads",
    "CompiledProgram", "SCHEMES", "compile_protected",
    "SchemeDescriptor", "canonical_scheme", "get_scheme", "protect",
    "scheme_names",
    "__version__",
]
