"""Detection of RSkip approximation-target loops (paper section 4).

A *target loop* stores, once per iteration, a float value produced by an
expensive computation — either a reduction (child loop) or a call to a
costly function — at an address that is an affine function of the
induction variable.  Loops computing pointers, or with low computational
overhead (initialization), are filtered out by the cost threshold and the
type checks; they fall back to conventional protection.

The detector also powers the Table 1 reproduction: for every workload it
reports the *computation type of the prediction target* and the *location
of the detected loop*.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.function import Function
from ..ir.instructions import Opcode
from ..ir.module import Module
from ..ir.values import Const, GlobalAddr, Reg, Value
from .cfg import CFG
from .costmodel import DEFAULT_TRIP, estimate_function_cost, instr_cost
from .defuse import Chains, Site, compute_chains, compute_slice, defining_instr
from .loops import InductionInfo, Loop, find_induction, find_loops

#: Minimum per-iteration cost for a loop to be worth predicting.
MIN_TARGET_COST = 40
#: Minimum callee cost for a call to count as an expensive user function.
MIN_CALL_COST = 40

_AFFINE_OPS = frozenset(
    {Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SHL, Opcode.SITOFP}
)


class PatternKind(enum.Enum):
    """Computation type of the prediction target (Table 1 vocabulary)."""

    FUNCTION_CALL = "a function call"
    REDUCTION_LOOP = "a reduction loop"
    NESTED_REDUCTION = "nested reduction loops"
    NESTED_REDUCTION_COND = "nested reduction loops with conditional statement"
    REDUCTION_VARYING = "a reduction loop with a varying trip count"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class TargetLoop:
    """One detected optimization candidate, ready for the RSkip transform."""

    func_name: str
    loop: Loop
    ind: InductionInfo
    region_labels: List[str]
    region_entry: str
    store_site: Site
    value_reg: Reg
    addr_value: Value
    addr_sites: List[Site]
    live_ins: List[Reg]
    rmw_load_sites: List[Site]
    kind: PatternKind
    per_iter_cost: int
    inside_outer_loop: bool
    callee: Optional[str] = None

    @property
    def location(self) -> str:
        return "Inside a outer loop" if self.inside_outer_loop else "Top level"

    def describe(self) -> str:
        return (
            f"@{self.func_name}:{self.loop.header}: {self.kind} "
            f"(cost/iter ~{self.per_iter_cost}, {self.location.lower()})"
        )


def _region_of(func: Function, loop: Loop, ind: InductionInfo) -> Optional[Tuple[List[str], str]]:
    """Body region: loop blocks minus header and the induction-update block.

    Requires single entry (the in-loop successor of the header).  Returns
    (region labels in block order, entry label).
    """
    header_block = func.blocks[loop.header]
    in_loop_succs = [s for s in header_block.successors() if s in loop.blocks]
    if len(in_loop_succs) != 1:
        return None
    entry = in_loop_succs[0]
    region = [
        label
        for label in func.block_order()
        if label in loop.blocks and label not in (loop.header, ind.update_block)
    ]
    if entry not in region:
        return None
    return region, entry


def _expr_key(func: Function, value: Value, chains: Chains, region: Set[str], depth: int = 0):
    """Structural key of a value's defining expression within the region.

    Live-ins (registers defined outside the region) and constants are
    leaves; everything else recurses through its single definition.  Used to
    recognize read-modify-write loads whose address equals the store address
    even when computed into different registers.
    """
    if isinstance(value, Const):
        return ("const", value.ty, value.value)
    if isinstance(value, GlobalAddr):
        return ("global", value.name)
    assert isinstance(value, Reg)
    sites = [s for s in chains.def_sites(value.name) if s[0] in region]
    if len(sites) != 1 or depth > 12:
        return ("reg", value.name)
    instr = defining_instr(func, sites[0])
    if instr.op not in _AFFINE_OPS:
        return ("opaque", value.name)
    return (instr.op,) + tuple(
        _expr_key(func, a, chains, region, depth + 1) for a in instr.args
    )


def _classify(
    func: Function,
    module: Optional[Module],
    loop: Loop,
    region: Sequence[str],
    slice_sites: Sequence[Site],
) -> Tuple[Optional[PatternKind], Optional[str]]:
    """Determine the pattern kind for a value slice, or (None, None) if the
    computation is too cheap to be a target."""
    # expensive call?
    for site in slice_sites:
        instr = defining_instr(func, site)
        if instr.op is Opcode.CALL:
            callee_cost = 0
            if module is not None and instr.callee in module.functions:
                callee_cost = estimate_function_cost(module.functions[instr.callee], module)
            if callee_cost >= MIN_CALL_COST:
                return PatternKind.FUNCTION_CALL, instr.callee

    children = loop.children
    slice_blocks = {s[0] for s in slice_sites}
    involved = [c for c in children if c.blocks & slice_blocks]
    if not involved:
        return None, None

    nested = any(c.children for c in involved)
    varying = _has_varying_trip(func, involved, loop)
    conditional = _has_conditional(func, involved)
    if nested and conditional:
        return PatternKind.NESTED_REDUCTION_COND, None
    if nested:
        return PatternKind.NESTED_REDUCTION, None
    if varying:
        return PatternKind.REDUCTION_VARYING, None
    if conditional:
        return PatternKind.NESTED_REDUCTION_COND, None
    return PatternKind.REDUCTION_LOOP, None


def _has_conditional(func: Function, loops: Sequence[Loop]) -> bool:
    """True if some block inside a child loop (transitively), other than a
    loop header, ends in a conditional branch — a data-dependent 'if'."""
    for loop in loops:
        headers = {loop.header} | {c.header for c in loop.children}
        stack = list(loop.children)
        while stack:
            c = stack.pop()
            headers.add(c.header)
            stack.extend(c.children)
        for label in loop.blocks:
            if label in headers:
                continue
            block = func.blocks[label]
            term = block.terminator
            if term is not None and term.op is Opcode.CBR:
                return True
    return False


def _has_varying_trip(func: Function, children: Sequence[Loop], outer: Loop) -> bool:
    """True when a child loop's trip count varies across executions of the
    detected loop (lud's 'reduction loop with a varying trip count'): its
    bound is the detected loop's induction variable, or a register defined
    inside an enclosing loop of the detected loop."""
    cfg = CFG(func)
    outer_ind = find_induction(func, outer, cfg)
    enclosing_blocks: Set[str] = set()
    ancestor = outer.parent
    while ancestor is not None:
        enclosing_blocks |= ancestor.blocks
        ancestor = ancestor.parent
    enclosing_blocks -= outer.blocks

    for child in children:
        ind = find_induction(func, child, cfg)
        if ind is None:
            continue
        for value in (ind.bound, ind.start):
            if not isinstance(value, Reg):
                continue
            if outer_ind is not None and value.name == outer_ind.reg.name:
                return True
            for label in enclosing_blocks:
                for instr in func.blocks[label].instrs:
                    if instr.dest is not None and instr.dest.name == value.name:
                        return True
    return False


def _affine_only(func: Function, sites: Sequence[Site]) -> bool:
    return all(defining_instr(func, s).op in _AFFINE_OPS for s in sites)


def _region_cost(func: Function, loop: Loop, region: Sequence[str], module: Optional[Module]) -> int:
    """Per-iteration cost of the region, child loops weighted by DEFAULT_TRIP."""
    depth_of: Dict[str, int] = {}
    stack = [(c, 1) for c in loop.children]
    while stack:
        child, d = stack.pop()
        for label in child.blocks:
            depth_of[label] = max(depth_of.get(label, 0), d)
        stack.extend((g, d + 1) for g in child.children)
    total = 0
    for label in region:
        weight = DEFAULT_TRIP ** depth_of.get(label, 0)
        for instr in func.blocks[label].instrs:
            cost = instr_cost(instr)
            if (
                instr.op is Opcode.CALL
                and module is not None
                and instr.callee in module.functions
            ):
                cost += estimate_function_cost(module.functions[instr.callee], module)
            total += cost * weight
    return total


def detect_target_loops(
    func: Function,
    module: Optional[Module] = None,
    min_cost: int = MIN_TARGET_COST,
) -> List[TargetLoop]:
    """Find all approximation-target loops of *func* (outermost match wins
    for nested candidates: a loop inside an already-selected region is not
    reported separately)."""
    cfg = CFG(func)
    loops = find_loops(func, cfg)
    chains = compute_chains(func)
    targets: List[TargetLoop] = []
    claimed: Set[str] = set()

    for loop in loops:
        if loop.header in claimed:
            continue
        ind = find_induction(func, loop, cfg)
        if ind is None:
            continue
        region_info = _region_of(func, loop, ind)
        if region_info is None:
            continue
        region, entry = region_info
        region_set = set(region)

        child_blocks: Set[str] = set()
        for child in loop.children:
            child_blocks |= child.blocks

        stores = [
            (label, idx)
            for label in region
            if label not in child_blocks
            for idx, instr in enumerate(func.blocks[label].instrs)
            if instr.op is Opcode.STORE
        ]
        all_stores = [
            (label, idx)
            for label in region
            for idx, instr in enumerate(func.blocks[label].instrs)
            if instr.op is Opcode.STORE
        ]
        if len(stores) != 1 or len(all_stores) != 1:
            continue  # multi-output loops fall back to conventional protection
        store_site = stores[0]
        store = defining_instr(func, store_site)
        value, addr = store.args
        if not isinstance(value, Reg) or not value.ty.is_float:
            continue  # pointer/integer outputs are never approximated

        slice_sites = compute_slice(func, value, region_set, chains)
        kind, callee = _classify(func, module, loop, region, slice_sites)
        if kind is None:
            continue
        cost = _region_cost(func, loop, region, module)
        if cost < min_cost:
            continue

        addr_sites: List[Site] = []
        if isinstance(addr, Reg):
            addr_sites = compute_slice(func, addr, region_set, chains)
            if not _affine_only(func, addr_sites):
                continue  # cannot rematerialize the address in the wrapper

        # read-modify-write detection: loads from the store's own address
        addr_key = _expr_key(func, addr, chains, region_set)
        rmw_sites = []
        for site in slice_sites:
            instr = defining_instr(func, site)
            if instr.op is Opcode.LOAD:
                if _expr_key(func, instr.args[0], chains, region_set) == addr_key:
                    rmw_sites.append(site)

        live_ins = _live_ins(func, loop, region, ind, chains)

        targets.append(
            TargetLoop(
                func_name=func.name,
                loop=loop,
                ind=ind,
                region_labels=region,
                region_entry=entry,
                store_site=store_site,
                value_reg=value,
                addr_value=addr,
                addr_sites=addr_sites,
                live_ins=live_ins,
                rmw_load_sites=rmw_sites,
                kind=kind,
                per_iter_cost=cost,
                inside_outer_loop=loop.parent is not None,
                callee=callee,
            )
        )
        claimed.add(loop.header)
        for child in loop.children:
            claimed.add(child.header)

    return targets


def _live_ins(
    func: Function,
    loop: Loop,
    region: Sequence[str],
    ind: InductionInfo,
    chains: Chains,
) -> List[Reg]:
    """Registers read in the region but defined outside the loop."""
    region_set = set(region)
    defined_in_loop: Set[str] = set()
    for label in loop.blocks:
        for instr in func.blocks[label].instrs:
            if instr.dest is not None:
                defined_in_loop.add(instr.dest.name)

    seen: Dict[str, Reg] = {}
    for label in region:
        for instr in func.blocks[label].instrs:
            for reg in instr.uses():
                if reg.name == ind.reg.name:
                    continue
                if reg.name in defined_in_loop:
                    # defined inside the loop but outside the region (e.g. in
                    # the header) still counts as internal
                    continue
                seen.setdefault(reg.name, reg)
    return [seen[name] for name in sorted(seen)]


def detect_module_targets(module: Module, min_cost: int = MIN_TARGET_COST) -> Dict[str, List[TargetLoop]]:
    """Per-function target-loop lists for a whole module."""
    return {
        name: detect_target_loops(func, module, min_cost)
        for name, func in module.functions.items()
    }
