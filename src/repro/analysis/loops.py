"""Natural-loop detection and canonical induction-variable recognition.

RSkip's pattern detector (`repro.analysis.patterns`) builds on the loop
forest found here: it needs the loop header, latch, exit blocks and — for
the transform — the canonical counted-loop shape (induction register,
bound, step) that the builder emits and the parser accepts.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir.function import Function
from ..ir.instructions import CmpPred, Instr, Opcode
from ..ir.values import Const, Reg, Value
from .cfg import CFG
from .dominators import compute_idom


@dataclass(eq=False)
class Loop:
    """A natural loop: header plus the set of blocks on paths to latches.

    Identity semantics (two Loop objects are equal only if they are the
    same analysis result), so loops can live in sets and dict keys.
    """

    header: str
    blocks: Set[str] = field(default_factory=set)
    latches: List[str] = field(default_factory=list)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        d, cur = 1, self.parent
        while cur is not None:
            d += 1
            cur = cur.parent
        return d

    def exits(self, cfg: CFG) -> List[Tuple[str, str]]:
        """(inside_block, outside_block) exit edges."""
        out = []
        for label in sorted(self.blocks):
            for succ in cfg.succs.get(label, ()):
                if succ not in self.blocks:
                    out.append((label, succ))
        return out

    def contains(self, label: str) -> bool:
        return label in self.blocks

    def __repr__(self) -> str:
        return f"<Loop header={self.header} depth={self.depth} blocks={len(self.blocks)}>"


@dataclass
class InductionInfo:
    """Canonical counted-loop description: ``for (i = start; i < bound; i += step)``."""

    reg: Reg
    start: Value
    bound: Value
    step: Value
    cmp_instr: Instr
    update_block: str


def find_loops(func: Function, cfg: Optional[CFG] = None) -> List[Loop]:
    """All natural loops of *func*, nesting links populated, outermost first."""
    if cfg is None:
        cfg = CFG(func)
    idom = compute_idom(cfg)

    loops_by_header: Dict[str, Loop] = {}
    for tail, head in cfg.back_edges(idom):
        loop = loops_by_header.setdefault(head, Loop(header=head))
        loop.latches.append(tail)
        loop.blocks.add(head)
        # walk predecessors from the latch up to the header
        stack = [tail]
        while stack:
            label = stack.pop()
            if label in loop.blocks:
                continue
            loop.blocks.add(label)
            stack.extend(p for p in cfg.preds.get(label, ()) if p not in loop.blocks)

    loops = list(loops_by_header.values())
    # nesting: parent is the smallest strictly-containing loop
    for loop in loops:
        best: Optional[Loop] = None
        for other in loops:
            if other is loop:
                continue
            if loop.header in other.blocks and loop.blocks < other.blocks | {loop.header}:
                if loop.blocks <= other.blocks:
                    if best is None or len(other.blocks) < len(best.blocks):
                        best = other
        loop.parent = best
    for loop in loops:
        if loop.parent is not None:
            loop.parent.children.append(loop)

    loops.sort(key=lambda l: (l.depth, l.header))
    return loops


def loop_depth_map(loops: List[Loop]) -> Dict[str, int]:
    """Map block label -> nesting depth (0 outside any loop)."""
    depth: Dict[str, int] = {}
    for loop in loops:
        for label in loop.blocks:
            depth[label] = max(depth.get(label, 0), loop.depth)
    return depth


def find_induction(func: Function, loop: Loop, cfg: CFG) -> Optional[InductionInfo]:
    """Recognize the canonical counted-loop shape.

    Expected: the header's terminator is ``cbr (icmp lt %i, bound)`` and some
    block in the loop updates ``%i`` with ``%i = mov (add %i, step)`` or a
    direct ``%i = add %i, step``.  Returns ``None`` for irregular loops.
    """
    header = func.blocks[loop.header]
    term = header.terminator
    if term is None or term.op is not Opcode.CBR:
        return None
    cond = term.args[0]
    if not isinstance(cond, Reg):
        return None
    cmp_instr = None
    for instr in header.instrs:
        if instr.dest is not None and instr.dest.name == cond.name:
            cmp_instr = instr
    if cmp_instr is None or cmp_instr.op is not Opcode.ICMP:
        return None
    if cmp_instr.pred not in (CmpPred.LT, CmpPred.LE, CmpPred.NE):
        return None
    ivar, bound = cmp_instr.args
    if not isinstance(ivar, Reg):
        return None

    # find the update inside the loop:  %tmp = add %i, step ; %i = mov %tmp
    # or the direct form  %i = add %i, step
    for label in sorted(loop.blocks):
        block = func.blocks[label]
        adds: Dict[str, Instr] = {}
        for instr in block.instrs:
            if (
                instr.op is Opcode.ADD
                and instr.dest is not None
                and instr.args
                and isinstance(instr.args[0], Reg)
                and instr.args[0].name == ivar.name
            ):
                adds[instr.dest.name] = instr
                if instr.dest.name == ivar.name:
                    start = _find_start(func, loop, ivar, cfg)
                    return InductionInfo(ivar, start, bound, instr.args[1], cmp_instr, label)
            if (
                instr.op is Opcode.MOV
                and instr.dest is not None
                and instr.dest.name == ivar.name
                and isinstance(instr.args[0], Reg)
                and instr.args[0].name in adds
            ):
                add_instr = adds[instr.args[0].name]
                start = _find_start(func, loop, ivar, cfg)
                return InductionInfo(ivar, start, bound, add_instr.args[1], cmp_instr, label)
    return None


def _find_start(func: Function, loop: Loop, ivar: Reg, cfg: CFG) -> Value:
    """Initial value: last ``mov %i, <v>`` in a predecessor outside the loop."""
    for pred in cfg.preds.get(loop.header, ()):
        if pred in loop.blocks:
            continue
        for instr in reversed(func.blocks[pred].instrs):
            if (
                instr.op is Opcode.MOV
                and instr.dest is not None
                and instr.dest.name == ivar.name
            ):
                return instr.args[0]
    return Const(0, ivar.ty) if ivar.ty.is_int else ivar
