"""repro.analysis — static analyses over the IR: CFG, dominators, natural
loops, def-use chains, liveness, cost estimation and the RSkip target-loop
pattern detector."""
from .callgraph import CallGraph, build_callgraph
from .cfg import CFG
from .dominators import compute_idom, dominates, dominator_tree
from .loops import InductionInfo, Loop, find_induction, find_loops, loop_depth_map
from .defuse import Chains, compute_chains, compute_slice, defining_instr
from .liveness import Liveness
from .costmodel import (
    DEFAULT_TRIP,
    LATENCY,
    estimate_block_cost,
    estimate_function_cost,
    instr_cost,
)
from .patterns import (
    MIN_CALL_COST,
    MIN_TARGET_COST,
    PatternKind,
    TargetLoop,
    detect_module_targets,
    detect_target_loops,
)

__all__ = [
    "CallGraph", "build_callgraph",
    "CFG",
    "compute_idom", "dominates", "dominator_tree",
    "InductionInfo", "Loop", "find_induction", "find_loops", "loop_depth_map",
    "Chains", "compute_chains", "compute_slice", "defining_instr",
    "Liveness",
    "DEFAULT_TRIP", "LATENCY", "estimate_block_cost", "estimate_function_cost", "instr_cost",
    "MIN_CALL_COST", "MIN_TARGET_COST", "PatternKind", "TargetLoop",
    "detect_module_targets", "detect_target_loops",
]
