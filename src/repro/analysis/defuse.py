"""Def-use chains over the register machine.

Because the IR is not SSA a register may have several definition sites;
the chains record every (block, index) pair.  The paper's compiler performs
"a thorough static analysis (e.g., def-use chain)" to find optimization
candidates — this module is that substrate.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir.function import Function
from ..ir.instructions import Instr
from ..ir.values import Reg

Site = Tuple[str, int]  # (block label, instruction index)


@dataclass
class Chains:
    """Definition and use sites for every register of a function."""

    defs: Dict[str, List[Site]] = field(default_factory=dict)
    uses: Dict[str, List[Site]] = field(default_factory=dict)

    def def_sites(self, reg: str) -> List[Site]:
        return self.defs.get(reg, [])

    def use_sites(self, reg: str) -> List[Site]:
        return self.uses.get(reg, [])

    def single_def(self, reg: str) -> Optional[Site]:
        sites = self.defs.get(reg, [])
        return sites[0] if len(sites) == 1 else None

    def is_dead(self, reg: str) -> bool:
        """Defined but never read."""
        return reg in self.defs and not self.uses.get(reg)


def compute_chains(func: Function) -> Chains:
    chains = Chains()
    for label in func.block_order():
        for idx, instr in enumerate(func.blocks[label].instrs):
            site = (label, idx)
            if instr.dest is not None:
                chains.defs.setdefault(instr.dest.name, []).append(site)
            for reg in instr.uses():
                chains.uses.setdefault(reg.name, []).append(site)
    return chains


def defining_instr(func: Function, site: Site) -> Instr:
    label, idx = site
    return func.blocks[label].instrs[idx]


def compute_slice(
    func: Function,
    root: Reg,
    within: Optional[Set[str]] = None,
    chains: Optional[Chains] = None,
) -> List[Site]:
    """Backward slice: definition sites (transitively) feeding *root*.

    If *within* is given, the walk stays inside those blocks — registers
    defined outside are treated as live-ins of the slice.  Sites are
    returned in program order (block order, then index).
    """
    if chains is None:
        chains = compute_chains(func)
    wanted: Set[str] = {root.name}
    sites: Set[Site] = set()
    changed = True
    while changed:
        changed = False
        for name in list(wanted):
            for site in chains.def_sites(name):
                if within is not None and site[0] not in within:
                    continue
                if site in sites:
                    continue
                sites.add(site)
                changed = True
                instr = defining_instr(func, site)
                for reg in instr.uses():
                    if reg.name not in wanted:
                        wanted.add(reg.name)

    order = {label: i for i, label in enumerate(func.block_order())}
    return sorted(sites, key=lambda s: (order[s[0]], s[1]))
