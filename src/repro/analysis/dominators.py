"""Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm)."""
from __future__ import annotations

from typing import Dict, List, Optional

from .cfg import CFG


def compute_idom(cfg: CFG) -> Dict[str, str]:
    """Immediate dominators for all reachable blocks.

    The entry maps to itself.  Unreachable blocks are absent from the map.
    """
    rpo = cfg.reverse_postorder()
    index = {label: i for i, label in enumerate(rpo)}
    idom: Dict[str, Optional[str]] = {label: None for label in rpo}
    idom[cfg.entry] = cfg.entry

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == cfg.entry:
                continue
            processed = [p for p in cfg.preds[label] if p in index and idom[p] is not None]
            if not processed:
                continue
            new_idom = processed[0]
            for p in processed[1:]:
                new_idom = intersect(p, new_idom)
            if idom[label] != new_idom:
                idom[label] = new_idom
                changed = True
    return {k: v for k, v in idom.items() if v is not None}


def dominates(idom: Dict[str, str], a: str, b: str) -> bool:
    """True if block *a* dominates block *b* under the given idom map."""
    if a == b:
        return True
    runner = b
    while runner != idom.get(runner):
        runner = idom.get(runner)
        if runner is None:
            return False
        if runner == a:
            return True
    return False


def dominator_tree(idom: Dict[str, str]) -> Dict[str, List[str]]:
    """Children lists of the dominator tree."""
    tree: Dict[str, List[str]] = {label: [] for label in idom}
    for label, parent in idom.items():
        if label != parent:
            tree[parent].append(label)
    return tree
