"""Call-graph construction.

Used by the cost model's consumers and the driver to reason about whole-
module structure: which functions a protected loop can reach (fault-region
construction), whether recursion bounds static cost estimation, and a
bottom-up order for function-at-a-time processing.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..ir.instructions import Opcode
from ..ir.module import Module


@dataclass
class CallGraph:
    """Direct-call edges between module functions."""

    callees: Dict[str, Set[str]] = field(default_factory=dict)
    callers: Dict[str, Set[str]] = field(default_factory=dict)

    def reachable_from(self, root: str) -> Set[str]:
        """*root* plus everything it can (transitively) call."""
        seen: Set[str] = set()
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.callees.get(name, ()))
        return seen

    def is_recursive(self, name: str) -> bool:
        """True if *name* participates in a call cycle."""
        stack = list(self.callees.get(name, ()))
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current == name:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.callees.get(current, ()))
        return False

    def bottom_up_order(self) -> List[str]:
        """Callees before callers (cycles broken arbitrarily but
        deterministically)."""
        order: List[str] = []
        visited: Set[str] = set()
        in_progress: Set[str] = set()

        def visit(name: str) -> None:
            if name in visited or name in in_progress:
                return
            in_progress.add(name)
            for callee in sorted(self.callees.get(name, ())):
                visit(callee)
            in_progress.discard(name)
            visited.add(name)
            order.append(name)

        for name in sorted(self.callees):
            visit(name)
        return order


def build_callgraph(module: Module) -> CallGraph:
    graph = CallGraph()
    for name, func in module.functions.items():
        graph.callees.setdefault(name, set())
        graph.callers.setdefault(name, set())
    for name, func in module.functions.items():
        for instr in func.instructions():
            if instr.op is Opcode.CALL and instr.callee in module.functions:
                graph.callees[name].add(instr.callee)
                graph.callers[instr.callee].add(name)
    return graph
