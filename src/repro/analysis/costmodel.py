"""Static cost estimation.

A single latency/weight table serves two consumers:

* the **timing model** (`repro.runtime.scheduler`) uses ``LATENCY`` as the
  per-opcode completion latency in cycles, and
* the **pattern detector** uses :func:`estimate_cost` to decide whether a
  loop's value computation is expensive enough to be an approximation
  target ("the user function call that has the number of instructions above
  threshold", paper section 4).

Latencies are modelled on a mainstream out-of-order x86 core (the paper's
Xeon E31230): 1-cycle integer ALU, 3-5 cycle FP add/mul, long-latency
divide/transcendentals, L1-hit loads.
"""
from __future__ import annotations

from typing import Dict, Optional

from ..ir.function import Function
from ..ir.instructions import Instr, Opcode
from ..ir.module import Module
from .cfg import CFG
from .loops import find_loops, loop_depth_map

#: Completion latency in cycles per opcode.
LATENCY: Dict[Opcode, int] = {
    Opcode.MOV: 1,
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.MUL: 3,
    Opcode.SDIV: 20,
    Opcode.SREM: 20,
    Opcode.AND: 1,
    Opcode.OR: 1,
    Opcode.XOR: 1,
    Opcode.SHL: 1,
    Opcode.LSHR: 1,
    Opcode.FADD: 3,
    Opcode.FSUB: 3,
    Opcode.FMUL: 4,
    Opcode.FDIV: 14,
    Opcode.FNEG: 1,
    Opcode.FABS: 1,
    Opcode.SQRT: 15,
    Opcode.EXP: 25,
    Opcode.LOG: 25,
    Opcode.SIN: 25,
    Opcode.COS: 25,
    Opcode.FLOOR: 3,
    Opcode.SITOFP: 4,
    Opcode.FPTOSI: 4,
    Opcode.ICMP: 1,
    Opcode.FCMP: 3,
    Opcode.SELECT: 1,
    Opcode.LOAD: 4,
    Opcode.STORE: 1,
    Opcode.ALLOC: 1,
    Opcode.BR: 1,
    Opcode.CBR: 1,
    Opcode.CALL: 2,
    Opcode.RET: 1,
    Opcode.INTRIN: 2,
}

#: Assumed iteration count for loops whose trip count is not a constant
#: (used only for static cost ranking, mirroring LLVM's heuristic).
DEFAULT_TRIP = 16


def instr_cost(instr: Instr) -> int:
    return LATENCY.get(instr.op, 1)


def estimate_function_cost(
    func: Function,
    module: Optional[Module] = None,
    _stack: Optional[frozenset] = None,
) -> int:
    """Weighted static cost: instruction latencies scaled by loop depth.

    Calls add the callee's cost when the module is supplied (recursion is
    cut off conservatively).
    """
    stack = _stack or frozenset()
    cfg = CFG(func)
    depth = loop_depth_map(find_loops(func, cfg))
    total = 0
    for label in func.block_order():
        weight = DEFAULT_TRIP ** depth.get(label, 0)
        for instr in func.blocks[label].instrs:
            cost = instr_cost(instr)
            if (
                instr.op is Opcode.CALL
                and module is not None
                and instr.callee in module.functions
                and instr.callee not in stack
            ):
                cost += estimate_function_cost(
                    module.functions[instr.callee],
                    module,
                    stack | {func.name},
                )
            total += cost * weight
    return total


def estimate_block_cost(func: Function, label: str, module: Optional[Module] = None) -> int:
    """Unscaled cost of a single block (no loop-depth weighting)."""
    total = 0
    for instr in func.blocks[label].instrs:
        cost = instr_cost(instr)
        if instr.op is Opcode.CALL and module is not None and instr.callee in module.functions:
            cost += estimate_function_cost(module.functions[instr.callee], module)
        total += cost
    return total
