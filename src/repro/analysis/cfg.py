"""Control-flow graph construction and traversals."""
from __future__ import annotations

from typing import Dict, List, Set

from ..ir.function import Function


class CFG:
    """Predecessor/successor maps plus standard traversal orders."""

    def __init__(self, func: Function):
        self.func = func
        self.succs: Dict[str, List[str]] = {}
        self.preds: Dict[str, List[str]] = {label: [] for label in func.blocks}
        for label in func.block_order():
            succs = func.blocks[label].successors()
            self.succs[label] = succs
            for s in succs:
                if s in self.preds:
                    self.preds[s].append(label)
        self.entry = func.block_order()[0]

    def reachable(self) -> Set[str]:
        """Blocks reachable from the entry."""
        seen: Set[str] = set()
        stack = [self.entry]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.succs.get(label, ()))
        return seen

    def postorder(self) -> List[str]:
        """Postorder over reachable blocks (iterative DFS)."""
        seen: Set[str] = set()
        order: List[str] = []
        stack: List[tuple] = [(self.entry, iter(self.succs.get(self.entry, ())))]
        seen.add(self.entry)
        while stack:
            label, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(self.succs.get(succ, ()))))
                    advanced = True
                    break
            if not advanced:
                order.append(label)
                stack.pop()
        return order

    def reverse_postorder(self) -> List[str]:
        return list(reversed(self.postorder()))

    def back_edges(self, idom: Dict[str, str]) -> List[tuple]:
        """(tail, head) edges where head dominates tail (natural-loop back
        edges); *idom* comes from :func:`repro.analysis.dominators.compute_idom`."""
        from .dominators import dominates

        edges = []
        for tail, succs in self.succs.items():
            for head in succs:
                if dominates(idom, head, tail):
                    edges.append((tail, head))
        return edges
