"""Backward liveness dataflow.

Used by the fault injector ("a transient fault may occur at the examined
register before its actual usage" — live registers are the vulnerable
window) and by DCE.
"""
from __future__ import annotations

from typing import Dict, List, Set

from ..ir.function import Function
from .cfg import CFG


class Liveness:
    """Live-in / live-out register-name sets per block."""

    def __init__(self, func: Function, cfg: CFG = None):
        self.func = func
        self.cfg = cfg or CFG(func)
        self.live_in: Dict[str, Set[str]] = {}
        self.live_out: Dict[str, Set[str]] = {}
        self._run()

    def _run(self) -> None:
        func, cfg = self.func, self.cfg
        gen: Dict[str, Set[str]] = {}
        kill: Dict[str, Set[str]] = {}
        for label, block in func.blocks.items():
            g: Set[str] = set()
            k: Set[str] = set()
            for instr in block.instrs:
                for reg in instr.uses():
                    if reg.name not in k:
                        g.add(reg.name)
                if instr.dest is not None:
                    k.add(instr.dest.name)
            gen[label], kill[label] = g, k
            self.live_in[label] = set()
            self.live_out[label] = set()

        changed = True
        order = cfg.postorder()  # backward problem converges fast in postorder
        while changed:
            changed = False
            for label in order:
                out: Set[str] = set()
                for succ in cfg.succs.get(label, ()):
                    out |= self.live_in.get(succ, set())
                new_in = gen[label] | (out - kill[label])
                if out != self.live_out[label] or new_in != self.live_in[label]:
                    self.live_out[label] = out
                    self.live_in[label] = new_in
                    changed = True

    def live_at(self, label: str, index: int) -> Set[str]:
        """Registers live immediately *before* instruction *index* of *label*."""
        live = set(self.live_out[label])
        instrs = self.func.blocks[label].instrs
        for instr in reversed(instrs[index:]):
            if instr.dest is not None:
                live.discard(instr.dest.name)
            for reg in instr.uses():
                live.add(reg.name)
        return live

    def dead_defs(self) -> List[tuple]:
        """(label, index) sites whose destination is dead after the write."""
        out = []
        for label, block in self.func.blocks.items():
            live = set(self.live_out[label])
            for idx in range(len(block.instrs) - 1, -1, -1):
                instr = block.instrs[idx]
                if (
                    instr.dest is not None
                    and instr.dest.name not in live
                    and not instr.has_side_effect
                ):
                    out.append((label, idx))
                if instr.dest is not None:
                    live.discard(instr.dest.name)
                for reg in instr.uses():
                    live.add(reg.name)
        return out
