"""Event sinks: bounded in-memory ring and JSONL trace files.

The "null sink" is the absence of a sink (``events.enabled()`` is
False); it has no object because the disabled path must not even
construct payloads.

``JsonlSink`` owns its file descriptor exclusively — campaign workers
each write their own shard file and the parent merges them afterwards
(:func:`merge_traces`), so no two processes ever interleave writes into
a shared fd.
"""
from __future__ import annotations

import os
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .events import Event

#: Default capacity of the in-memory ring.
DEFAULT_RING = 4096


class MemorySink:
    """Bounded in-memory event ring (oldest events drop first)."""

    def __init__(self, capacity: int = DEFAULT_RING):
        self.events: Deque[Event] = deque(maxlen=capacity)
        self.spans: List[Tuple[str, float]] = []
        self.dropped = 0

    def write(self, event: Event) -> None:
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(event)

    def record_span(self, label: str, ms: float) -> None:
        self.spans.append((label, ms))

    def close(self) -> None:  # symmetry with JsonlSink
        pass

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


class JsonlSink:
    """Streams events to a JSONL file, one canonical line per event.

    ``spans`` accumulate in memory for the caller to fold into the run
    manifest (:mod:`repro.obs.manifest`); they are never written into
    the trace body, which stays deterministic.
    """

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "w", encoding="utf-8")
        self.count = 0
        self.spans: List[Tuple[str, float]] = []

    def write(self, event: Event) -> None:
        self._handle.write(event.to_line())
        self._handle.write("\n")
        self.count += 1

    def record_span(self, label: str, ms: float) -> None:
        self.spans.append((label, ms))

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str) -> List[Event]:
    """Parse a JSONL trace back into events."""
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(Event.from_line(line))
    return events


def merge_traces(shard_paths: List[str], out_path: str,
                 missing_hint: Optional[str] = None) -> int:
    """Merge per-worker shard traces into one file, deterministically.

    Shards are concatenated in the order given (callers sort by task
    identity, never completion order) and the per-shard sequence numbers
    are rewritten into one monotonic stream — equal shard contents in
    equal order produce a byte-identical merged file for any worker
    count.  Returns the merged event count.
    """
    seq = 0
    tmp = out_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as out:
        for shard in shard_paths:
            if not os.path.exists(shard):
                os.unlink(tmp)
                detail = f" ({missing_hint})" if missing_hint else ""
                raise FileNotFoundError(
                    f"trace shard missing: {shard}{detail}")
            for event in read_trace(shard):
                event.seq = seq
                seq += 1
                out.write(event.to_line())
                out.write("\n")
    os.replace(tmp, out_path)
    return seq
