"""Run manifests — the who/what/how of a JSONL trace.

Every trace file gets a sibling ``<trace>.manifest.json`` describing the
run that produced it: command, deterministic run id, backend, config,
seed/params, module fingerprints, counter totals, event count and the
wall-clock spans.  The manifest is the *only* place wall-clock data
lives; the trace body stays deterministic (see `repro.obs.events`).
"""
from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

MANIFEST_VERSION = 1


def run_id_for(*parts) -> str:
    """A deterministic run id from the run's identifying parameters.

    Derived (not random) so campaign shards across any worker count —
    and re-runs at the same parameters — stamp identical ids into their
    events, keeping merged traces byte-identical.
    """
    text = json.dumps([repr(p) for p in parts], sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


def manifest_path_for(trace_path: str) -> str:
    return trace_path + ".manifest.json"


@dataclass
class RunManifest:
    """Schema of ``<trace>.manifest.json`` (DESIGN.md §"Observability")."""

    run: str
    command: str
    #: execution backend clean runs used ("ref" | "compiled")
    backend: str = ""
    #: repr() of the RSkipConfig in effect (None-safe)
    config: str = ""
    params: Dict[str, object] = field(default_factory=dict)
    #: sha256 module fingerprints, keyed "workload|scheme"
    fingerprints: Dict[str, str] = field(default_factory=dict)
    #: counter totals, e.g. SkipStats fields or campaign tallies
    totals: Dict[str, object] = field(default_factory=dict)
    #: events written to the trace body
    events: int = 0
    #: wall-clock spans [(label, ms)] — telemetry, never deterministic
    spans: List[Tuple[str, float]] = field(default_factory=list)
    version: int = MANIFEST_VERSION
    written_at: float = 0.0

    def write(self, trace_path: str) -> str:
        """Write next to *trace_path*; returns the manifest path."""
        return self.write_to(manifest_path_for(trace_path))

    def write_to(self, path: str) -> str:
        """Write the manifest to an exact *path* (the serve daemon stamps
        one per request under its audit directory, no trace sibling)."""
        self.written_at = time.time()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(asdict(self), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, trace_path: str) -> Optional["RunManifest"]:
        """The manifest next to *trace_path*, or None if there is none."""
        import os

        path = manifest_path_for(trace_path)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("version") != MANIFEST_VERSION:
            raise ValueError(f"{path}: unsupported manifest version")
        return cls(
            run=data["run"],
            command=data["command"],
            backend=data.get("backend", ""),
            config=data.get("config", ""),
            params=data.get("params", {}),
            fingerprints=data.get("fingerprints", {}),
            totals=data.get("totals", {}),
            events=data.get("events", 0),
            spans=[tuple(s) for s in data.get("spans", [])],
            written_at=data.get("written_at", 0.0),
        )
