"""Render a JSONL trace as a human-readable run report.

``repro report <trace.jsonl>`` lands here: per-loop skip-rate timelines
(one column per loop execution, bucketed when the run is long), QoS
disable causes, TP adjustment activity, recovery (mismatch/vote)
activity, SFI trial outcomes, and the manifest summary when one sits
next to the trace.
"""
from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from .events import (
    EXEC,
    Event,
    PHASE_CUT,
    QOS_DISABLE,
    RECOMPUTE,
    RECOVERY,
    SKIP,
    TP_ADJUST,
    TRAIN_LOOP,
    TRIAL_OUTCOME,
)
from .manifest import RunManifest
from .sinks import read_trace

#: ASCII intensity ramp for the skip-rate timeline (0% .. 100%).
_RAMP = " .:-=+*#@"
#: Maximum timeline columns before executions are bucketed.
_TIMELINE_WIDTH = 60


def _ramp_char(rate: float) -> str:
    rate = min(max(rate, 0.0), 1.0)
    return _RAMP[min(int(rate * len(_RAMP)), len(_RAMP) - 1)]


def _timeline(rates: List[float], width: int = _TIMELINE_WIDTH) -> str:
    """One character per execution; long runs average into <= width buckets."""
    if not rates:
        return ""
    if len(rates) <= width:
        return "".join(_ramp_char(r) for r in rates)
    out = []
    n = len(rates)
    for col in range(width):
        lo = col * n // width
        hi = max((col + 1) * n // width, lo + 1)
        chunk = rates[lo:hi]
        out.append(_ramp_char(sum(chunk) / len(chunk)))
    return "".join(out)


def load_trace(path: str) -> List[Event]:
    return read_trace(path)


def render_trace_report(events: List[Event],
                        manifest: Optional[RunManifest] = None) -> str:
    """The full text report for one trace."""
    lines: List[str] = []
    kinds = Counter(e.kind for e in events)
    runs = sorted({e.run for e in events})
    head = f"trace: {len(events)} events"
    if runs:
        head += f", run {', '.join(runs)}"
    lines.append(head)
    if kinds:
        lines.append("kinds: " + ", ".join(
            f"{kind}={n}" for kind, n in sorted(kinds.items())))
    if manifest is not None:
        lines.append(
            f"manifest: command={manifest.command} backend={manifest.backend}"
            + (f" params={_short_params(manifest.params)}"
               if manifest.params else "")
        )
        if manifest.fingerprints:
            for key, fp in sorted(manifest.fingerprints.items()):
                lines.append(f"  module {key}: {fp[:16]}…")
        if manifest.spans:
            lines.append("spans:")
            for label, ms in manifest.spans[:20]:
                lines.append(f"  {label:40s} {ms:10.1f} ms")
            if len(manifest.spans) > 20:
                lines.append(f"  … {len(manifest.spans) - 20} more")
    lines.append("")

    lines.extend(_render_loops(events))
    lines.extend(_render_trials(events))
    lines.extend(_render_training(events))
    return "\n".join(lines).rstrip() + "\n"


def _short_params(params: Dict[str, object]) -> str:
    keep = {k: v for k, v in params.items() if k != "config"}
    return ",".join(f"{k}={v}" for k, v in sorted(keep.items()))


def _render_loops(events: List[Event]) -> List[str]:
    by_loop: Dict[str, List[Event]] = {}
    for event in events:
        if event.loop is not None:
            by_loop.setdefault(event.loop, []).append(event)
    if not by_loop:
        return []

    lines = ["-- per-loop activity --"]
    for loop in sorted(by_loop):
        evs = by_loop[loop]
        execs = [e for e in evs if e.kind == EXEC]
        rates = [
            (e.payload.get("skipped", 0) / e.payload["elements"])
            for e in execs if e.payload.get("elements", 0) > 0
        ]
        phases = sum(1 for e in evs if e.kind == PHASE_CUT)
        skips = Counter()
        for e in evs:
            if e.kind == SKIP:
                skips[e.payload.get("predictor", "?")] += e.payload.get("count", 0)
        recomputes = sum(
            e.payload.get("count", 0) for e in evs if e.kind == RECOMPUTE)
        adjusts = [e for e in evs if e.kind == TP_ADJUST]
        disables = [e for e in evs if e.kind == QOS_DISABLE]
        recoveries = Counter(
            e.payload.get("stage", "?") for e in evs if e.kind == RECOVERY)

        lines.append(f"{loop}:")
        lines.append(
            f"  executions {len(execs)}, phases {phases}, "
            f"skips {dict(sorted(skips.items())) or 0}, recomputes {recomputes}"
        )
        if rates:
            mean = sum(rates) / len(rates)
            lines.append(f"  skip-rate timeline (mean {mean:5.1%}): "
                         f"|{_timeline(rates)}|")
        if adjusts:
            first, last = adjusts[0].payload, adjusts[-1].payload
            lines.append(
                f"  tp adjustments {len(adjusts)}: "
                f"{first.get('old')} -> … -> {last.get('new')}"
            )
        for e in disables:
            p = e.payload
            cause = ", ".join(
                f"{k}={v}" for k, v in sorted(p.items()) if k != "predictor")
            lines.append(
                f"  QOS DISABLE [{p.get('predictor', '?')}] at seq {e.seq}: {cause}")
        if recoveries:
            verdicts = Counter(
                e.payload.get("verdict") for e in evs
                if e.kind == RECOVERY and "verdict" in e.payload)
            detail = ""
            if verdicts:
                detail = " (" + ", ".join(
                    f"{k}={n}" for k, n in sorted(verdicts.items())) + ")"
            lines.append(
                f"  recovery: {recoveries.get('detect', 0)} mismatches, "
                f"{recoveries.get('vote', 0)} votes{detail}"
            )
    lines.append("")
    return lines


def _render_trials(events: List[Event]) -> List[str]:
    trials = [e for e in events if e.kind == TRIAL_OUTCOME]
    if not trials:
        return []
    lines = ["-- SFI trials --"]
    by_campaign: Dict[str, List[Event]] = {}
    for e in trials:
        key = f"{e.payload.get('workload', '?')}/{e.payload.get('scheme', '?')}"
        by_campaign.setdefault(key, []).append(e)
    for key in sorted(by_campaign):
        evs = by_campaign[key]
        outcomes = Counter(e.payload.get("outcome", "?") for e in evs)
        caught = sum(1 for e in evs if e.payload.get("caught"))
        fns = sum(1 for e in evs if e.payload.get("false_negative"))
        detected = sum(1 for e in evs if e.payload.get("detected"))
        lines.append(f"{key}: {len(evs)} trials")
        lines.append("  outcomes: " + ", ".join(
            f"{name}={n}" for name, n in sorted(outcomes.items())))
        lines.append(
            f"  caught (voted) {caught}, detected (aborted) {detected}, "
            f"false negatives {fns}"
        )
    lines.append("")
    return lines


def _render_training(events: List[Event]) -> List[str]:
    trains = [e for e in events if e.kind == TRAIN_LOOP]
    if not trains:
        return []
    lines = ["-- offline training --"]
    for e in trains:
        p = e.payload
        lines.append(
            f"{e.loop}: {p.get('executions', 0)} traces, "
            f"{p.get('elements', 0)} elements, default TP {p.get('default_tp')}, "
            f"{p.get('qos_entries', 0)} QoS entries"
            + (", memo" if p.get("memo") else "")
        )
    lines.append("")
    return lines
