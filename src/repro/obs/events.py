"""Structured observability events — near-zero cost when disabled.

The run-time management of the paper (section 5-6) takes *dynamic*
decisions — phase cuts, accept/reject validation, QoS disables, TP
adjustments — that end-of-run ``SkipStats`` aggregates cannot explain.
This module gives every decision point a typed :class:`Event` record and
a single module-level :func:`emit` behind a sink that is ``None`` by
default.

Overhead policy (enforced by tests):

* **Disabled** (no sink installed): instrumentation sites guard with
  ``if enabled():`` *before* constructing any payload, so the cost of an
  un-traced run is one module-global ``is not None`` check per decision
  point — no Event objects, no dict allocation, no string formatting.
* **Enabled**: events are plain records handed to the sink synchronously;
  sinks must not block (the bundled sinks append to a deque or write one
  JSON line to a buffered file).

Determinism policy:

* Event bodies are **deterministic**: monotonic per-sink sequence number,
  a caller-chosen run id, loop key, kind, payload — never wall-clock
  time.  Serial and parallel campaigns therefore produce byte-identical
  merged traces (pinned by tests).
* Anything wall-clock lives in **spans** (:func:`span`), a separate
  channel collected on the sink and written to the run *manifest*, never
  into the trace body.
"""
from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional

#: Event taxonomy (DESIGN.md §"Observability").  Element-granularity
#: kinds (skip / recompute) are aggregated per phase cut to bound trace
#: volume; one loop execution emits O(phases) events, not O(elements).
SKIP = "skip"                    #: per-phase skips, one event per predictor
RECOMPUTE = "recompute"          #: per-phase re-computation queue adds
RECOVERY = "recovery"            #: exact-validation mismatch / vote verdicts
PHASE_CUT = "phase-cut"          #: a dynamic-interpolation phase boundary
TP_ADJUST = "tp-adjust"          #: run-time management changed the TP
QOS_DISABLE = "qos-disable"      #: a predictor was disabled (interp / memo)
EXEC = "exec"                    #: one loop execution's (elements, skipped)
TRIAL_OUTCOME = "trial-outcome"  #: one SFI trial's classification
TRAIN_LOOP = "train-loop"        #: offline training finished one loop
PASS_RUN = "pass-run"            #: one compiler pass ran (in/out instr counts)

KINDS = (
    SKIP, RECOMPUTE, RECOVERY, PHASE_CUT, TP_ADJUST, QOS_DISABLE,
    EXEC, TRIAL_OUTCOME, TRAIN_LOOP, PASS_RUN,
)


@dataclass
class Event:
    """One structured observation.

    ``seq`` is assigned by :func:`emit` and is monotonic within a sink's
    lifetime; ``run`` identifies the producing run (campaign shards share
    their parent's deterministic run id); ``loop`` is the owning loop key
    for predictor events, ``None`` for run-level kinds.
    """

    seq: int
    run: str
    kind: str
    loop: Optional[str] = None
    payload: Dict[str, object] = field(default_factory=dict)

    def to_line(self) -> str:
        """Canonical JSONL form — stable key order, compact separators,
        so equal event streams serialize to byte-identical files."""
        return json.dumps(
            {"seq": self.seq, "run": self.run, "kind": self.kind,
             "loop": self.loop, "payload": self.payload},
            sort_keys=True, separators=(",", ":"),
        )

    @classmethod
    def from_line(cls, line: str) -> "Event":
        data = json.loads(line)
        return cls(data["seq"], data["run"], data["kind"],
                   data.get("loop"), data.get("payload", {}))


_sink = None
_run_id = ""
_seq = 0


def enabled() -> bool:
    """True when a sink is installed.  Instrumentation sites MUST check
    this before building an event payload (the disabled-cost contract)."""
    return _sink is not None


def current_sink():
    return _sink


def install_sink(sink, run_id: str = "local") -> None:
    """Install *sink* as the process-wide event consumer.

    Exactly one sink may be installed at a time — overlapping traces
    would interleave unrelated event streams (raise instead of guessing).
    The sequence counter restarts at 0 per installation.
    """
    global _sink, _run_id, _seq
    if _sink is not None:
        raise RuntimeError(
            "an observability sink is already installed; remove_sink() first"
        )
    _sink = sink
    _run_id = run_id
    _seq = 0


def remove_sink():
    """Uninstall and return the current sink (``None`` if none)."""
    global _sink
    sink, _sink = _sink, None
    return sink


@contextmanager
def sink_installed(sink, run_id: str = "local"):
    """Scoped :func:`install_sink` / :func:`remove_sink`."""
    install_sink(sink, run_id)
    try:
        yield sink
    finally:
        remove_sink()


def emit(kind: str, loop: Optional[str] = None, **payload) -> None:
    """Record one event on the installed sink.

    Callers on hot paths guard with ``if enabled():`` so the kwargs dict
    is never built when tracing is off; calling with no sink installed is
    still safe (the event is dropped).
    """
    global _seq
    sink = _sink
    if sink is None:
        return
    event = Event(_seq, _run_id, kind, loop, payload)
    _seq += 1
    sink.write(event)


@contextmanager
def span(label: str):
    """Time a region and record ``(label, ms)`` on the installed sink.

    Spans are wall-clock telemetry: they go to the sink's span list (and
    from there to the run manifest), never into the deterministic trace
    body.  With no sink installed this is a no-op.
    """
    sink = _sink
    if sink is None:
        yield
        return
    t0 = perf_counter()
    try:
        yield
    finally:
        ms = (perf_counter() - t0) * 1000.0
        # re-read: the sink may have been removed inside the region
        target = _sink if _sink is not None else sink
        target.record_span(label, ms)
