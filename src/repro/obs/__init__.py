"""repro.obs — structured observability: events, sinks, manifests, reports.

See DESIGN.md §"Observability".  The contract in one paragraph: typed
:class:`Event` records flow through a module-level :func:`emit` that is
a near-free no-op until a sink is installed; event bodies are
deterministic (byte-identical traces for serial vs parallel campaigns)
while wall-clock *spans* live on the sink and end up in the run
manifest, never the trace body.
"""
from .events import (
    EXEC,
    Event,
    KINDS,
    PHASE_CUT,
    QOS_DISABLE,
    RECOMPUTE,
    RECOVERY,
    SKIP,
    TP_ADJUST,
    TRAIN_LOOP,
    TRIAL_OUTCOME,
    current_sink,
    emit,
    enabled,
    install_sink,
    remove_sink,
    sink_installed,
    span,
)
from .manifest import RunManifest, manifest_path_for, run_id_for
from .report import load_trace, render_trace_report
from .sinks import JsonlSink, MemorySink, merge_traces, read_trace

__all__ = [
    "EXEC", "Event", "KINDS", "PHASE_CUT", "QOS_DISABLE", "RECOMPUTE",
    "RECOVERY", "SKIP", "TP_ADJUST", "TRAIN_LOOP", "TRIAL_OUTCOME",
    "current_sink", "emit", "enabled", "install_sink", "remove_sink",
    "sink_installed", "span",
    "RunManifest", "manifest_path_for", "run_id_for",
    "load_trace", "render_trace_report",
    "JsonlSink", "MemorySink", "merge_traces", "read_trace",
]
