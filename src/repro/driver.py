"""The compiler driver: one call from unprotected module to resilient
executable.

This is the library's front door for users with their own IR modules
(workload objects go through `repro.eval` instead):

>>> from repro import compile_protected
>>> compiled = compile_protected(module, scheme="rskip")   # doctest: +SKIP
>>> interp = compiled.interpreter(memory)                  # doctest: +SKIP
>>> interp.run("main", args)                               # doctest: +SKIP

It mirrors the paper's system overview: cleanup passes, target detection,
the RSkip transform (or a baseline), and the run-time management hookup —
"the system takes unreliable source code as an input and generates a
lightweight resilient executable".
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from .core.config import RSkipConfig
from .core.manager import LoopProfile
from .core.rskip import RskipApplication, apply_rskip
from .ir.module import Module
from .ir.verifier import verify_module
from .runtime.errors import FaultDetectedError
from .runtime.interpreter import Interpreter
from .runtime.memory import Memory
from .transforms.cse import run_cse_module
from .transforms.dce import run_dce_module
from .transforms.licm import run_licm_module
from .transforms.simplify import run_simplify_module
from .transforms.swift import (
    ALL_SYNC_POINTS,
    DETECT_INTRINSIC,
    apply_swift,
    apply_swift_r,
)

SCHEMES = ("none", "swift", "swift-r", "rskip")


def _swift_detected(interp, args):
    raise FaultDetectedError("SWIFT detected a transient fault")


@dataclass
class CompiledProgram:
    """A protected module plus everything needed to execute it."""

    module: Module
    scheme: str
    intrinsics: Dict[str, object] = field(default_factory=dict)
    application: Optional[RskipApplication] = None
    optimizations: Dict[str, int] = field(default_factory=dict)

    def interpreter(self, memory: Optional[Memory] = None, **kwargs) -> Interpreter:
        """A ready-to-run interpreter with the runtime intrinsics linked."""
        interp = Interpreter(self.module, memory=memory, **kwargs)
        interp.register_intrinsics(self.intrinsics)
        return interp

    @property
    def skip_stats(self):
        if self.application is None:
            return None
        return self.application.runtime.total_stats()


def compile_protected(
    module: Module,
    scheme: str = "rskip",
    config: Optional[RSkipConfig] = None,
    profiles: Optional[Dict[str, LoopProfile]] = None,
    optimize: bool = True,
    verify: bool = True,
    sync_points: Iterable[str] = ALL_SYNC_POINTS,
    ar_overrides: Optional[Dict[str, float]] = None,
) -> CompiledProgram:
    """Protect *module* in place and return the compiled program.

    ``scheme`` is one of ``"none"`` (cleanup only), ``"swift"``
    (duplication + detection), ``"swift-r"`` (triplication + recovery) or
    ``"rskip"`` (prediction-based protection; pass trained *profiles* from
    `repro.core.training` for best skip rates).
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; choose one of {SCHEMES}")

    optimizations: Dict[str, int] = {}
    if optimize:
        optimizations["constfold"] = run_simplify_module(module)
        optimizations["licm"] = run_licm_module(module)
        optimizations["cse"] = run_cse_module(module)
        optimizations["dce"] = run_dce_module(module)
        if verify:
            verify_module(module)

    intrinsics: Dict[str, object] = {}
    application: Optional[RskipApplication] = None

    if scheme == "swift":
        apply_swift(module, sync_points=sync_points)
        intrinsics[DETECT_INTRINSIC] = _swift_detected
    elif scheme == "swift-r":
        apply_swift_r(module, sync_points=sync_points)
    elif scheme == "rskip":
        application = apply_rskip(
            module, config, profiles, ar_overrides=ar_overrides
        )
        intrinsics.update(application.intrinsics())

    if verify:
        verify_module(module)
    return CompiledProgram(
        module=module,
        scheme=scheme,
        intrinsics=intrinsics,
        application=application,
        optimizations=optimizations,
    )
