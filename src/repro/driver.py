"""The compiler driver: one call from unprotected module to resilient
executable.

This is the library's front door for users with their own IR modules
(workload objects go through `repro.eval` instead):

>>> from repro import compile_protected
>>> compiled = compile_protected(module, scheme="rskip")   # doctest: +SKIP
>>> interp = compiled.interpreter(memory)                  # doctest: +SKIP
>>> interp.run("main", args)                               # doctest: +SKIP

It mirrors the paper's system overview: cleanup passes, target detection,
the RSkip transform (or a baseline), and the run-time management hookup —
"the system takes unreliable source code as an input and generates a
lightweight resilient executable".

Scheme resolution and pass sequencing live in :mod:`repro.pipeline`;
the driver keeps its documented **in-place** contract (the input module
IS the protected module), so it always bypasses the artifact cache.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from .core.config import RSkipConfig
from .core.manager import LoopProfile
from .core.rskip import RskipApplication
from .ir.module import Module
from .ir.verifier import verify_module
from .pipeline import protect
from .pipeline.registry import DRIVER_SCHEMES as SCHEMES  # noqa: F401
from .pipeline.registry import get_scheme
from .runtime.interpreter import Interpreter
from .runtime.memory import Memory
from .transforms.swift import ALL_SYNC_POINTS


@dataclass
class CompiledProgram:
    """A protected module plus everything needed to execute it."""

    module: Module
    scheme: str
    intrinsics: Dict[str, object] = field(default_factory=dict)
    application: Optional[RskipApplication] = None
    optimizations: Dict[str, int] = field(default_factory=dict)

    def interpreter(self, memory: Optional[Memory] = None, **kwargs) -> Interpreter:
        """A ready-to-run interpreter with the runtime intrinsics linked."""
        interp = Interpreter(self.module, memory=memory, **kwargs)
        interp.register_intrinsics(self.intrinsics)
        return interp

    @property
    def skip_stats(self):
        if self.application is None:
            return None
        return self.application.runtime.total_stats()


def compile_protected(
    module: Module,
    scheme: str = "rskip",
    config: Optional[RSkipConfig] = None,
    profiles: Optional[Dict[str, LoopProfile]] = None,
    optimize: bool = True,
    verify: bool = True,
    sync_points: Iterable[str] = ALL_SYNC_POINTS,
    ar_overrides: Optional[Dict[str, float]] = None,
) -> CompiledProgram:
    """Protect *module* in place and return the compiled program.

    ``scheme`` accepts any registry spelling: ``"none"``/``"UNSAFE"``
    (cleanup only), ``"swift"`` (duplication + detection), ``"swift-r"``
    (triplication + recovery) or ``"rskip"``/``"AR<k>"`` (prediction-based
    protection; pass trained *profiles* from `repro.core.training` for
    best skip rates).  Unknown names raise with the full alias list.
    """
    descriptor = get_scheme(scheme, config)

    program = protect(
        module, descriptor,
        config=config, profiles=profiles,
        optimize=optimize, verify=verify,
        sync_points=sync_points, ar_overrides=ar_overrides,
        use_cache=False,
    )
    if verify:
        verify_module(module)
    return CompiledProgram(
        module=program.module,
        scheme=scheme,
        intrinsics=program.intrinsics,
        application=program.application,
        optimizations=program.optimizations,
    )
