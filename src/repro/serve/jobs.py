"""Background campaign jobs: submit, poll, crash-recover.

A fault-injection campaign is minutes of work — far past any sane HTTP
request budget — so ``POST /campaigns`` returns ``202`` with a job id
and the campaign runs on a dedicated executor.  Persistence is layered
on the machinery the engine already has:

* every chunk the engine finishes lands in the job's **checkpoint**
  file (atomic write-then-rename, ``campaign_engine._save_checkpoint``);
* the job **record** (params, status, progress) is its own JSON file
  under ``<state>/jobs/``, saved with the same atomicity;
* on daemon restart, :meth:`JobManager.recover` re-submits every job
  that was queued or running with ``resume=True`` — the engine skips the
  checkpointed chunks, and the final tallies are byte-identical to an
  uninterrupted run (the resume path the campaign tests already pin).

The checkpoint lock (:class:`repro.eval.CheckpointLock`) makes the
crash-recovery story safe: a SIGKILLed daemon leaves a lock naming a
dead pid, which the restarted daemon steals; a *live* owner makes the
resume fail cleanly instead of interleaving two writers.
"""
from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..eval import Harness
from ..eval.campaign_engine import CheckpointBusyError, run_campaign_parallel
from ..pipeline.registry import canonical_scheme, get_scheme
from ..workloads import get_workload

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: trial-count ceiling per job — admission control for work size, not
#: just request count
MAX_TRIALS = 100_000

#: chunks per checkpoint write; small so a kill loses little work
DEFAULT_JOB_CHUNK = 5


@dataclass
class JobRecord:
    """One campaign job; everything here round-trips through JSON."""

    id: str
    params: Dict[str, object]
    status: str = JOB_QUEUED
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    done_trials: int = 0
    total_trials: int = 0
    error: str = ""
    result: Optional[dict] = None
    checkpoint: str = ""
    #: times this record was picked up by a (re)started daemon
    restarts: int = 0

    def view(self) -> dict:
        """JSON-safe poll response."""
        data = asdict(self)
        if self.total_trials:
            data["progress"] = self.done_trials / self.total_trials
        return data


class JobManager:
    """Owns the job records, their executor, and the state directory."""

    def __init__(self, directory: str, max_workers: int = 1,
                 chunk: int = DEFAULT_JOB_CHUNK):
        self.directory = directory
        self.jobs_dir = os.path.join(directory, "jobs")
        self.checkpoints_dir = os.path.join(directory, "checkpoints")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.checkpoints_dir, exist_ok=True)
        self.chunk = max(1, int(chunk))
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-job")
        self._records: Dict[str, JobRecord] = {}
        # records are mutated by executor threads and read by the event
        # loop; every touch goes through this lock
        self._lock = threading.Lock()
        self._seq = 0

    # -- persistence ----------------------------------------------------------
    def _record_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def _save(self, record: JobRecord) -> None:
        payload = asdict(record)
        fd, tmp = tempfile.mkstemp(
            prefix=".job-", suffix=".tmp", dir=self.jobs_dir)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self._record_path(record.id))
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise

    def recover(self) -> List[str]:
        """Load persisted records; re-submit unfinished jobs with resume.

        Returns the ids that were resumed, oldest first — the restart
        half of the crash-recovery contract.
        """
        try:
            names = sorted(os.listdir(self.jobs_dir))
        except OSError:
            return []
        resumed: List[str] = []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = JobRecord(**json.load(handle))
            except (OSError, ValueError, TypeError):
                continue  # corrupt record: leave for inspection, skip
            with self._lock:
                self._records[record.id] = record
            if record.status in (JOB_QUEUED, JOB_RUNNING):
                with self._lock:
                    record.status = JOB_QUEUED
                    record.restarts += 1
                self._save(record)
                self.executor.submit(self._run, record.id)
                resumed.append(record.id)
        return resumed

    # -- submission -----------------------------------------------------------
    def _new_id(self) -> str:
        with self._lock:
            self._seq += 1
            seq = self._seq
        return f"{int(time.time() * 1000):013d}-{seq:04d}-{os.urandom(3).hex()}"

    @staticmethod
    def normalize_params(body: dict) -> Dict[str, object]:
        """Validate and normalize a ``POST /campaigns`` body; raises
        ``ValueError`` with a client-presentable message."""
        workload = body.get("workload")
        if not isinstance(workload, str):
            raise ValueError("'workload' (string) is required")
        try:
            get_workload(workload)
        except KeyError as exc:
            raise ValueError(str(exc.args[0] if exc.args else exc))
        scheme = canonical_scheme(body.get("scheme", "UNSAFE"))
        trials = body.get("trials", 100)
        if not isinstance(trials, int) or not 1 <= trials <= MAX_TRIALS:
            raise ValueError(f"'trials' must be an int in [1, {MAX_TRIALS}]")
        seed = body.get("seed", 0)
        if not isinstance(seed, int):
            raise ValueError("'seed' must be an int")
        scale = body.get("scale", 0.6)
        if not isinstance(scale, (int, float)) or not 0.0 < scale <= 4.0:
            raise ValueError("'scale' must be a number in (0, 4]")
        # the CLI's injection discipline: SFI runs use smaller problems
        return {
            "workload": workload,
            "scheme": scheme,
            "trials": trials,
            "seed": seed,
            "scale": min(float(scale), 0.45),
        }

    def submit(self, body: dict) -> JobRecord:
        params = self.normalize_params(body)
        record = JobRecord(
            id=self._new_id(),
            params=params,
            created_at=time.time(),
            total_trials=params["trials"],
        )
        record.checkpoint = os.path.join(
            self.checkpoints_dir, f"{record.id}.json")
        with self._lock:
            self._records[record.id] = record
        self._save(record)
        self.executor.submit(self._run, record.id)
        return record

    # -- execution (jobs executor threads) ------------------------------------
    def _run(self, job_id: str) -> None:
        with self._lock:
            record = self._records.get(job_id)
            if record is None or record.status in (JOB_DONE, JOB_FAILED):
                return
            record.status = JOB_RUNNING
            record.started_at = time.time()
        self._save(record)

        def progress(done: int, total: int, _elapsed: float) -> None:
            # called once per finished chunk, right after the engine
            # checkpointed it — the record mirrors the durable state
            with self._lock:
                record.done_trials = done
                record.total_trials = total
            self._save(record)

        try:
            result = self._run_campaign(record, progress)
        except CheckpointBusyError as exc:
            self._finish(record, JOB_FAILED,
                         error=f"checkpoint busy: {exc}")
            return
        except Exception as exc:  # surfaced to the poller, not swallowed
            self._finish(record, JOB_FAILED, error=f"{type(exc).__name__}: {exc}")
            return
        with self._lock:
            record.result = result.to_dict()
            record.done_trials = record.total_trials
        self._finish(record, JOB_DONE)
        # the record holds the tallies now; the checkpoint is spent
        try:
            os.remove(record.checkpoint)
        except OSError:
            pass

    def _finish(self, record: JobRecord, status: str, error: str = "") -> None:
        with self._lock:
            record.status = status
            record.error = error
            record.finished_at = time.time()
        self._save(record)

    def _run_campaign(self, record: JobRecord, progress):
        params = record.params
        workload = get_workload(params["workload"])
        descriptor = get_scheme(params["scheme"])
        profiles = None
        if descriptor.needs_training:
            # the CLI's exact profile source, so job tallies are
            # byte-identical to `repro campaign` at the same params
            profiles = Harness(
                workload, scale=params["scale"], timing=False,
            ).profiles_for(descriptor.acceptable_range)
        return run_campaign_parallel(
            workload, descriptor.name,
            trials=params["trials"], seed=params["seed"],
            scale=params["scale"], profiles=profiles,
            jobs=1, chunk=self.chunk,
            checkpoint=record.checkpoint, resume=True,
            progress=progress,
        )

    # -- queries (event loop) -------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def list_views(self) -> List[dict]:
        with self._lock:
            records = sorted(self._records.values(), key=lambda r: r.id)
            return [record.view() for record in records]

    def stats(self) -> dict:
        with self._lock:
            by_status: Dict[str, int] = {}
            for record in self._records.values():
                by_status[record.status] = by_status.get(record.status, 0) + 1
        return {"jobs": sum(by_status.values()), "by_status": by_status}

    def shutdown(self, wait: bool = False) -> None:
        self.executor.shutdown(wait=wait, cancel_futures=True)
