"""Single-flight request deduplication.

Concurrent identical requests — same module fingerprint × scheme
descriptor hash, the exact key the artifact cache uses — should cost one
computation, not N.  The artifact cache alone cannot give that: it only
memoizes *completed* work, so two requests arriving together both miss
and both compute.  :class:`DedupRegistry` closes the window by parking
followers on the leader's future.

All bookkeeping runs on the event loop thread (the computations
themselves run in the executor), so there is no locking here — the
registry's dict is only ever touched between awaits.
"""
from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Tuple


class DedupRegistry:
    """In-flight computations keyed by artifact key; followers await the
    leader instead of recomputing."""

    def __init__(self):
        self._inflight: Dict[str, asyncio.Future] = {}
        self.computations = 0
        self.dedup_hits = 0

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(self, key: str,
                  factory: Callable[[], Awaitable]) -> Tuple[object, bool]:
        """Return ``(result, deduped)``: the leader runs *factory* and
        publishes; followers arriving while it is in flight share the
        outcome (including a raised exception) and report ``deduped``."""
        existing = self._inflight.get(key)
        if existing is not None:
            self.dedup_hits += 1
            return await asyncio.shield(existing), True

        self.computations += 1
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            result = await factory()
        except BaseException as exc:
            if isinstance(exc, asyncio.CancelledError):
                future.cancel()
            elif not future.done():
                future.set_exception(exc)
            # a future nobody awaits must not warn at GC time
            if future.cancelled() or future.exception() is not None:
                try:
                    future.exception()
                except asyncio.CancelledError:
                    pass
            raise
        else:
            future.set_result(result)
            return result, False
        finally:
            self._inflight.pop(key, None)

    def stats(self) -> dict:
        return {
            "inflight": len(self._inflight),
            "computations": self.computations,
            "dedup_hits": self.dedup_hits,
        }
