"""Admission control: a bounded global in-flight budget plus per-client
caps.

The daemon's executor has a fixed number of worker threads; admitting
more work than they can drain just grows an unbounded queue and turns
every request slow.  The gate counts work *admitted but not yet
finished* (queued + executing) and rejects beyond a budget with a
``429`` + ``Retry-After`` so well-behaved clients back off.  Per-client
caps stop one client from saturating the pool for everyone — the
"millions of users" framing makes fairness part of correctness.

Like the dedup registry, this is event-loop-confined state: admit and
release both run on the loop thread, so plain counters suffice.
"""
from __future__ import annotations

from typing import Dict, Optional


class AdmissionGate:
    """Try-acquire semantics: ``admit`` returns ``None`` when admitted or
    a retry-after hint (seconds) when the request must be turned away."""

    def __init__(self, max_inflight: int = 32, per_client: int = 8):
        if max_inflight < 1 or per_client < 1:
            raise ValueError("admission bounds must be >= 1")
        self.max_inflight = max_inflight
        self.per_client = per_client
        self.inflight = 0
        self._by_client: Dict[str, int] = {}
        self.admitted_total = 0
        self.rejected_total = 0
        self.rejected_per_client = 0

    def admit(self, client: str) -> Optional[float]:
        if self.inflight >= self.max_inflight:
            self.rejected_total += 1
            # saturation clears at executor pace; suggest a fuller backoff
            return 2.0
        if self._by_client.get(client, 0) >= self.per_client:
            self.rejected_total += 1
            self.rejected_per_client += 1
            return 1.0
        self.inflight += 1
        self._by_client[client] = self._by_client.get(client, 0) + 1
        self.admitted_total += 1
        return None

    def release(self, client: str) -> None:
        self.inflight = max(0, self.inflight - 1)
        remaining = self._by_client.get(client, 0) - 1
        if remaining > 0:
            self._by_client[client] = remaining
        else:
            self._by_client.pop(client, None)

    def stats(self) -> dict:
        return {
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            "per_client": self.per_client,
            "clients": len(self._by_client),
            "admitted": self.admitted_total,
            "rejected": self.rejected_total,
            "rejected_per_client": self.rejected_per_client,
        }
