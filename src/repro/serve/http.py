"""Minimal HTTP/1.1 layer over asyncio streams — stdlib only.

The serve daemon speaks just enough HTTP for JSON request/response
traffic: request line + headers + ``Content-Length`` bodies in,
``application/json`` responses out, keep-alive by default (HTTP/1.1
semantics, ``Connection: close`` honored).  No chunked encoding, no
multipart, no TLS — this is an internal protection service, not a web
framework, and the whole parser fits in one screen so it can be audited
like the rest of the repo.

Errors raise :class:`HttpError`, which the app layer renders as a JSON
error body with the right status code.
"""
from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

#: request head (request line + headers) ceiling
MAX_HEAD_BYTES = 32 * 1024
#: request body ceiling — IR modules are text, megabytes are plenty
MAX_BODY_BYTES = 8 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol- or request-level failure with an HTTP status."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


@dataclass
class Request:
    """One parsed request; header names are lower-cased."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    client: str = ""

    def json(self) -> dict:
        """The body decoded as a JSON object (400/422 on anything else)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise HttpError(422, "request body must be a JSON object")
        return data

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """A JSON response; ``payload`` is serialized by :func:`encode_response`."""

    status: int = 200
    payload: Optional[dict] = None
    headers: Dict[str, str] = field(default_factory=dict)


async def read_request(reader: asyncio.StreamReader,
                       client: str = "") -> Optional[Request]:
    """Read one request off *reader*; ``None`` on clean EOF between
    requests (the peer closed a keep-alive connection)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise HttpError(431, f"request head exceeds {MAX_HEAD_BYTES} bytes")
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(431, f"request head exceeds {MAX_HEAD_BYTES} bytes")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query))

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {raw_length!r}")
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {raw_length!r}")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid-body")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    return Request(method=method, path=path, query=query, headers=headers,
                   body=body, client=client)


def encode_response(response: Response, *, keep_alive: bool = True) -> bytes:
    """Serialize *response* (JSON payload) to wire bytes."""
    body = b""
    if response.payload is not None:
        body = (json.dumps(response.payload, sort_keys=True) + "\n").encode(
            "utf-8")
    phrase = STATUS_PHRASES.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {phrase}"]
    headers = {
        "content-type": "application/json",
        "content-length": str(len(body)),
        "connection": "keep-alive" if keep_alive else "close",
    }
    headers.update({k.lower(): str(v) for k, v in response.headers.items()})
    head.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def error_response(exc: HttpError) -> Response:
    return Response(
        status=exc.status,
        payload={"error": exc.message, "status": exc.status},
        headers=dict(exc.headers),
    )
