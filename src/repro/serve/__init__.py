"""Protection-as-a-service: the ``repro serve`` asyncio HTTP/JSON daemon.

Stdlib-only (asyncio streams + a minimal HTTP/1.1 layer).  The module
split mirrors the concurrency story:

* :mod:`.http` — wire protocol (parse/encode, no app logic);
* :mod:`.dedup` — single-flight dedup of identical in-flight requests;
* :mod:`.quotas` — bounded admission with per-client caps (429s);
* :mod:`.jobs` — background campaign jobs with checkpoint crash-recovery;
* :mod:`.app` — routing and the loop/executor seam tying them together.
"""
from .app import ServeApp, run_serve
from .dedup import DedupRegistry
from .http import HttpError, Request, Response
from .jobs import JobManager, JobRecord
from .quotas import AdmissionGate

__all__ = [
    "ServeApp",
    "run_serve",
    "DedupRegistry",
    "HttpError",
    "Request",
    "Response",
    "JobManager",
    "JobRecord",
    "AdmissionGate",
]
