"""The serve daemon: protection-as-a-service over the existing pipeline.

``repro serve`` exposes the repo's compile/train/measure/campaign
machinery as an asyncio HTTP/JSON daemon.  Division of labor:

* the **event loop** parses requests, makes admission decisions, keys
  computations and parks duplicate requests (`.dedup`, `.quotas` — all
  loop-confined state);
* a **request executor** (thread pool) runs the actual pipeline work —
  protection, training, measurement — over the shared artifact cache,
  which is what the thread-safety work in `repro.pipeline.cache` exists
  for;
* a **job executor** (`.jobs`) runs fault-injection campaigns in the
  background, checkpointing per chunk so a killed daemon resumes where
  it stopped.

Endpoints::

    GET  /healthz              liveness
    GET  /stats                dedup / admission / jobs / cache counters
    POST /protect              {"workload"|"ir", "scheme", "optimize"}
    POST /train                {"workload", "scheme", "scale", "seed"}
    POST /run                  {"workload", "scheme", "scale", "seed"}
    POST /campaigns            202 + job id; params as `repro campaign`
    GET  /campaigns[/<id>]     poll job progress / results

Every computed request stamps a :class:`repro.obs.RunManifest` under
``<state>/manifests/`` — the audit trail of what the service ran.
"""
from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from ..eval import Harness
from ..ir.parser import parse_module
from ..ir.printer import format_module
from ..obs import RunManifest, run_id_for
from ..pipeline import protect
from ..pipeline.cache import artifact_key, cache_dir, get_cache
from ..pipeline.registry import canonical_scheme, get_scheme
from ..runtime import default_backend
from ..runtime.compiler import module_fingerprint
from ..workloads import WORKLOADS, get_workload
from .dedup import DedupRegistry
from .http import (
    HttpError,
    Request,
    Response,
    encode_response,
    error_response,
    read_request,
)
from .jobs import JobManager
from .quotas import AdmissionGate

#: keep-alive connections idle longer than this are closed
IDLE_TIMEOUT = 60.0


def _bad_request(exc: Exception) -> HttpError:
    """Registry/validation errors become client errors, not 500s."""
    message = exc.args[0] if exc.args else str(exc)
    return HttpError(422, str(message))


class ServeApp:
    """One daemon instance: sockets, executors, and loop-confined state."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        state_dir: Optional[str] = None,
        workers: int = 4,
        job_workers: int = 1,
        max_inflight: int = 32,
        per_client: int = 8,
        idle_timeout: float = IDLE_TIMEOUT,
    ):
        self.host = host
        self.port = port
        self.state_dir = state_dir or os.path.join(cache_dir(), "serve")
        self.manifests_dir = os.path.join(self.state_dir, "manifests")
        os.makedirs(self.manifests_dir, exist_ok=True)
        self.idle_timeout = idle_timeout
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self.dedup = DedupRegistry()
        self.gate = AdmissionGate(
            max_inflight=max_inflight, per_client=per_client)
        self.jobs = JobManager(self.state_dir, max_workers=job_workers)
        self.requests_total = 0
        self.started_at = time.time()
        self._server: Optional[asyncio.AbstractServer] = None
        self._req_seq = 0

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> list:
        """Bind the socket and resume persisted jobs; returns resumed ids.

        Job recovery runs *before* the socket opens so a poller can never
        observe the daemon up but its jobs forgotten.
        """
        resumed = self.jobs.recover()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return resumed

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.jobs.shutdown()
        self.executor.shutdown(wait=False, cancel_futures=True)

    # -- connection loop ------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        peer_ip = peer[0] if isinstance(peer, tuple) and peer else "local"
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader, peer_ip), self.idle_timeout)
                except (asyncio.TimeoutError, TimeoutError):
                    break
                except HttpError as exc:
                    writer.write(encode_response(
                        error_response(exc), keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep = request.keep_alive
                response = await self._dispatch(request)
                writer.write(encode_response(response, keep_alive=keep))
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing --------------------------------------------------------------
    def _route(self, request: Request) -> Tuple[object, bool]:
        """Resolve ``(handler, gated)``; gated handlers pass admission."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return self._healthz, False
        if path == "/stats" and method == "GET":
            return self._stats, False
        if path == "/protect" and method == "POST":
            return self._protect, True
        if path == "/train" and method == "POST":
            return self._train, True
        if path == "/run" and method == "POST":
            return self._run, True
        if path == "/campaigns" and method == "POST":
            return self._campaign_submit, True
        if path == "/campaigns" and method == "GET":
            return self._campaign_list, False
        if path.startswith("/campaigns/") and method == "GET":
            return self._campaign_get, False
        if path in ("/", "/healthz", "/stats", "/protect", "/train", "/run",
                    "/campaigns") or path.startswith("/campaigns/"):
            raise HttpError(405, f"{method} not allowed on {path}")
        raise HttpError(404, f"no such endpoint: {path}")

    @staticmethod
    def _client_of(request: Request) -> str:
        return request.headers.get("x-repro-client") or request.client or "local"

    async def _dispatch(self, request: Request) -> Response:
        self.requests_total += 1
        try:
            handler, gated = self._route(request)
            if not gated:
                return await handler(request)
            client = self._client_of(request)
            retry = self.gate.admit(client)
            if retry is not None:
                raise HttpError(
                    429, "server is at capacity; retry later",
                    {"retry-after": str(max(1, int(round(retry))))})
            try:
                return await handler(request)
            finally:
                self.gate.release(client)
        except HttpError as exc:
            return error_response(exc)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # one request must never kill the daemon
            return error_response(
                HttpError(500, f"{type(exc).__name__}: {exc}"))

    # -- small endpoints ------------------------------------------------------
    async def _healthz(self, request: Request) -> Response:
        return Response(payload={"ok": True})

    async def _stats(self, request: Request) -> Response:
        cache = get_cache()
        return Response(payload={
            "uptime": time.time() - self.started_at,
            "requests": self.requests_total,
            "dedup": self.dedup.stats(),
            "admission": self.gate.stats(),
            "jobs": self.jobs.stats(),
            "cache": cache.stats() if cache is not None else None,
        })

    # -- compute endpoints ----------------------------------------------------
    def _in_executor(self, fn):
        return asyncio.get_running_loop().run_in_executor(self.executor, fn)

    async def _deduped(self, endpoint: str, key: str, compute,
                       params: dict, fingerprints: dict) -> Response:
        """Shared tail of every compute endpoint: single-flight the work,
        stamp a manifest for this request, report the dedup outcome."""
        result, deduped = await self.dedup.run(
            key, lambda: self._in_executor(compute))
        self._write_manifest(endpoint, key, params, fingerprints, deduped)
        payload = dict(result)  # followers share the dict; never mutate it
        payload["deduped"] = deduped
        return Response(payload=payload)

    def _write_manifest(self, endpoint: str, key: str, params: dict,
                        fingerprints: dict, deduped: bool) -> None:
        self._req_seq += 1
        name = f"req-{int(self.started_at)}-{self._req_seq:06d}.json"
        RunManifest(
            run=run_id_for("serve", endpoint, key),
            command=f"serve:{endpoint}",
            backend=default_backend(),
            params=dict(params, deduped=deduped),
            fingerprints=fingerprints,
        ).write_to(os.path.join(self.manifests_dir, name))

    @staticmethod
    def _scheme_of(body: dict, default: str = "AR50"):
        try:
            return get_scheme(canonical_scheme(body.get("scheme", default)))
        except ValueError as exc:
            raise _bad_request(exc)

    async def _protect(self, request: Request) -> Response:
        body = request.json()
        descriptor = self._scheme_of(body)
        optimize = body.get("optimize", True)
        if not isinstance(optimize, bool):
            raise HttpError(422, "'optimize' must be a boolean")
        ir_text = body.get("ir")
        workload_name = body.get("workload")
        if isinstance(ir_text, str):
            def build():
                return parse_module(ir_text)
            source = "ir"
        elif isinstance(workload_name, str):
            try:
                workload = get_workload(workload_name)
            except KeyError as exc:
                raise _bad_request(exc)
            build = workload.build
            source = workload.name
        else:
            raise HttpError(422, "provide 'workload' (name) or 'ir' (text)")

        # building/parsing + fingerprinting is CPU work: executor, not loop
        def prepare():
            module = build()
            return module, module_fingerprint(module)
        try:
            module, fingerprint = await self._in_executor(prepare)
        except ValueError as exc:  # unparsable IR
            raise _bad_request(exc)

        key = artifact_key("serve-protect", fingerprint,
                           descriptor.descriptor_hash(), optimize)

        def compute():
            protected = protect(module, descriptor.name, optimize=optimize)
            return {
                "scheme": protected.scheme,
                "source": source,
                "fingerprint": fingerprint,
                "cache_hit": protected.cache_hit,
                "optimizations": protected.optimizations,
                "passes": [run.name for run in protected.pass_runs],
                "module": format_module(protected.module),
            }

        return await self._deduped(
            "/protect", key, compute,
            params={"scheme": descriptor.name, "source": source,
                    "optimize": optimize},
            fingerprints={f"{source}|{descriptor.name}": fingerprint})

    async def _train(self, request: Request) -> Response:
        body = request.json()
        descriptor = self._scheme_of(body, default="AR50")
        if not descriptor.needs_training:
            raise HttpError(
                422, f"scheme {descriptor.name} needs no training")
        try:
            workload = get_workload(body.get("workload", ""))
        except KeyError as exc:
            raise _bad_request(exc)
        scale = body.get("scale", 0.6)
        seed = body.get("seed", 1)
        if not isinstance(scale, (int, float)) or not isinstance(seed, int):
            raise HttpError(422, "'scale' must be a number, 'seed' an int")
        harness = Harness(workload, scale=float(scale), seed=seed,
                          timing=False)
        ar = descriptor.acceptable_range
        # the harness's own cache key: fingerprint × training parameters —
        # identical train requests dedup exactly like identical protects
        key = await self._in_executor(lambda: harness._profile_key(ar))

        def compute():
            profiles = harness.profiles_for(ar)
            return {
                "workload": workload.name,
                "scheme": descriptor.name,
                "acceptable_range": ar,
                "trained_loops": sorted(profiles),
            }

        return await self._deduped(
            "/train", key, compute,
            params={"workload": workload.name, "scheme": descriptor.name,
                    "scale": float(scale), "seed": seed},
            fingerprints={})

    async def _run(self, request: Request) -> Response:
        body = request.json()
        descriptor = self._scheme_of(body)
        try:
            workload = get_workload(body.get("workload", ""))
        except KeyError as exc:
            raise _bad_request(exc)
        scale = body.get("scale", 0.6)
        seed = body.get("seed", 1)
        if not isinstance(scale, (int, float)) or not isinstance(seed, int):
            raise HttpError(422, "'scale' must be a number, 'seed' an int")
        scale = float(scale)
        key = artifact_key("serve-run", workload.name, descriptor.name,
                           scale, seed)

        def compute():
            # `repro run` semantics: golden from UNSAFE on the same input
            harness = Harness(workload, scale=scale, seed=seed)
            inp = workload.test_inputs(1, seed=seed + 17, scale=scale)[0]
            golden = harness.run_scheme("UNSAFE", inp)
            record = harness.run_scheme(descriptor.name, inp,
                                        golden=golden.output)
            return {
                "workload": workload.name,
                "scheme": descriptor.name,
                "steps": record.steps,
                "cycles": record.cycles,
                "ipc": record.ipc,
                "correct": record.correct,
                "skip_rate": record.skip_rate,
            }

        return await self._deduped(
            "/run", key, compute,
            params={"workload": workload.name, "scheme": descriptor.name,
                    "scale": scale, "seed": seed},
            fingerprints={})

    # -- campaign endpoints ---------------------------------------------------
    async def _campaign_submit(self, request: Request) -> Response:
        try:
            record = self.jobs.submit(request.json())
        except ValueError as exc:
            raise _bad_request(exc)
        return Response(status=202, payload={"job": record.view()})

    async def _campaign_list(self, request: Request) -> Response:
        return Response(payload={"jobs": self.jobs.list_views()})

    async def _campaign_get(self, request: Request) -> Response:
        job_id = request.path.rstrip("/").rsplit("/", 1)[-1]
        record = self.jobs.get(job_id)
        if record is None:
            raise HttpError(404, f"no such job: {job_id}")
        return Response(payload={"job": record.view()})


def run_serve(
    host: str = "127.0.0.1",
    port: int = 8787,
    state_dir: Optional[str] = None,
    workers: int = 4,
    job_workers: int = 1,
    max_inflight: int = 32,
    per_client: int = 8,
) -> None:
    """Blocking entry point for ``repro serve`` (Ctrl-C to stop)."""

    async def main():
        app = ServeApp(
            host=host, port=port, state_dir=state_dir, workers=workers,
            job_workers=job_workers, max_inflight=max_inflight,
            per_client=per_client,
        )
        resumed = await app.start()
        # parseable by scripts: the one line tooling greps for the port
        print(f"repro serve: listening on http://{app.host}:{app.port}",
              flush=True)
        print(f"repro serve: state under {app.state_dir} "
              f"({len(WORKLOADS)} workloads registered)", flush=True)
        if resumed:
            print(f"repro serve: resumed {len(resumed)} campaign job(s): "
                  f"{', '.join(resumed)}", flush=True)
        try:
            await app.serve_forever()
        finally:
            await app.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
