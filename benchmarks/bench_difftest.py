"""Throughput probe for the differential-testing subsystem: programs
generated and fully oracle-checked per second, plus the generator alone.
The absolute numbers bound how large a fuzzing budget CI can afford."""
import os

from repro.difftest import generate, render_report, run_difftest

BENCH_N = int(os.environ.get("REPRO_BENCH_DIFFTEST_N", "60"))


def test_difftest_generator_throughput(benchmark):
    def gen_batch():
        return [generate(0, i) for i in range(BENCH_N)]

    programs = benchmark.pedantic(gen_batch, rounds=3, iterations=1)
    assert len(programs) == BENCH_N
    sizes = [sum(f.size() for f in p.module.functions.values()) for p in programs]
    benchmark.extra_info["programs"] = BENCH_N
    benchmark.extra_info["mean_instrs"] = round(sum(sizes) / len(sizes), 1)


def test_difftest_full_oracle_throughput(benchmark):
    report = benchmark.pedantic(
        lambda: run_difftest(seed=0, n=BENCH_N, oracle="all", jobs=1),
        rounds=1, iterations=1,
    )
    print("\n== difftest throughput probe ==")
    print(render_report(report))
    benchmark.extra_info["programs"] = BENCH_N
    benchmark.extra_info["violations"] = len(report.violations)
    assert not report.violations
