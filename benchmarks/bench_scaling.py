"""Problem-size sensitivity (supports EXPERIMENTS.md's scale-deviation
notes): dynamic interpolation amortizes its per-phase endpoint
re-computations, so skip rate rises and overhead falls with loop length."""
from repro.eval import render_scaling, scaling_study
from repro.workloads import get_workload

SCALES = (0.4, 0.8, 1.2, 1.7)


def test_scaling_lud(benchmark):
    workload = get_workload("lud")
    rows = benchmark.pedantic(
        lambda: scaling_study(workload, scales=SCALES), rounds=1, iterations=1
    )
    print("\n== Scaling study ==")
    print(render_scaling("lud", rows))
    benchmark.extra_info["rows"] = [
        (r.scale, r.elements, round(r.skip_rate, 4)) for r in rows
    ]
    assert rows[-1].skip_rate > rows[0].skip_rate
    assert rows[-1].norm_instructions < rows[0].norm_instructions


def test_scaling_conv1d(benchmark):
    workload = get_workload("conv1d")
    rows = benchmark.pedantic(
        lambda: scaling_study(workload, scales=SCALES), rounds=1, iterations=1
    )
    print("\n== Scaling study ==")
    print(render_scaling("conv1d", rows))
    benchmark.extra_info["rows"] = [
        (r.scale, r.elements, round(r.skip_rate, 4)) for r in rows
    ]
    # conv1d is long-loop already at small scales: overhead stays flat-ish
    assert rows[-1].norm_instructions <= rows[0].norm_instructions + 0.25
