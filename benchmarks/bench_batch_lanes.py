"""Campaign throughput: serial trial blocks vs the lane-vectorized batch.

Runs the same block of fault-injection trials through the serial
reference path (`run_trial_block`, one interpreter execution per trial)
and the batch engine (`run_trial_block_batch`, the whole block as lanes
of one lockstep execution), checks the tallies are byte-identical, and
records trials/second for both.  ``python benchmarks/bench_batch_lanes.py``
writes ``BENCH_batch_lanes.json`` at the repository root; the pytest
wrapper asserts the batch engine clears its 10x contract on at least
two workloads.

The mix is deliberately honest: sgemm and conv1d are long-region
workloads where divergence windows stay sparse (the best case), SWIFT
adds intrinsic traffic, and kde/SWIFT-R is the known worst case — its
faulted lanes hang often, and a hanging lane burns the whole
HANG_FACTOR budget regardless of engine.

Scale knob: ``REPRO_BENCH_BATCH_TRIALS`` — trials per measured block
(default 200, one 256-lane slab).
"""
from __future__ import annotations

import json
import os
import time

from repro.eval.fault_campaign import (
    campaign_context,
    run_trial_block,
    run_trial_block_batch,
)
from repro.eval.schemes import prepare
from repro.pipeline.registry import canonical_scheme
from repro.workloads import get_workload

TRIALS = int(os.environ.get("REPRO_BENCH_BATCH_TRIALS", "200"))

#: The batch engine's contract (ISSUE: perf acceptance threshold) ...
REQUIRED_SPEEDUP = 10.0
#: ... on at least this many of the measured workloads.
REQUIRED_WORKLOADS = 2

#: (workload, scheme, input scale, trials multiplier)
CONFIGS = (
    ("sgemm", "UNSAFE", 0.45, 1.0),
    ("conv1d", "UNSAFE", 0.45, 1.0),
    ("blackscholes", "SWIFT", 0.45, 1.0),
    ("kde", "SWIFT-R", 0.45, 0.5),
    ("conv1d", "AR50", 0.45, 0.5),
)

SEED = 0


def _measure(block, repeats=2):
    """(best seconds, last result) of *block* over *repeats* runs."""
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = block()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return max(best, 1e-9), result


def measure_campaign_throughput(trials=TRIALS):
    """trials/sec per (workload, scheme) for both engines, plus ratios."""
    results = {}
    for wname, scheme_name, scale, factor in CONFIGS:
        count = max(8, int(trials * factor))
        workload = get_workload(wname)
        scheme = canonical_scheme(scheme_name, None)
        inp = workload.test_inputs(1, seed=SEED + 17, scale=scale)[0]
        prepared = prepare(workload, scheme)
        ctx = campaign_context(prepared, workload, inp)

        serial_s, serial = _measure(lambda: run_trial_block(
            prepared, workload, inp, ctx, scheme, SEED, 0, count))
        batch_s, batch = _measure(lambda: run_trial_block_batch(
            prepared, workload, inp, ctx, scheme, SEED, 0, count))
        # throughput without equivalence is meaningless
        assert batch.to_dict() == serial.to_dict(), \
            f"{wname}/{scheme}: batch tallies diverged from serial"

        results[f"{wname}_{scheme_name.lower()}"] = {
            "trials": count,
            "region_steps": ctx.region_steps,
            "serial_trials_per_sec": round(count / serial_s, 2),
            "batch_trials_per_sec": round(count / batch_s, 2),
            "speedup": round(serial_s / batch_s, 1),
        }
    return results


def write_baseline(path="BENCH_batch_lanes.json"):
    results = measure_campaign_throughput()
    cleared = sum(
        1 for row in results.values() if row["speedup"] >= REQUIRED_SPEEDUP)
    payload = {
        "benchmark": "batch-lane campaign throughput",
        "unit": "fault-injection trials per second (identical tallies)",
        "trials_per_block": TRIALS,
        "required_speedup": REQUIRED_SPEEDUP,
        "required_workloads": REQUIRED_WORKLOADS,
        "workloads_clearing_required_speedup": cleared,
        "workloads": results,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2) + "\n")
    return payload


def test_batch_engine_speedup():
    results = measure_campaign_throughput()
    print("\n== batch-lane campaign throughput ==")
    for name, row in results.items():
        print(f"  {name}: serial {row['serial_trials_per_sec']:.1f} "
              f"trials/s  batch {row['batch_trials_per_sec']:.1f} trials/s  "
              f"({row['speedup']:.1f}x)")
    cleared = sum(
        1 for row in results.values() if row["speedup"] >= REQUIRED_SPEEDUP)
    assert cleared >= REQUIRED_WORKLOADS, (
        f"only {cleared} workloads reached {REQUIRED_SPEEDUP}x"
    )


if __name__ == "__main__":
    payload = write_baseline()
    print(json.dumps(payload, indent=2))
