"""Figure 2: coverage of predictable computations (Trend vs Top-10)."""
from repro.eval import figure2, reporting
from repro.workloads import ALL_WORKLOADS


def test_figure2(benchmark, bench_scale):
    rows = benchmark.pedantic(
        lambda: figure2(ALL_WORKLOADS, scale=bench_scale), rounds=1, iterations=1
    )
    print("\n== Figure 2: proportion of dynamic instructions whose outputs can be estimated ==")
    print(reporting.render_figure2(rows))
    benchmark.extra_info["rows"] = [
        (r.workload, round(r.trend_coverage, 3), round(r.topk_coverage, 3)) for r in rows
    ]
    # the paper's motivation: both methods cover a substantial share
    avg_trend = sum(r.trend_coverage for r in rows) / len(rows)
    assert avg_trend > 0.2
