"""Ablation benches for the design choices DESIGN.md calls out:

* histogram-based vs uniform quantization (the paper's section 4.2
  improvement over Paraprox: accuracy 96.5% -> >99% on blackscholes);
* QoS-managed TP vs a fixed tuning parameter;
* phase-length distribution under different TPs.
"""
import random
import statistics

from repro.core import RSkipConfig, build_memo_table, simulate
from repro.eval import Harness
from repro.workloads import get_workload


def _blackscholes_training_set(scale):
    harness = Harness(get_workload("blackscholes"), scale=scale, timing=False)
    traces = harness.record_traces()
    X = [list(e.args) for tr in list(traces.values())[0] for e in tr if e.args]
    y = [e.value for tr in list(traces.values())[0] for e in tr if e.args]
    return X, y


def test_ablation_quantization(benchmark, bench_scale):
    """Histogram-based quantization beats the uniform assumption of the
    prior work at a constrained address-bit budget (paper section 4.2:
    accuracy 96.5% -> >99% on blackscholes).  The gap shows when bits are
    scarce enough that level placement matters."""
    X, y = _blackscholes_training_set(bench_scale)

    def build_both():
        hist = build_memo_table(X, y, total_bits=8, histogram_quantization=True)
        unif = build_memo_table(X, y, total_bits=8, histogram_quantization=False)
        return hist, unif

    hist, unif = benchmark.pedantic(build_both, rounds=1, iterations=1)
    err_h = hist.mean_relative_error(X, y)
    err_u = unif.mean_relative_error(X, y)
    print(f"\n== Ablation: quantization (8 address bits) == "
          f"histogram mre={err_h:.3f} uniform mre={err_u:.3f}")
    benchmark.extra_info["mean_relative_error"] = {
        "histogram": round(err_h, 4), "uniform": round(err_u, 4),
    }
    assert err_h <= err_u + 1e-9


def test_ablation_qos_vs_fixed_tp(benchmark, bench_scale):
    """Trained, signature-driven TP vs an untrained fixed TP."""
    workload = get_workload("conv1d")
    inp = workload.test_inputs(1, scale=bench_scale)[0]

    def run_both():
        trained = Harness(workload, scale=bench_scale, timing=False)
        rec_trained = trained.run_scheme("AR20", inp)

        # untrained: default profile, tiny fixed TP, no QoS table
        untrained = Harness(
            workload,
            config=RSkipConfig(acceptable_range=0.2, tuning_parameter=0.05),
            scale=bench_scale,
            timing=False,
        )
        untrained._profiles_by_ar[0.2] = {}
        prepared = untrained.prepare_scheme("AR20")
        rec_fixed = untrained.run_scheme("AR20", inp, prepared=prepared)
        return rec_trained.skip_rate, rec_fixed.skip_rate

    trained_skip, fixed_skip = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\n== Ablation: QoS-managed TP {trained_skip:.1%} vs fixed TP {fixed_skip:.1%}")
    benchmark.extra_info["skip"] = {"trained": round(trained_skip, 4), "fixed": round(fixed_skip, 4)}
    assert trained_skip >= fixed_skip - 0.05


def test_ablation_phase_lengths(benchmark):
    """Larger TPs produce longer phases (fewer endpoint re-computations)."""
    rng = random.Random(0)
    values = [10 + 3 * (i % 50) + rng.uniform(-0.2, 0.2) for i in range(600)]

    def sweep():
        return {tp: simulate(values, tp, 0.2) for tp in (0.1, 1.0, 10.0)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    means = {tp: statistics.mean(r.phase_lengths) for tp, r in results.items()}
    print(f"\n== Ablation: mean phase length by TP == {means}")
    benchmark.extra_info["mean_phase_length"] = {str(k): round(v, 2) for k, v in means.items()}
    assert means[10.0] > means[0.1]


def test_ablation_core_width(benchmark, bench_scale):
    """Duplication-based protection leans on ILP: on a narrow in-order
    core SWIFT-R's time overhead approaches its full 3x instruction
    overhead, while a wide core hides much of it (the paper's IPC
    argument, Figure 7d, as a sensitivity study)."""
    from repro.eval import prepare
    from repro.pipeline import SWIFT_R, UNSAFE
    from repro.runtime import Interpreter, TimingModel
    from repro.workloads import get_workload

    workload = get_workload("sgemm")
    inp = workload.test_inputs(1, scale=bench_scale)[0]

    def overhead(preset):
        out = {}
        for scheme in (UNSAFE, SWIFT_R):
            prepared = prepare(workload, scheme)
            memory = workload.fresh_memory(prepared.module, inp)
            tm = TimingModel.from_preset(preset)
            interp = Interpreter(prepared.module, memory=memory, timing=tm)
            interp.register_intrinsics(prepared.intrinsics)
            interp.run(prepared.main, inp.args)
            out[scheme] = tm.cycles
        return out[SWIFT_R] / out[UNSAFE]

    def sweep():
        return {p: overhead(p) for p in ("inorder-2", "ooo-4", "ooo-8")}

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n== Ablation: SWIFT-R slowdown by core == "
          f"{ {k: round(v, 2) for k, v in ratios.items()} }")
    benchmark.extra_info["slowdown"] = {k: round(v, 3) for k, v in ratios.items()}
    assert ratios["inorder-2"] > ratios["ooo-8"]


def test_ablation_temporal_predictor(benchmark, bench_scale):
    """Extension beyond the paper: the temporal (last-execution) predictor
    rescues trendless data on repeated loop executions — blackscholes'
    runs loop re-prices the same options, so the second run validates
    against the first."""
    workload = get_workload("blackscholes")
    inp = workload.test_inputs(1, scale=bench_scale)[0]

    def run_both():
        out = {}
        for label, cfg in (
            ("baseline", RSkipConfig(acceptable_range=0.2, memoization=False)),
            ("temporal", RSkipConfig(acceptable_range=0.2, memoization=False,
                                     temporal=True)),
        ):
            harness = Harness(workload, config=cfg, scale=bench_scale,
                              timing=False)
            rec = harness.run_scheme("AR20", inp)
            out[label] = (rec.skip_rate, rec.stats.skipped_temporal)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    base_skip, _ = results["baseline"]
    temp_skip, temporal_hits = results["temporal"]
    print(f"\n== Ablation: temporal predictor == interp-only skip={base_skip:.1%} "
          f"+temporal skip={temp_skip:.1%} (temporal validations: {temporal_hits})")
    benchmark.extra_info["skip"] = {
        "baseline": round(base_skip, 4), "temporal": round(temp_skip, 4),
    }
    assert temp_skip > base_skip
    assert temporal_hits > 0
