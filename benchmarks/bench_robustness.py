"""Robustness study: hostile inputs and the CP fallback.

The paper's run-time management "may disable the dynamic interpolation at
low accuracy" (they never saw it trigger on their inputs).  This bench
feeds conv1d sign-flipping, trendless inputs until the QoS model gives up
on prediction and routes subsequent executions through the conventional
SWIFT-R-protected loop version — and verifies the outputs stay correct
throughout."""
import random

from repro.core import RSkipConfig, apply_rskip
from repro.runtime import Interpreter, outputs_equal
from repro.workloads import get_workload
from repro.workloads.inputs import rough_series


def test_qos_fallback_to_cp(benchmark, bench_scale):
    workload = get_workload("conv1d")

    def run_hostile():
        module = workload.build()
        app = apply_rskip(
            module,
            RSkipConfig(acceptable_range=0.2, interp_min_skip=0.10),
        )
        intrinsics = app.intrinsics()
        rng = random.Random(7)
        correct = 0
        runs = 4
        for _ in range(runs):
            inp = workload.make_input(rng, bench_scale)
            inp.arrays["x"] = rough_series(
                rng, len(inp.arrays["x"]), base=2.0, amplitude=1.5
            )
            # golden from an unprotected module on the same input
            ref_module = workload.build()
            ref_mem = workload.fresh_memory(ref_module, inp)
            Interpreter(ref_module, memory=ref_mem).run("main", inp.args)
            golden = ref_mem.read_global(*inp.output)

            mem = workload.fresh_memory(module, inp)
            interp = Interpreter(module, memory=mem)
            interp.register_intrinsics(intrinsics)
            interp.run("main", inp.args)
            if outputs_equal(golden, mem.read_global(*inp.output)):
                correct += 1
        loop = app.runtime.loop(0)
        return correct, runs, loop.disabled, loop.stats

    correct, runs, disabled, stats = benchmark.pedantic(
        run_hostile, rounds=1, iterations=1
    )
    print(f"\n== Robustness: hostile inputs == correct {correct}/{runs}, "
          f"PP disabled={disabled}, executions pp={stats.executions_pp} "
          f"cp={stats.executions_cp}, skip={stats.skip_rate:.1%}")
    benchmark.extra_info["disabled"] = disabled
    benchmark.extra_info["cp_executions"] = stats.executions_cp
    assert correct == runs  # protection never corrupts the output
    assert disabled  # run-time management gave up on prediction
    assert stats.executions_cp > 0  # and the CP version actually ran
