"""Figure 8a: blackscholes with interpolation only vs. with the
approximate-memoization fallback predictor."""
from repro.eval import figure8a, reporting
from repro.workloads import get_workload


def test_figure8a(benchmark, bench_scale):
    rows = benchmark.pedantic(
        lambda: figure8a(get_workload("blackscholes"), scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    print("\n== Figure 8a: blackscholes, interpolation-only vs + memoization ==")
    print(reporting.render_figure8a(rows))
    benchmark.extra_info["rows"] = [
        (r.scheme, round(r.interp_only_skip, 3), round(r.full_skip, 3)) for r in rows
    ]
    # the paper's observation: the second-level predictor dominates the
    # skip rate at every AR, while interpolation alone improves with AR
    for row in rows:
        assert row.full_skip >= row.interp_only_skip - 0.05
    assert rows[0].full_skip > 0.7  # with memoization even AR20 skips most
    assert rows[0].interp_only_skip < rows[-1].interp_only_skip + 0.05
