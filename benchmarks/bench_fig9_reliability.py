"""Figures 9a and 9b: the statistical fault injection study.

One SEU per run, injected only into the detected loops, classified as
Correct / SDC / Segfault / Core dump / Hang (9a); false negatives —
corruption that slipped through fuzzy validation — per AR (9b).

The full campaign runs once; both sub-figures render from the cache.
``REPRO_BENCH_TRIALS`` scales the per-scheme trial count (paper: 1000);
``REPRO_BENCH_JOBS`` fans the campaign out over worker processes (the
tallies are identical for any value).
"""
import os

from repro.eval import Harness, figure9, reporting
from repro.pipeline import PAPER_SCHEMES as SCHEMES
from repro.runtime import Outcome
from repro.workloads import ALL_WORKLOADS

BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

_CACHE = {}


def _campaigns(trials, scale):
    key = (trials, scale)
    cached = _CACHE.get(key)
    if cached is None:
        harnesses = {}

        def profile_source(workload, ar):
            harness = harnesses.get(workload.name)
            if harness is None:
                harness = Harness(workload, scale=scale, timing=False)
                harnesses[workload.name] = harness
            return harness.profiles_for(ar)

        cached = figure9(
            ALL_WORKLOADS,
            schemes=SCHEMES,
            trials=trials,
            scale=scale,
            profile_source=profile_source,
            jobs=BENCH_JOBS,
        )
        _CACHE[key] = cached
    return cached


def _scheme_rate(results, scheme, outcome):
    group = [c for (w, s), c in results.items() if s == scheme]
    return sum(c.rate(outcome) for c in group) / len(group)


def test_fig9a_fault_injection(benchmark, sfi_trials, sfi_scale):
    results = benchmark.pedantic(
        lambda: _campaigns(sfi_trials, sfi_scale), rounds=1, iterations=1
    )
    print(f"\n== Figure 9a: fault injection ({sfi_trials} faults per scheme) ==")
    print(reporting.render_figure9a(results, SCHEMES))
    protection = {s: _scheme_rate(results, s, Outcome.CORRECT) for s in SCHEMES}
    benchmark.extra_info["protection_rate"] = {
        s: round(r, 4) for s, r in protection.items()
    }
    # paper: UNSAFE 76.68% masked; SWIFT-R 97.24%; AR20 95.67% .. AR100 92.52%
    assert protection["SWIFT-R"] > protection["UNSAFE"]
    assert protection["AR20"] > protection["UNSAFE"]
    assert protection["SWIFT-R"] >= protection["AR100"] - 0.05


def test_fig9b_false_negatives(benchmark, sfi_trials, sfi_scale):
    results = benchmark.pedantic(
        lambda: _campaigns(sfi_trials, sfi_scale), rounds=1, iterations=1
    )
    ar_schemes = ("AR20", "AR50", "AR80", "AR100")
    print(f"\n== Figure 9b: false negatives ({sfi_trials} faults per scheme) ==")
    print(reporting.render_figure9b(results, schemes=ar_schemes))
    fn = {}
    for scheme in ar_schemes:
        group = [c for (w, s), c in results.items() if s == scheme]
        fn[scheme] = sum(c.fn_rate for c in group) / len(group)
    benchmark.extra_info["fn_rate"] = {s: round(r, 4) for s, r in fn.items()}
    # paper: FN occurrence grows with the acceptable range (1.80% -> 5.04%)
    assert fn["AR100"] >= fn["AR20"] - 0.02
