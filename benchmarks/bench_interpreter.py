"""Execution-backend throughput: reference interpreter vs compiled.

Measures architectural instructions per second on the three paper loop
shapes (reduction, elementwise, read-modify-write) and one
RSkip-protected workload, for both execution backends, and records the
speedup ratio.  ``python benchmarks/bench_interpreter.py`` writes the
numbers to ``BENCH_interpreter.json`` at the repository root; the pytest
wrapper asserts the compiled backend clears its 3x contract on the
plain loop shapes.

Scale knob: ``REPRO_BENCH_INTERP_STEPS`` — approximate architectural
steps per measured run (default 1,000,000).
"""
from __future__ import annotations

import json
import math
import os
import time

from repro.eval.schemes import prepare
from repro.ir import F64, Function, I64, IRBuilder, Module, Reg, verify_module
from repro.runtime import CompiledExecutor, Interpreter, Memory
from repro.workloads import get_workload

TARGET_STEPS = int(os.environ.get("REPRO_BENCH_INTERP_STEPS", "1000000"))

#: The compiled backend's contract (ISSUE: perf acceptance threshold).
REQUIRED_SPEEDUP = 3.0


def _seed_memory(module: Module) -> Memory:
    memory = Memory()
    memory.load_globals(module)
    for k, name in enumerate(module.globals):
        base = memory.global_addr(name)
        for i in range(module.globals[name].size):
            memory.cells[base + i] = 1.5 + math.sin(0.13 * i + k)
    return memory


def build_reduction() -> Module:
    """out[i] = dot(x, y): the nested-reduction loop shape."""
    m = Module("bench_reduction")
    m.add_global("x", 64)
    m.add_global("y", 64)
    m.add_global("out", 64)
    f = Function("main", [Reg("n", I64), Reg("m", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    xp = b.mov(b.global_addr("x"), hint="xp")
    yp = b.mov(b.global_addr("y"), hint="yp")
    op = b.mov(b.global_addr("out"), hint="op")
    n, inner_n = f.params
    with b.loop(0, n, hint="outer") as i:
        acc = b.mov(0.0, hint="acc")
        with b.loop(0, inner_n, hint="inner") as j:
            xv = b.load(b.padd(xp, b.and_(j, 63)))
            yv = b.load(b.padd(yp, b.and_(j, 63)))
            b.mov(b.fadd(acc, b.fmul(xv, yv)), dest=acc)
        b.store(acc, b.padd(op, b.and_(i, 63)))
    b.ret(0.0)
    verify_module(m)
    return m


def build_elementwise() -> Module:
    """out[i] = a[i] * w[i] + sin-ish smoothing: one flat hot loop."""
    m = Module("bench_elementwise")
    m.add_global("a", 64)
    m.add_global("w", 64)
    m.add_global("out", 64)
    f = Function("main", [Reg("n", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    ap = b.mov(b.global_addr("a"), hint="ap")
    wp = b.mov(b.global_addr("w"), hint="wp")
    op = b.mov(b.global_addr("out"), hint="op")
    with b.loop(0, f.params[0], hint="ew") as i:
        k = b.and_(i, 63)
        av = b.load(b.padd(ap, k))
        wv = b.load(b.padd(wp, k))
        v = b.fadd(b.fmul(av, wv), b.fmul(av, 0.25))
        v = b.fsub(v, b.fmul(wv, 0.125))
        b.store(v, b.padd(op, k))
    b.ret(0.0)
    verify_module(m)
    return m


def build_rmw() -> Module:
    """out[i] -= a[k] * w[k] / (i+1): the read-modify-write loop shape."""
    m = Module("bench_rmw")
    m.add_global("a", 64)
    m.add_global("w", 64)
    m.add_global("out", 64)
    f = Function("main", [Reg("n", I64), Reg("m", I64)], F64)
    m.add_function(f)
    b = IRBuilder(f)
    ap = b.mov(b.global_addr("a"), hint="ap")
    wp = b.mov(b.global_addr("w"), hint="wp")
    op = b.mov(b.global_addr("out"), hint="op")
    n, inner_n = f.params
    with b.loop(0, n, hint="outer") as i:
        addr = b.padd(op, b.and_(i, 63))
        s = b.load(addr, hint="s")
        fi = b.sitofp(b.add(i, 1))
        with b.loop(0, inner_n, hint="inner") as k:
            kk = b.and_(k, 63)
            av = b.load(b.padd(ap, kk))
            wv = b.load(b.padd(wp, kk))
            b.mov(b.fsub(s, b.fdiv(b.fmul(av, wv), fi)), dest=s)
        b.store(s, addr)
    b.ret(0.0)
    verify_module(m)
    return m


def _measure(make_engine, args, repeats=3):
    """Best-of-N instrs/sec of one clean run (first run warms caches)."""
    best = None
    steps = 0
    for _ in range(repeats + 1):
        engine, run_args = make_engine(args)
        t0 = time.perf_counter()
        steps = engine.run("main", run_args).steps
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
        best = best if best > 0 else 1e-9
    return steps, steps / best


def _loop_workloads():
    # inner trip counts sized so each run retires ~TARGET_STEPS instrs
    outer = 40
    rows = []
    for name, build, args in (
        ("reduction", build_reduction,
         [outer, max(1, TARGET_STEPS // (outer * 13))]),
        ("elementwise", build_elementwise, [max(1, TARGET_STEPS // 16)]),
        ("rmw", build_rmw, [outer, max(1, TARGET_STEPS // (outer * 15))]),
    ):
        module = build()
        rows.append((name, module, args))
    return rows


def measure_backends():
    """instrs/sec per (workload, backend) plus the speedup ratios."""
    results = {}
    for name, module, args in _loop_workloads():
        def engine_of(cls):
            def make(run_args):
                return cls(module, memory=_seed_memory(module)), run_args
            return make

        steps, ref_ips = _measure(engine_of(Interpreter), args)
        _, comp_ips = _measure(engine_of(CompiledExecutor), args)
        results[name] = {
            "steps": steps,
            "ref_instrs_per_sec": round(ref_ips),
            "compiled_instrs_per_sec": round(comp_ips),
            "speedup": round(comp_ips / ref_ips, 2),
        }

    # one protected workload: the RSkip runtime intrinsics ride along
    workload = get_workload("blackscholes")
    prepared = prepare(workload, "AR50")
    inp = workload.test_inputs(1, seed=11, scale=0.6)[0]

    def protected_engine(cls):
        def make(run_args):
            if prepared.runtime is not None:
                prepared.runtime.reset()
            memory = workload.fresh_memory(prepared.module, inp)
            engine = cls(prepared.module, memory=memory)
            engine.register_intrinsics(prepared.intrinsics)
            return engine, inp.args
        return make

    steps, ref_ips = _measure(protected_engine(Interpreter), None)
    _, comp_ips = _measure(protected_engine(CompiledExecutor), None)
    results["rskip_blackscholes_ar50"] = {
        "steps": steps,
        "ref_instrs_per_sec": round(ref_ips),
        "compiled_instrs_per_sec": round(comp_ips),
        "speedup": round(comp_ips / ref_ips, 2),
    }
    return results


def write_baseline(path="BENCH_interpreter.json"):
    results = measure_backends()
    shapes = ("reduction", "elementwise", "rmw")
    geomean = math.exp(
        sum(math.log(results[s]["speedup"]) for s in shapes) / len(shapes))
    payload = {
        "benchmark": "interpreter backend throughput",
        "unit": "architectural instructions per second (clean run)",
        "target_steps_per_run": TARGET_STEPS,
        "required_speedup": REQUIRED_SPEEDUP,
        "loop_shape_geomean_speedup": round(geomean, 2),
        "workloads": results,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2) + "\n")
    return payload


def test_compiled_backend_speedup():
    results = measure_backends()
    shapes = ("reduction", "elementwise", "rmw")
    geomean = math.exp(
        sum(math.log(results[s]["speedup"]) for s in shapes) / len(shapes))
    print("\n== interpreter backend throughput ==")
    for name, row in results.items():
        print(f"  {name}: ref {row['ref_instrs_per_sec']:,}/s  compiled "
              f"{row['compiled_instrs_per_sec']:,}/s  "
              f"({row['speedup']:.2f}x)")
    print(f"  loop-shape geomean speedup: {geomean:.2f}x")
    assert geomean >= REQUIRED_SPEEDUP


if __name__ == "__main__":
    payload = write_baseline()
    print(json.dumps(payload, indent=2))
