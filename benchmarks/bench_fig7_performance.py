"""Figures 7a-7d: skip rate, normalized execution time, dynamic
instructions and IPC for every benchmark under SWIFT-R and RSkip AR20-100.

The expensive sweep runs once (inside the first benchmark); the remaining
sub-figures render from the cached result.
"""
import pytest

from repro.eval import figure7, reporting
from repro.workloads import ALL_WORKLOADS

_CACHE = {}


def _sweep(scale):
    result = _CACHE.get(scale)
    if result is None:
        result = figure7(ALL_WORKLOADS, scale=scale)
        _CACHE[scale] = result
    return result


def test_fig7a_skip_rate(benchmark, bench_scale):
    result = benchmark.pedantic(lambda: _sweep(bench_scale), rounds=1, iterations=1)
    print("\n== Figure 7a: average skip rate ==")
    print(reporting.render_figure7(result, "skip", pct=True))
    averages = {a.scheme: a for a in result.averages()}
    benchmark.extra_info["avg_skip"] = {
        s: round(a.skip_rate, 4) for s, a in averages.items() if a.skip_rate is not None
    }
    # paper: 67.03% (AR20) rising to 81.10% (AR100)
    assert averages["AR100"].skip_rate > averages["AR20"].skip_rate - 0.02
    assert averages["AR100"].skip_rate > 0.6


def test_fig7b_execution_time(benchmark, bench_scale):
    result = benchmark.pedantic(lambda: _sweep(bench_scale), rounds=1, iterations=1)
    print("\n== Figure 7b: normalized execution time ==")
    print(reporting.render_figure7(result, "time"))
    averages = {a.scheme: a for a in result.averages()}
    benchmark.extra_info["avg_time"] = {s: round(a.norm_time, 3) for s, a in averages.items()}
    # paper: SWIFT-R 2.33x; RSkip 1.42x (AR20) down to 1.27x (AR100)
    assert averages["SWIFT-R"].norm_time > averages["AR20"].norm_time
    assert averages["AR100"].norm_time <= averages["AR20"].norm_time + 0.02


def test_fig7c_dynamic_instructions(benchmark, bench_scale):
    result = benchmark.pedantic(lambda: _sweep(bench_scale), rounds=1, iterations=1)
    print("\n== Figure 7c: normalized number of dynamic instructions ==")
    print(reporting.render_figure7(result, "instructions"))
    averages = {a.scheme: a for a in result.averages()}
    benchmark.extra_info["avg_instructions"] = {
        s: round(a.norm_instructions, 3) for s, a in averages.items()
    }
    # paper: SWIFT-R 3.48x; RSkip 1.71x (AR20) down to 1.49x (AR100)
    assert averages["SWIFT-R"].norm_instructions > 2.5
    assert averages["AR100"].norm_instructions < 2.0


def test_fig7d_ipc(benchmark, bench_scale):
    result = benchmark.pedantic(lambda: _sweep(bench_scale), rounds=1, iterations=1)
    print("\n== Figure 7d: normalized IPC ==")
    print(reporting.render_figure7(result, "ipc"))
    averages = {a.scheme: a for a in result.averages()}
    benchmark.extra_info["avg_ipc"] = {s: round(a.norm_ipc, 3) for s, a in averages.items()}
    # paper: SWIFT-R gains 1.47x IPC from its duplicated streams while
    # RSkip stays at the unprotected program's level
    assert averages["SWIFT-R"].norm_ipc > averages["AR100"].norm_ipc
    assert 0.8 <= averages["AR100"].norm_ipc <= 1.3
