"""Shared configuration of the benchmark harness.

Every bench regenerates one table or figure of the paper and prints it
(run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables).
Scale knobs via environment variables:

* ``REPRO_BENCH_SCALE``  — problem-size multiplier (default 0.5)
* ``REPRO_BENCH_TRIALS`` — fault-injection trials per (workload, scheme)
  (default 40; the paper uses 1000)
"""
from __future__ import annotations

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
SFI_SCALE = float(os.environ.get("REPRO_BENCH_SFI_SCALE", "0.35"))
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "40"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def sfi_scale() -> float:
    return SFI_SCALE


@pytest.fixture(scope="session")
def sfi_trials() -> int:
    return BENCH_TRIALS
