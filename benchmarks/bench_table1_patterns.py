"""Table 1: benchmark characteristics from the static pattern detector."""
from repro.eval import reporting, table1
from repro.workloads import ALL_WORKLOADS


def test_table1(benchmark, bench_scale):
    rows = benchmark.pedantic(
        lambda: table1(ALL_WORKLOADS, scale=bench_scale), rounds=1, iterations=1
    )
    text = reporting.render_table1(rows)
    print("\n== Table 1: selected benchmarks ==")
    print(text)
    benchmark.extra_info["rows"] = [
        (r.benchmark, r.computation_type, r.location) for r in rows
    ]
    assert len(rows) == 9
