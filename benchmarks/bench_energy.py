"""Energy overhead per protection scheme (the paper's motivation: the
energy cost of redundancy tracks executed instructions, not wall clock —
RSkip's skipped re-computations save energy one-for-one)."""
from repro.eval import Harness
from repro.runtime import estimate_energy
from repro.workloads import ALL_WORKLOADS

SCHEMES = ("SWIFT-R", "AR20", "AR100")


def test_energy_overhead(benchmark, bench_scale):
    def sweep():
        ratios = {s: [] for s in SCHEMES}
        for workload in ALL_WORKLOADS:
            harness = Harness(workload, scale=bench_scale)
            inp = workload.test_inputs(1, scale=bench_scale)[0]
            base_prepared = harness.prepare_scheme("UNSAFE")
            base_result, _ = harness._execute(base_prepared, inp)
            base = estimate_energy(base_result.counts, base_result.cycles)
            for scheme in SCHEMES:
                prepared = harness.prepare_scheme(scheme)
                result, _ = harness._execute(prepared, inp)
                energy = estimate_energy(result.counts, result.cycles)
                ratios[scheme].append(energy.normalized(base))
        return {s: sum(v) / len(v) for s, v in ratios.items()}

    averages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n== Energy overhead (average over 9 benchmarks) == "
          f"{ {k: round(v, 2) for k, v in averages.items()} }")
    benchmark.extra_info["energy"] = {k: round(v, 3) for k, v in averages.items()}
    # the headline: prediction-based skipping saves real energy, not just time
    assert averages["AR100"] < averages["AR20"] + 0.02
    assert averages["AR100"] < averages["SWIFT-R"]
