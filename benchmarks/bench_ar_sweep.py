"""The acceptable-range continuum (extends the paper's four AR points into
a full tradeoff curve; section 7.3's argument visualized)."""
from repro.eval import ar_sweep, render_sweep
from repro.workloads import get_workload

ARS = (0.05, 0.1, 0.2, 0.35, 0.5, 0.8, 1.0, 1.5)


def test_ar_continuum(benchmark, bench_scale, sfi_trials, sfi_scale):
    workload = get_workload("backprop")
    points = benchmark.pedantic(
        lambda: ar_sweep(workload, ars=ARS, scale=bench_scale,
                         trials=max(sfi_trials // 2, 10), sfi_scale=sfi_scale),
        rounds=1, iterations=1,
    )
    print("\n== Acceptable-range continuum ==")
    print(render_sweep(workload.name, points))
    benchmark.extra_info["points"] = [
        (p.label, round(p.skip_rate, 3), round(p.norm_instructions, 3),
         None if p.protection_rate is None else round(p.protection_rate, 3))
        for p in points
    ]
    # the tradeoff: overhead falls monotonically-ish as AR widens...
    assert points[-1].norm_instructions < points[0].norm_instructions
    # ...while protection does not improve (it pays for the speedup)
    assert points[-1].protection_rate <= points[0].protection_rate + 0.10
