"""Section 7.3: the rationality of the acceptable range — protection rate
vs. slowdown per scheme."""
from repro.eval import reporting, section73
from repro.workloads import ALL_WORKLOADS


def test_section73_tradeoff(benchmark, sfi_trials, bench_scale, sfi_scale):
    rows = benchmark.pedantic(
        lambda: section73(
            ALL_WORKLOADS,
            trials=max(sfi_trials // 2, 10),
            perf_scale=bench_scale,
            sfi_scale=sfi_scale,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n== Section 7.3: protection rate vs slowdown ==")
    print(reporting.render_tradeoff(rows))
    by_scheme = {r.scheme: r for r in rows}
    benchmark.extra_info["rows"] = [
        (r.scheme, round(r.protection_rate, 4), round(r.slowdown, 3)) for r in rows
    ]
    # paper: SWIFT-R 97.24% @ 2.33x; AR20 95.67% @ 1.42x; AR100 92.52% @ 1.27x
    assert by_scheme["AR20"].slowdown < by_scheme["SWIFT-R"].slowdown
    assert by_scheme["AR100"].slowdown <= by_scheme["AR20"].slowdown + 0.02
    # the protection loss stays bounded (the paper accepts 5 points)
    assert by_scheme["AR100"].protection_rate > by_scheme["SWIFT-R"].protection_rate - 0.15
