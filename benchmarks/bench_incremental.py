"""Incremental campaign speedup: warm re-campaign after a program edit.

The incremental engine (`repro campaign --incremental`) persists
per-section injection tallies and re-injects only sections whose
fingerprint changed.  This bench measures the payoff of that reuse: for
each workload it populates the section store, applies a
step-count-preserving one-instruction edit, then times the re-campaign
both incrementally (store reuse) and from scratch.  Speedup is
wall-clock scratch/warm; both runs pay the same partition + golden-run
overhead, so the ratio isolates what the store actually saves.

The mix is deliberately honest:

* lud / kde / yolite — multi-loop workloads with the edit confined to a
  *non-dominant* loop, the case incremental campaigns exist for; the
  reused step fraction bounds the speedup from above.
* blackscholes — the anti-case: its loop's call closure reaches the one
  callee doing all the work, so editing that callee invalidates every
  section (0% reuse) and the honest speedup is ~1x.
* lud whole-program edit — every mutable site at once; sections not
  containing an edit still reuse, which is little here (both of lud's
  mutable sites sit in its two reduction loops).

``python benchmarks/bench_incremental.py`` writes
``BENCH_incremental.json`` at the repository root; the pytest wrapper
asserts the >=5x contract on at least two multi-loop workloads.

Scale knob: ``REPRO_BENCH_INC_TRIALS`` — trials per campaign
(default 150).
"""
from __future__ import annotations

import json
import os
import time

from repro.difftest.generator import _MUTATION_SWAPS
from repro.eval import SectionStore, run_campaign_stratified
from repro.ir.instructions import Opcode
from repro.ir.parser import parse_module
from repro.ir.printer import format_module
from repro.workloads import get_workload
from repro.workloads.base import Workload

TRIALS = int(os.environ.get("REPRO_BENCH_INC_TRIALS", "150"))

#: The incremental engine's contract (ISSUE: perf acceptance threshold)
REQUIRED_SPEEDUP = 5.0
#: ... on at least this many multi-loop workloads.
REQUIRED_WORKLOADS = 2

SEED = 1
SCALE = 0.35

#: (row name, workload, edit target).  The target names the loop whose
#: own blocks (innermost ownership, same rule as the section partition)
#: receive the edit ("loop:<header>"), a function ("func:<name>"), or
#: "all" for a whole-program edit.
CONFIGS = (
    ("lud_edit_lcol", "lud", "loop:lcol.head.13", True),
    ("kde_edit_grid", "kde", "loop:grid.head.5", True),
    ("yolite_edit_col", "yolite", "loop:col.head.9", True),
    ("blackscholes_edit_callee", "blackscholes",
     "func:BlkSchlsEqEuroNoDiv", False),
    ("lud_edit_everything", "lud", "all", False),
)


def _swap_instr(instr) -> bool:
    """Step-count-preserving semantic edit of one instruction."""
    if instr.op in _MUTATION_SWAPS:
        instr.op = _MUTATION_SWAPS[instr.op]
        return True
    if instr.op == Opcode.FMUL:
        instr.op = Opcode.FADD
        return True
    if instr.op == Opcode.FDIV:
        instr.op = Opcode.FMUL
        return True
    return False


def _edit_module(module, target: str) -> int:
    """Apply the edit named by *target* in place; returns sites edited."""
    from repro.analysis.patterns import detect_target_loops
    from repro.eval.sections import _loop_label_owners

    edited = 0
    if target == "all":
        for fname in sorted(module.functions):
            func = module.get_function(fname)
            for label in func.block_order():
                for instr in func.blocks[label].instrs:
                    if instr.op in _MUTATION_SWAPS:
                        instr.op = _MUTATION_SWAPS[instr.op]
                        edited += 1
        return edited
    kind, _, name = target.partition(":")
    if kind == "func":
        func = module.get_function(name)
        for label in func.block_order():
            for instr in func.blocks[label].instrs:
                if _swap_instr(instr):
                    return 1
        raise ValueError(f"no editable instruction in @{name}")
    # innermost ownership, same rule the section partition groups by —
    # an edit must land in the named section, not an enclosed inner loop
    func = module.get_function("main")
    targets = detect_target_loops(func, module)
    owners = _loop_label_owners(module, "main", targets)
    for label in func.block_order():
        if owners.get(label) != name:
            continue
        for instr in func.blocks[label].instrs:
            if _swap_instr(instr):
                return 1
    raise ValueError(f"no editable instruction owned by loop {name}")


class EditedWorkload(Workload):
    """The base workload with one semantic edit applied to its module —
    what a developer's re-campaign after a code change looks like."""

    def __init__(self, base: Workload, target: str):
        self._base = base
        module = base.build()
        self.edited_sites = _edit_module(module, target)
        self._text = format_module(module)
        self.name = base.name
        self.domain = base.domain
        self.description = f"{base.name} after edit {target}"
        self.main = base.main
        self.memory_size = base.memory_size

    def build(self):
        module = parse_module(self._text)
        module.name = self._base.build().name
        return module

    def make_input(self, rng, scale=1.0):
        return self._base.make_input(rng, scale)


def _timed(block, repeats=2):
    best, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = block()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return max(best, 1e-9), result


def measure_incremental_speedup(trials=TRIALS):
    rows = {}
    for row_name, wname, target, expect_fast in CONFIGS:
        base = get_workload(wname)
        edited = EditedWorkload(base, target)
        import shutil
        import tempfile

        tmp = tempfile.mkdtemp(prefix="repro-bench-inc-")
        populated = os.path.join(tmp, "campaigns")
        kwargs = dict(seed=SEED, scale=SCALE)

        # populate the store on the pre-edit program (not timed: this is
        # the campaign the developer already ran)
        run_campaign_stratified(
            base, "UNSAFE", trials,
            store=SectionStore(directory=populated), reuse=True, **kwargs)

        # each warm repetition starts from a fresh copy of the populated
        # store — a warm run writes the re-injected sections back, which
        # would otherwise hand the next repetition a fully-warm store
        def warm_once(repeat=[0]):
            repeat[0] += 1
            directory = os.path.join(tmp, f"warm{repeat[0]}")
            shutil.copytree(populated, directory)
            return run_campaign_stratified(
                edited, "UNSAFE", trials,
                store=SectionStore(directory=directory), reuse=True, **kwargs)

        warm_s, warm = _timed(warm_once)
        scratch_s, scratch = _timed(lambda: run_campaign_stratified(
            edited, "UNSAFE", trials, **kwargs))

        assert warm.result.trials == scratch.result.trials == trials
        reused_frac = warm.reused_trials / trials
        rows[row_name] = {
            "workload": wname,
            "edit": target,
            "edited_sites": edited.edited_sites,
            "trials": trials,
            "sections": len(warm.sections),
            "reused_sections": warm.reused_sections,
            "reused_trials_fraction": round(reused_frac, 3),
            "scratch_seconds": round(scratch_s, 4),
            "warm_seconds": round(warm_s, 4),
            "speedup": round(scratch_s / warm_s, 1),
            "expect_fast": expect_fast,
        }
    return rows


def write_baseline(path="BENCH_incremental.json"):
    rows = measure_incremental_speedup()
    cleared = sum(1 for row in rows.values()
                  if row["expect_fast"] and row["speedup"] >= REQUIRED_SPEEDUP)
    payload = {
        "benchmark": "incremental campaign reuse",
        "unit": "wall-clock seconds per re-campaign after one edit",
        "trials": TRIALS,
        "required_speedup": REQUIRED_SPEEDUP,
        "required_workloads": REQUIRED_WORKLOADS,
        "workloads_clearing_required_speedup": cleared,
        "rows": rows,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2) + "\n")
    return payload


def test_incremental_speedup():
    rows = measure_incremental_speedup()
    print("\n== incremental campaign reuse ==")
    for name, row in rows.items():
        print(f"  {name}: reuse {row['reused_trials_fraction']:.0%} of "
              f"{row['trials']} trials  scratch {row['scratch_seconds']:.2f}s  "
              f"warm {row['warm_seconds']:.2f}s  speedup {row['speedup']}x")
    fast = [r for r in rows.values()
            if r["expect_fast"] and r["speedup"] >= REQUIRED_SPEEDUP]
    assert len(fast) >= REQUIRED_WORKLOADS, (
        f"incremental reuse cleared {REQUIRED_SPEEDUP}x on only "
        f"{len(fast)} workloads")
    # the honest rows really are honest: a whole-program edit must not
    # pretend to reuse anything
    assert rows["lud_edit_everything"]["reused_trials_fraction"] <= 0.5
    assert rows["blackscholes_edit_callee"]["reused_sections"] == 0


if __name__ == "__main__":
    payload = write_baseline()
    print(json.dumps(payload, indent=2))
