"""Pipeline artifact-cache effectiveness: cold vs warm protection time.

Protecting a module (cleanup pipeline + scheme passes) is the expensive
compile-time stage that campaign workers, difftest oracles and
benchmarks repeat hundreds of times on identical inputs.  The
fingerprint-keyed artifact cache replaces that work with a parse of the
stored IR text plus a runtime rebuild — this bench pins how much that
buys, per scheme, over the checked-in difftest corpus, and the same for
the trained-profile artifact.

``python benchmarks/bench_pipeline_cache.py`` writes the numbers to
``BENCH_pipeline_cache.json`` at the repository root; the pytest wrapper
asserts a warm cache is measurably faster than protecting from scratch.
"""
from __future__ import annotations

import json
import math
import os
import time

from repro.eval import Harness
from repro.ir.parser import parse_module
from repro.pipeline import ArtifactCache, protect
from repro.workloads import get_workload

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "difftest", "corpus")
SCHEMES = ("SWIFT-R", "AR20")
REPEATS = int(os.environ.get("REPRO_BENCH_CACHE_REPEATS", "5"))

#: Contract: a warm cache must at least halve scheme-application time
#: (geomean across corpus programs and schemes).
REQUIRED_SPEEDUP = 2.0


def corpus_texts():
    out = {}
    for filename in sorted(os.listdir(CORPUS_DIR)):
        if filename.endswith(".ir"):
            with open(os.path.join(CORPUS_DIR, filename),
                      encoding="utf-8") as handle:
                out[filename[:-3]] = handle.read()
    return out


def measure_protection():
    """cold (cache bypassed) vs warm (hit) protect() time per program."""
    results = {}
    for name, text in corpus_texts().items():
        per_scheme = {}
        for scheme in SCHEMES:
            holder = {}

            def parse_fresh():
                # parsing stays outside the timed region on both paths;
                # cold protection mutates in place, so every run needs a
                # fresh module
                holder["module"] = parse_module(text)

            cold_ms = _run_best(
                lambda: protect(holder["module"], scheme, optimize=True,
                                use_cache=False),
                setup=parse_fresh,
            )

            cache = ArtifactCache()
            protect(parse_module(text), scheme, optimize=True, cache=cache)
            warm_ms = _run_best(
                lambda: protect(holder["module"], scheme, optimize=True,
                                cache=cache),
                setup=parse_fresh,
            )
            assert cache.hits >= 1
            per_scheme[scheme] = {
                "cold_ms": round(cold_ms, 3),
                "warm_ms": round(warm_ms, 3),
                "speedup": round(cold_ms / warm_ms, 2) if warm_ms else 0.0,
            }
        results[name] = per_scheme
    return results


def _run_best(fn, setup=None, repeats=REPEATS):
    """Best wall-clock milliseconds over *repeats* timed runs."""
    best = None
    for _ in range(repeats + 1):
        if setup is not None:
            setup()
        t0 = time.perf_counter()
        fn()
        elapsed = (time.perf_counter() - t0) * 1e3
        if best is None or elapsed < best:
            best = elapsed
    return best


def measure_training(scale=0.4):
    """Trained-profile artifact: full training vs a cache hit."""
    workload = get_workload("blackscholes")

    cold = Harness(workload, scale=scale, timing=False, train_count=2)
    t0 = time.perf_counter()
    cold.profiles_for(0.2)  # fills the process-wide mem cache
    cold_ms = (time.perf_counter() - t0) * 1e3

    warm = Harness(workload, scale=scale, timing=False, train_count=2)
    t0 = time.perf_counter()
    warm.profiles_for(0.2)
    warm_ms = (time.perf_counter() - t0) * 1e3
    return {
        "workload": workload.name,
        "cold_ms": round(cold_ms, 3),
        "warm_ms": round(warm_ms, 3),
        "speedup": round(cold_ms / warm_ms, 2) if warm_ms else 0.0,
    }


def _geomean_speedup(protection):
    speedups = [row["speedup"]
                for per_scheme in protection.values()
                for row in per_scheme.values()]
    return math.exp(sum(math.log(s) for s in speedups) / len(speedups))


def write_baseline(path="BENCH_pipeline_cache.json"):
    protection = measure_protection()
    training = measure_training()
    payload = {
        "benchmark": "pipeline artifact cache",
        "unit": "milliseconds per protection (best of N)",
        "repeats": REPEATS,
        "required_speedup": REQUIRED_SPEEDUP,
        "protection_geomean_speedup": round(_geomean_speedup(protection), 2),
        "protection": protection,
        "trained_profiles": training,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2) + "\n")
    return payload


def test_warm_cache_measurably_faster():
    protection = measure_protection()
    geomean = _geomean_speedup(protection)
    print("\n== pipeline artifact cache ==")
    for name, per_scheme in protection.items():
        for scheme, row in per_scheme.items():
            print(f"  {name} {scheme}: cold {row['cold_ms']:.2f}ms  "
                  f"warm {row['warm_ms']:.2f}ms  ({row['speedup']:.2f}x)")
    print(f"  geomean speedup: {geomean:.2f}x")
    assert geomean >= REQUIRED_SPEEDUP


def test_trained_profile_cache_hit_skips_training():
    row = measure_training()
    print(f"\n== trained-profile cache == cold {row['cold_ms']:.1f}ms  "
          f"warm {row['warm_ms']:.1f}ms  ({row['speedup']:.2f}x)")
    assert row["warm_ms"] < row["cold_ms"]


if __name__ == "__main__":
    payload = write_baseline()
    print(json.dumps(payload, indent=2))
