"""Scheme-family cost/coverage points: SWIFT-R vs REPLAY<n> vs CKPT<i>.

The protocol layer (DESIGN.md §12) puts temporal-redundancy families
next to the paper's spatial ones in every study; this bench pins their
relative positions.  For each scheme it measures the normalized
execution time on clean runs (the Figure-7 protocol) and the SFI
protection/detection split (the Figure-9 protocol), and for CKPT<i> it
reads out the realized commit-interval trace to show the RSkip
predictor's fault-likelihood signal actually steering checkpoint
frequency (CKPT8 vs the pinned CKPT8FIX).

``python benchmarks/bench_schemes.py`` writes ``BENCH_schemes.json`` at
the repository root; the pytest wrapper asserts the cheap structural
facts (REPLAY sampling is cheaper than full replay, the signal commits
at least as often as the fixed interval, every scheme beats UNSAFE on
the SFI campaign).

Scale knobs: ``REPRO_BENCH_TRIALS`` (default 40),
``REPRO_BENCH_SFI_SCALE`` (default 0.35).
"""
from __future__ import annotations

import json
import os

from repro.eval import Harness, prepare
from repro.eval.fault_campaign import run_campaign
from repro.runtime import Interpreter
from repro.workloads import get_workload

TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "40"))
SFI_SCALE = float(os.environ.get("REPRO_BENCH_SFI_SCALE", "0.35"))
PERF_SCALE = 0.45
SEED = 3

#: The scheme axis under comparison: the paper's recovery baseline and
#: both protocol families at a sampled, a dense and a pinned point.
SCHEMES = ("SWIFT-R", "REPLAY1", "REPLAY2", "REPLAY4", "CKPT4", "CKPT8",
           "CKPT8FIX")

WORKLOADS = ("conv1d", "blackscholes")


def measure_tradeoff(trials=TRIALS):
    """Per-scheme normalized time (clean runs) + SFI outcome split."""
    rows = {}
    for scheme in SCHEMES:
        times, protected, detected = [], [], []
        for wname in WORKLOADS:
            workload = get_workload(wname)
            harness = Harness(workload, scale=PERF_SCALE, seed=SEED,
                              timing=True)
            inp = workload.test_inputs(1, seed=SEED, scale=PERF_SCALE)[0]
            records = harness.run_all([scheme], inp)
            times.append(records[scheme].normalized(records["UNSAFE"])["time"])
            campaign = run_campaign(workload, scheme, trials, seed=SEED,
                                    scale=SFI_SCALE)
            protected.append(campaign.protection_rate)
            detected.append(campaign.detected / campaign.trials)
        rows[scheme] = {
            "norm_time": round(sum(times) / len(times), 3),
            "protection_rate": round(sum(protected) / len(protected), 4),
            "detected_rate": round(sum(detected) / len(detected), 4),
        }
    # the unprotected floor, for the coverage assertions
    floors = []
    for wname in WORKLOADS:
        campaign = run_campaign(get_workload(wname), "UNSAFE", trials,
                                seed=SEED, scale=SFI_SCALE)
        floors.append(campaign.protection_rate)
    rows["UNSAFE"] = {
        "norm_time": 1.0,
        "protection_rate": round(sum(floors) / len(floors), 4),
        "detected_rate": 0.0,
    }
    return rows


def measure_ckpt_intervals(workload_name="blackscholes", scale=PERF_SCALE):
    """Commit-interval traces: signal-driven CKPT8 vs pinned CKPT8FIX on
    a workload whose value stream provokes the extend-test signal."""
    workload = get_workload(workload_name)
    inp = workload.test_inputs(1, seed=SEED, scale=scale)[0]
    rows = {}
    for scheme in ("CKPT8", "CKPT8FIX"):
        prepared = prepare(workload, scheme)
        memory = workload.fresh_memory(prepared.module, inp)
        interp = Interpreter(prepared.module, memory=memory)
        interp.register_intrinsics(prepared.intrinsics)
        interp.run(prepared.main, inp.args)
        intervals = prepared.application.runtime.commit_intervals()
        rows[scheme] = {
            "checkpoints": len(intervals),
            "mean_interval": round(sum(intervals) / len(intervals), 2)
            if intervals else 0.0,
            "min_interval": min(intervals) if intervals else 0,
            "max_interval": max(intervals) if intervals else 0,
        }
    return rows


def write_baseline(path="BENCH_schemes.json"):
    tradeoff = measure_tradeoff()
    intervals = measure_ckpt_intervals()
    payload = {
        "benchmark": "scheme-family cost/coverage points",
        "unit": "normalized time (clean run) / SFI outcome rates",
        "trials": TRIALS,
        "workloads": list(WORKLOADS),
        "schemes": tradeoff,
        "ckpt_intervals": {"workload": "blackscholes", "rows": intervals},
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2) + "\n")
    return payload


def test_scheme_families(benchmark=None):
    tradeoff = measure_tradeoff()
    intervals = measure_ckpt_intervals()
    print("\n== scheme families: normalized time / protection / detection ==")
    for scheme, row in tradeoff.items():
        print(f"  {scheme:<9} time {row['norm_time']:.2f}x  "
              f"protected {row['protection_rate']:.1%}  "
              f"detected {row['detected_rate']:.1%}")
    print("== CKPT commit intervals (blackscholes) ==")
    for scheme, row in intervals.items():
        print(f"  {scheme:<9} {row['checkpoints']} checkpoints, mean "
              f"interval {row['mean_interval']}")
    # sampling fewer windows must not cost more than replaying all
    assert tradeoff["REPLAY4"]["norm_time"] <= tradeoff["REPLAY1"]["norm_time"] + 0.02
    # every protection scheme clears the unprotected floor on
    # protected-or-detected coverage
    floor = tradeoff["UNSAFE"]["protection_rate"]
    for scheme in SCHEMES:
        row = tradeoff[scheme]
        assert row["protection_rate"] + row["detected_rate"] >= floor - 0.05, scheme
    # the fault-likelihood signal can only shorten intervals, never
    # stretch them: at least as many checkpoints as the pinned run
    assert (intervals["CKPT8"]["checkpoints"]
            >= intervals["CKPT8FIX"]["checkpoints"])
    assert intervals["CKPT8FIX"]["max_interval"] <= 8


if __name__ == "__main__":
    data = write_baseline()
    print(json.dumps(data, indent=2))
