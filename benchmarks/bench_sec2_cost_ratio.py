"""Section 2's cost hierarchy: interpolation : memoization : re-computation
(the paper measures 1 : 1.84 : 4.18 for blackscholes)."""
from repro.eval import cost_ratio
from repro.workloads import ALL_WORKLOADS, get_workload


def test_cost_ratio_blackscholes(benchmark):
    ratio = benchmark.pedantic(
        lambda: cost_ratio(get_workload("blackscholes")), rounds=1, iterations=1
    )
    print(f"\n== Section 2 cost ratio == {ratio}")
    one, memo, recompute = ratio.normalized()
    benchmark.extra_info["ratio"] = (one, round(memo, 2), round(recompute, 2))
    # the ordering that justifies the two-level predictor:
    # interpolation < memoization < re-computation
    assert one < memo < recompute
    # and two consecutive predictions stay cheaper than one re-computation
    assert memo < recompute


def test_cost_ratio_all_workloads(benchmark):
    def sweep():
        return [cost_ratio(w) for w in ALL_WORKLOADS]

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n== Cost ratios across benchmarks ==")
    for ratio in ratios:
        print(f"  {ratio}")
    for ratio in ratios:
        assert ratio.interpolation < ratio.recomputation
