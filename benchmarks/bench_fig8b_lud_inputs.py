"""Figure 8b: lud at AR20 across many disjoint test inputs — the impact of
input diversity on performance and skip rate."""
import os

from repro.eval import figure8b, reporting
from repro.workloads import get_workload

N_INPUTS = int(os.environ.get("REPRO_BENCH_LUD_INPUTS", "10"))


def test_figure8b(benchmark, bench_scale):
    # lud's skip rate depends strongly on the loop length (the paper runs
    # 1024x1024 matrices); use at least the full problem size here
    scale = max(bench_scale, 1.0)
    rows = benchmark.pedantic(
        lambda: figure8b(get_workload("lud"), inputs=N_INPUTS, scale=scale),
        rounds=1,
        iterations=1,
    )
    print(f"\n== Figure 8b: lud across {N_INPUTS} test inputs (AR20) ==")
    print(reporting.render_figure8b(rows))
    benchmark.extra_info["rows"] = [
        (r.input_id, round(r.rskip_time, 3), round(r.skip_rate, 3)) for r in rows
    ]
    # significant enhancement from SWIFT-R on average (paper section 7.1)
    avg_swift = sum(r.swift_r_time for r in rows) / len(rows)
    avg_rskip = sum(r.rskip_time for r in rows) / len(rows)
    assert avg_rskip < avg_swift
