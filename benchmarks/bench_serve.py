"""Serve-daemon request latency: cold vs warm vs deduped.

The service story ("millions of users") only holds if repeated and
concurrent identical requests are cheap.  Three regimes per endpoint:

* **cold** — first request: full pipeline work (cleanup + scheme passes,
  or a measured run) on a fresh daemon with an empty artifact cache;
* **warm** — an identical later request: the artifact cache serves the
  protected module / trained profiles, the daemon only re-fingerprints
  and re-serializes;
* **dedup** — an identical request arriving *while* the computation is
  in flight: the follower parks on the leader's future and pays roughly
  the leader's remaining time, never a second computation.

``python benchmarks/bench_serve.py`` writes ``BENCH_serve.json`` at the
repository root; the pytest wrapper asserts warm stays below cold.
"""
from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time

from repro.pipeline import reset_cache
from repro.serve import ServeApp

PROTECT_WORKLOADS = ("blackscholes", "lud")
SCHEME = "AR20"
WARM_REPEATS = int(os.environ.get("REPRO_BENCH_SERVE_REPEATS", "5"))


async def _request(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        head = [f"{method} {path} HTTP/1.1", "host: bench",
                "connection: close"]
        if payload:
            head.append(f"content-length: {len(payload)}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    status = int(raw.split(b" ", 2)[1])
    data = raw.split(b"\r\n\r\n", 1)[1]
    return status, json.loads(data) if data.strip() else None


async def _timed(host, port, path, body):
    t0 = time.perf_counter()
    status, data = await _request(host, port, "POST", path, body)
    elapsed_ms = (time.perf_counter() - t0) * 1e3
    assert status == 200, f"{path} -> {status}: {data}"
    return elapsed_ms, data


def _measure_endpoint(path: str, body: dict) -> dict:
    """Cold, warm (best of N) and dedup-follower latency for one body,
    against a daemon started fresh for this measurement."""

    async def go():
        os.environ["REPRO_CACHE"] = "mem"
        reset_cache()
        with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
            app = ServeApp(port=0, state_dir=tmp, workers=2)
            await app.start()
            try:
                host, port = app.host, app.port
                cold_ms, _ = await _timed(host, port, path, body)
                warm_ms = None
                for _ in range(WARM_REPEATS):
                    elapsed, data = await _timed(host, port, path, body)
                    assert data["deduped"] is False
                    if warm_ms is None or elapsed < warm_ms:
                        warm_ms = elapsed

                # dedup regime needs an in-flight leader: drop the cache
                # so the leader recomputes, race a follower against it
                reset_cache()
                results = await asyncio.gather(
                    _timed(host, port, path, body),
                    _timed(host, port, path, body))
                flags = sorted(r[1]["deduped"] for r in results)
                assert flags == [False, True], flags
                dedup_ms = next(ms for ms, r in results if r["deduped"])
            finally:
                await app.stop()
                reset_cache()
            return {
                "cold_ms": round(cold_ms, 3),
                "warm_ms": round(warm_ms, 3),
                "dedup_ms": round(dedup_ms, 3),
                "warm_speedup": round(cold_ms / warm_ms, 2) if warm_ms else 0.0,
            }

    return asyncio.run(go())


def measure() -> dict:
    rows = {}
    for workload in PROTECT_WORKLOADS:
        rows[f"/protect {workload} {SCHEME}"] = _measure_endpoint(
            "/protect", {"workload": workload, "scheme": SCHEME})
    rows["/run conv1d AR50"] = _measure_endpoint(
        "/run", {"workload": "conv1d", "scheme": "AR50", "scale": 0.35,
                 "seed": 1})
    return rows


def write_baseline(path="BENCH_serve.json"):
    rows = measure()
    payload = {
        "benchmark": "serve daemon request latency",
        "unit": "milliseconds per request (warm = best of N)",
        "repeats": WARM_REPEATS,
        "rows": rows,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2) + "\n")
    return payload


def test_warm_requests_beat_cold():
    rows = measure()
    print("\n== serve request latency ==")
    for label, row in rows.items():
        print(f"  {label}: cold {row['cold_ms']:.1f}ms  "
              f"warm {row['warm_ms']:.1f}ms  dedup {row['dedup_ms']:.1f}ms  "
              f"({row['warm_speedup']:.2f}x)")
    for label, row in rows.items():
        assert row["warm_ms"] < row["cold_ms"], label


if __name__ == "__main__":
    print(json.dumps(write_baseline(), indent=2))
