"""The pass manager: ordering, counts, verify-between-passes, obs events."""
import pytest

from repro.ir.parser import parse_module
from repro.obs import MemorySink, sink_installed
from repro.pipeline import (
    CLEANUP_PASSES,
    PassVerificationError,
    ProtectContext,
    module_instr_count,
    pass_names,
    run_pipeline,
)
from repro.pipeline import passes as pipeline_passes
from repro.transforms.swift import DETECT_INTRINSIC

TEXT = """\
module pipe

global @out 8 f64

func @main(%n: i64) -> f64 {
entry:
  %outp.1 = mov @out
  %acc.2 = mov 0.0:f64
  %i.3 = mov 0:i64
  br head
head:
  %cond.4 = icmp lt %i.3, %n
  cbr %cond.4, body, exit
body:
  %tofp.5 = sitofp %i.3
  %dead.6 = fadd %tofp.5, %tofp.5
  %fadd.7 = fadd %acc.2, %tofp.5
  %acc.2 = mov %fadd.7
  store %fadd.7, %outp.1
  %i.next.8 = add %i.3, 1:i64
  %i.3 = mov %i.next.8
  br head
exit:
  ret %acc.2
}
"""


def fresh_module():
    return parse_module(TEXT)


def drop_terminator(module):
    """A deliberately broken pass: the entry block loses its terminator."""
    func = module.functions["main"]
    entry = func.blocks[func.block_order()[0]]
    entry.instrs.pop()
    return None


class TestRunPipeline:
    def test_passes_run_in_order_with_instr_counts(self):
        module = fresh_module()
        total = module_instr_count(module)
        runs = run_pipeline(module, ("dce", "cse"))
        assert [r.name for r in runs] == ["dce", "cse"]
        assert runs[0].instrs_in == total
        # dce removes the dead fadd, so the module shrinks ...
        assert runs[0].instrs_out < runs[0].instrs_in
        # ... and counts chain: pass N+1 starts where pass N ended
        assert runs[1].instrs_in == runs[0].instrs_out
        assert runs[-1].instrs_out == module_instr_count(module)

    def test_unknown_pass_lists_registered_names(self):
        with pytest.raises(ValueError, match="unknown pass 'vectorize'") as exc:
            run_pipeline(fresh_module(), ("vectorize",))
        for name in pass_names():
            assert name in str(exc.value)

    def test_protection_pass_populates_context(self):
        module = fresh_module()
        before = module_instr_count(module)
        ctx = ProtectContext()
        runs = run_pipeline(module, ("swift",), context=ctx)
        assert DETECT_INTRINSIC in ctx.intrinsics
        assert runs[0].instrs_out > before  # duplication grows the module


class TestVerifyBetweenPasses:
    def test_broken_pass_reported_by_name(self, monkeypatch):
        monkeypatch.setitem(CLEANUP_PASSES, "pessimize", drop_terminator)
        with pytest.raises(PassVerificationError) as exc:
            run_pipeline(fresh_module(), ("dce", "pessimize"))
        assert exc.value.pass_name == "pessimize"
        assert "pessimize" in str(exc.value)
        assert "terminator" in str(exc.value)

    def test_verify_off_defers_to_caller(self, monkeypatch):
        monkeypatch.setitem(CLEANUP_PASSES, "pessimize", drop_terminator)
        runs = run_pipeline(fresh_module(), ("pessimize",), verify=False)
        assert [r.name for r in runs] == ["pessimize"]

    def test_healthy_pipeline_passes_verification(self):
        runs = run_pipeline(
            fresh_module(), ("simplify", "licm", "cse", "dce"), verify=True
        )
        assert len(runs) == 4


class TestPassRunEvents:
    def test_one_event_per_pass_with_counts(self):
        module = fresh_module()
        with sink_installed(MemorySink(capacity=1 << 12)) as sink:
            runs = run_pipeline(module, ("simplify", "dce"))
        events = [e for e in sink.events if e.kind == "pass-run"]
        assert [(e.payload["name"], e.payload["instrs_in"], e.payload["instrs_out"])
                for e in events] == [
            (r.name, r.instrs_in, r.instrs_out) for r in runs
        ]

    def test_pass_spans_recorded(self):
        with sink_installed(MemorySink(capacity=1 << 12)) as sink:
            run_pipeline(fresh_module(), ("dce",))
        assert any(label == "pass:dce" for label, _ms in sink.spans)

    def test_emit_untouched_when_tracing_disabled(self, monkeypatch):
        """Booby-trapped emit: with no sink installed the pass manager must
        not even reach the emit call, let alone build its payload."""

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("emit called while tracing is disabled")

        monkeypatch.setattr(pipeline_passes, "obs_emit", explode)
        runs = run_pipeline(fresh_module(), ("simplify", "cse", "dce"))
        assert [r.name for r in runs] == ["simplify", "cse", "dce"]
