"""The fingerprint-keyed artifact cache: LRU + disk tiers, byte-identity."""
import json
import os

import pytest

from repro.core.serialize import profiles_to_json
from repro.eval import Harness
from repro.ir.parser import parse_module
from repro.ir.printer import format_module
from repro.obs import MemorySink, sink_installed
from repro.pipeline import (
    ArtifactCache,
    get_cache,
    protect,
    reset_cache,
    selfcheck_byte_identity,
)
from repro.workloads import get_workload

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "difftest", "corpus"
)


def corpus_files():
    if not os.path.isdir(CORPUS_DIR):
        return []
    return sorted(f for f in os.listdir(CORPUS_DIR) if f.endswith(".ir"))


def corpus_text(filename):
    with open(os.path.join(CORPUS_DIR, filename), encoding="utf-8") as handle:
        return handle.read()


class TestArtifactCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ArtifactCache(capacity=0)

    def test_lru_evicts_least_recently_used(self):
        cache = ArtifactCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refresh a
        cache.put("c", {"v": 3})  # evicts b
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}
        assert cache.misses == 1 and cache.puts == 3

    def test_disk_round_trip_across_instances(self, tmp_path):
        writer = ArtifactCache(directory=str(tmp_path))
        writer.put("k1", {"kind": "demo", "n": 7})

        reader = ArtifactCache(directory=str(tmp_path))
        assert reader.get("k1") == {"kind": "demo", "n": 7}
        assert reader.disk_hits == 1
        # second read is served from memory, not disk
        assert reader.get("k1") == {"kind": "demo", "n": 7}
        assert reader.disk_hits == 1 and reader.hits == 2

    def test_corrupt_disk_entry_is_miss_and_removed(self, tmp_path):
        writer = ArtifactCache(directory=str(tmp_path))
        writer.put("k1", {"n": 1})
        path = writer._path("k1")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json{")

        reader = ArtifactCache(directory=str(tmp_path))
        assert reader.get("k1") is None
        assert not os.path.exists(path)

    def test_disk_entry_with_mismatched_key_rejected(self, tmp_path):
        writer = ArtifactCache(directory=str(tmp_path))
        writer.put("k1", {"n": 1})
        # an entry renamed onto another key must not resolve: the record
        # embeds its own key, so a moved/stale file is structurally invalid
        os.replace(writer._path("k1"), writer._path("k2"))
        reader = ArtifactCache(directory=str(tmp_path))
        assert reader.get("k2") is None
        assert not os.path.exists(writer._path("k2"))

    def test_disk_entry_with_old_version_rejected(self, tmp_path):
        cache = ArtifactCache(directory=str(tmp_path))
        record = {"version": 0, "key": "k1", "payload": {"n": 1}}
        with open(cache._path("k1"), "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        assert cache.get("k1") is None

    def test_stats_shape(self, tmp_path):
        cache = ArtifactCache(capacity=4, directory=str(tmp_path))
        cache.put("k", {"n": 1})
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["capacity"] == 4
        assert stats["directory"] == str(tmp_path)


class TestEnvironmentModes:
    def test_off_disables_caching(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        reset_cache()
        assert get_cache() is None

    def test_default_is_memory_tier(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        reset_cache()
        cache = get_cache()
        assert cache is not None and cache.directory is None
        assert get_cache() is cache  # stable instance per configuration

    def test_on_enables_disk_tier(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        reset_cache()
        cache = get_cache()
        assert cache.directory == str(tmp_path)

    def test_configuration_change_rebuilds_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "mem")
        reset_cache()
        mem = get_cache()
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert get_cache() is not mem

    def test_bad_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "sometimes")
        reset_cache()
        with pytest.raises(ValueError, match="REPRO_CACHE"):
            get_cache()


class TestProtectCaching:
    TEXT = staticmethod(lambda: corpus_text("gen_s0_i0_elementwise.ir"))

    def test_hit_returns_byte_identical_module(self):
        text = self.TEXT()
        cache = ArtifactCache()
        cold = protect(parse_module(text), "SWIFT-R", optimize=True, cache=cache)
        warm = protect(parse_module(text), "SWIFT-R", optimize=True, cache=cache)
        assert not cold.cache_hit and warm.cache_hit
        assert cache.puts == 1 and cache.hits == 1
        assert format_module(warm.module) == format_module(cold.module)
        assert warm.optimizations == cold.optimizations
        assert [r.to_dict() for r in warm.pass_runs] == [
            r.to_dict() for r in cold.pass_runs
        ]

    def test_rskip_hit_rebuilds_runtime_and_attrs(self):
        text = self.TEXT()
        cache = ArtifactCache()
        cold = protect(parse_module(text), "AR20", cache=cache)
        warm = protect(parse_module(text), "AR20", cache=cache)

        def attrs_of(module):
            return {
                name: dict(func.attrs)
                for name, func in module.functions.items()
                if func.attrs
            }

        assert warm.cache_hit
        assert format_module(warm.module) == format_module(cold.module)
        # attrs are not part of the textual IR; the payload must carry them
        assert attrs_of(cold.module)  # outlining recorded provenance
        assert attrs_of(warm.module) == attrs_of(cold.module)
        # the stateful runtime manager is never cached: rebuilt fresh
        assert warm.application is not None
        assert warm.application is not cold.application
        assert set(warm.intrinsics) == set(cold.intrinsics)

    def test_modified_module_misses(self):
        text = self.TEXT()
        cache = ArtifactCache()
        protect(parse_module(text), "SWIFT-R", cache=cache)
        modified = text.replace("0.309568", "0.309569", 1)
        assert modified != text
        again = protect(parse_module(modified), "SWIFT-R", cache=cache)
        assert not again.cache_hit
        assert cache.puts == 2 and cache.hits == 0

    def test_unsafe_has_no_passes_and_skips_cache(self):
        module = parse_module(self.TEXT())
        cache = ArtifactCache()
        program = protect(module, "UNSAFE", cache=cache)
        assert program.module is module and not program.cache_hit
        assert cache.puts == 0 and cache.hits == 0 and cache.misses == 0

    def test_pass_run_events_replayed_on_hit(self):
        text = self.TEXT()
        cache = ArtifactCache()

        def traced_protect():
            with sink_installed(MemorySink(capacity=1 << 12)) as sink:
                program = protect(
                    parse_module(text), "SWIFT-R", optimize=True, cache=cache
                )
            events = [
                (e.kind, e.payload) for e in sink.events if e.kind == "pass-run"
            ]
            return events, program

        cold_events, cold = traced_protect()
        warm_events, warm = traced_protect()
        assert not cold.cache_hit and warm.cache_hit
        # 4 cleanup passes + the protection pass, identical streams
        assert len(cold_events) == 5
        assert warm_events == cold_events


class TestCorpusByteIdentity:
    @pytest.mark.parametrize("filename", corpus_files())
    def test_cache_on_off_byte_identity(self, filename):
        problems = selfcheck_byte_identity(corpus_text(filename))
        assert problems == []


class TestTrainedProfileCaching:
    def test_profiles_cached_across_harnesses(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        reset_cache()
        workload = get_workload("blackscholes")
        first = Harness(workload, scale=0.3, timing=False, train_count=2)
        profiles = first.profiles_for(0.2)
        cache = get_cache()
        assert any(
            p.get("kind") == "trained-profiles" for p in cache._entries.values()
        )

        second = Harness(workload, scale=0.3, timing=False, train_count=2)
        hits_before = cache.hits
        again = second.profiles_for(0.2)
        assert cache.hits > hits_before
        assert second._traces is None  # the hit skipped re-training entirely
        assert profiles_to_json(again) == profiles_to_json(profiles)

    def test_traced_training_bypasses_profile_cache(self, monkeypatch):
        # a cache hit would elide the training event stream, so traced
        # runs must train for real and must not consume stored profiles
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        reset_cache()
        workload = get_workload("blackscholes")
        warmup = Harness(workload, scale=0.3, timing=False, train_count=2)
        warmup.profiles_for(0.2)

        traced = Harness(workload, scale=0.3, timing=False, train_count=2)
        with sink_installed(MemorySink(capacity=1 << 16)) as sink:
            traced.profiles_for(0.2)
        assert traced._traces is not None  # really trained
        assert any(e.kind == "train-loop" for e in sink.events)
