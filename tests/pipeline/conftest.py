"""Pipeline-suite fixtures: keep the process-wide artifact cache clean.

These tests flip ``REPRO_CACHE``/``REPRO_CACHE_DIR`` and fill caches on
purpose; resetting around each test keeps them order-independent and
keeps warm entries from leaking into the rest of the suite.
"""
import pytest

from repro.pipeline import reset_cache


@pytest.fixture(autouse=True)
def _fresh_cache():
    reset_cache()
    yield
    reset_cache()
