"""Concurrency regressions of the artifact cache: the `_read_disk` TOCTOU,
thread-safety of the memory tier / counters / singletons, and the stale
tmp-file sweep.  The serve daemon runs requests on executor threads over
one shared cache, which is what turned these latent races into bugs."""
import json
import os
import subprocess
import sys
import threading
import time

import pytest

import repro.pipeline.cache as cache_mod
from repro.pipeline import ArtifactCache, get_cache, reset_cache
from repro.pipeline.cache import _drop_stale, sweep_stale_tmp


class TestReadDiskToctou:
    """A corrupt read must never delete a concurrent writer's fresh entry."""

    def test_drop_stale_removes_the_file_it_read(self, tmp_path):
        path = str(tmp_path / "entry.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{corrupt")
        with open(path, "r", encoding="utf-8") as handle:
            stamp = os.fstat(handle.fileno())
        _drop_stale(path, stamp)
        assert not os.path.exists(path)

    def test_drop_stale_keeps_a_replaced_file(self, tmp_path):
        path = str(tmp_path / "entry.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{corrupt")
        with open(path, "r", encoding="utf-8") as handle:
            stamp = os.fstat(handle.fileno())
        # a concurrent _write_disk lands a new inode on the same path
        replacement = str(tmp_path / "fresh.json")
        with open(replacement, "w", encoding="utf-8") as handle:
            handle.write('{"valid": true}')
        os.replace(replacement, path)
        _drop_stale(path, stamp)
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == {"valid": True}

    def test_corrupt_read_interleaved_with_write(self, tmp_path, monkeypatch):
        """Interleave the exact race: reader opens a corrupt entry, the
        writer `os.replace`s a valid one onto the path, then the reader's
        cleanup runs.  Pre-fix (unconditional `os.remove(path)`) the valid
        entry is deleted; post-fix it survives."""
        directory = str(tmp_path)
        cache = ArtifactCache(directory=directory)
        key = "deadbeef" * 8
        path = cache._path(key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{truncated write")

        writer = ArtifactCache(directory=directory)
        real_load = json.load

        def racing_load(handle, *args, **kwargs):
            # the write lands after the reader opened the corrupt file but
            # before it decides to remove anything; the reader's open fd
            # still sees the corrupt bytes
            writer._write_disk(key, {"v": 1})
            return real_load(handle, *args, **kwargs)

        monkeypatch.setattr(cache_mod.json, "load", racing_load)
        assert cache.get(key) is None  # the corrupt entry is a miss
        monkeypatch.undo()

        survivor = ArtifactCache(directory=directory)
        assert survivor.get(key) == {"v": 1}


class TestThreadSafety:
    """The serve executor threads hammer one cache; nothing may corrupt."""

    N_THREADS = 6
    N_OPS = 4000

    def test_memory_tier_and_counters_under_contention(self):
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            cache = ArtifactCache(capacity=8)
            errors = []

            def worker(tid):
                try:
                    for i in range(self.N_OPS):
                        key = f"k{(i * 13 + tid * 7) % 24}"
                        if cache.get(key) is None:
                            cache.put(key, {"v": key})
                except BaseException as exc:  # pragma: no cover - pre-fix only
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(tid,))
                for tid in range(self.N_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(old_interval)

        assert not errors
        stats = cache.stats()
        # every get is exactly one hit or one miss; lost updates on the
        # unlocked counters make this sum come up short
        assert stats["hits"] + stats["misses"] == self.N_THREADS * self.N_OPS
        assert len(cache) <= 8

    def test_hit_reorder_races_with_eviction(self):
        """Deterministic schedule of the LRU race: a reader's hit-path
        ``move_to_end`` overlaps a writer's eviction.  The instrumented
        dict only *widens* the existing window between the membership
        check and the reorder — pre-fix (no lock) the evicted key raises
        ``KeyError`` out of ``get``; the lock serializes the two."""
        from collections import OrderedDict

        class RacyDict(OrderedDict):
            def move_to_end(self, key, last=True):
                time.sleep(0.0005)
                super().move_to_end(key, last)

        cache = ArtifactCache(capacity=2)
        cache._entries = RacyDict()
        cache.put("a", {"v": 1})
        errors = []

        def reader():
            try:
                for _ in range(300):
                    if cache.get("a") is None:
                        cache.put("a", {"v": 1})
            except BaseException as exc:  # pragma: no cover - pre-fix only
                errors.append(exc)

        def writer():
            try:
                for i in range(300):
                    cache.put(f"w{i}", {})
            except BaseException as exc:  # pragma: no cover - pre-fix only
                errors.append(exc)

        threads = [threading.Thread(target=reader),
                   threading.Thread(target=writer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_get_cache_singleton_is_shared_across_threads(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "mem")
        reset_cache()
        seen = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            seen.append(get_cache())

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reset_cache()
        assert len({id(c) for c in seen}) == 1

    def test_compile_cache_under_contention(self):
        from repro.runtime.compiler import (
            clear_compile_cache,
            compile_module,
            module_fingerprint,
        )
        from repro.workloads import get_workload

        module = get_workload("blackscholes").build()
        fp = module_fingerprint(module)
        clear_compile_cache()
        errors = []
        results = []

        def worker():
            try:
                for _ in range(50):
                    results.append(compile_module(module))
            except BaseException as exc:  # pragma: no cover - pre-fix only
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(cm.fingerprint == fp for cm in results)
        # one compiled module shared, not one per thread
        assert len({id(cm) for cm in results}) == 1


class TestTmpSweep:
    def test_sweeps_only_old_tmp_files(self, tmp_path):
        directory = str(tmp_path)
        old = os.path.join(directory, ".abc123-x1.tmp")
        fresh = os.path.join(directory, ".def456-x2.tmp")
        entry = os.path.join(directory, "0" * 64 + ".json")
        for path in (old, fresh, entry):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("{}")
        stale_at = time.time() - 7200
        os.utime(old, (stale_at, stale_at))
        assert sweep_stale_tmp(directory, max_age=3600) == 1
        assert not os.path.exists(old)
        assert os.path.exists(fresh)
        assert os.path.exists(entry)

    def test_missing_directory_is_zero(self, tmp_path):
        assert sweep_stale_tmp(str(tmp_path / "nope")) == 0

    def test_section_store_sweep(self, tmp_path):
        from repro.eval import SectionStore

        directory = str(tmp_path / "campaigns")
        os.makedirs(directory)
        orphan = os.path.join(directory, ".campaign-zz.tmp")
        with open(orphan, "w", encoding="utf-8") as handle:
            handle.write("{}")
        stale_at = time.time() - 7200
        os.utime(orphan, (stale_at, stale_at))
        store = SectionStore(directory=directory)
        assert store.sweep(max_age=3600) == 1
        assert not os.path.exists(orphan)


def _spawn_dead_pid() -> int:
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestCheckpointLock:
    def test_second_acquire_errors_cleanly(self, tmp_path):
        from repro.eval import CheckpointBusyError, CheckpointLock

        path = str(tmp_path / "cp.json")
        with CheckpointLock(path):
            with pytest.raises(CheckpointBusyError):
                CheckpointLock(path).acquire()
        # released: a fresh acquire succeeds and cleans up after itself
        CheckpointLock(path).acquire().release()
        assert not os.path.exists(path + ".lock")

    def test_live_foreign_pid_is_respected(self, tmp_path):
        from repro.eval import CheckpointBusyError, CheckpointLock

        path = str(tmp_path / "cp.json")
        # pid 1 is always alive and never us
        with open(path + ".lock", "w", encoding="utf-8") as handle:
            json.dump({"pid": 1, "at": time.time()}, handle)
        with pytest.raises(CheckpointBusyError):
            CheckpointLock(path).acquire()

    def test_dead_pid_lock_is_stolen(self, tmp_path):
        from repro.eval import CheckpointLock

        path = str(tmp_path / "cp.json")
        with open(path + ".lock", "w", encoding="utf-8") as handle:
            json.dump({"pid": _spawn_dead_pid(), "at": time.time()}, handle)
        lock = CheckpointLock(path).acquire()
        lock.release()
        assert not os.path.exists(path + ".lock")

    def test_own_crashed_incarnation_is_stolen(self, tmp_path):
        """A SIGKILLed serve daemon can leave a lock naming a pid the OS
        then reuses for the restarted daemon: our own pid without an
        in-process registration must read as stale, not as busy."""
        from repro.eval import CheckpointLock

        path = str(tmp_path / "cp.json")
        with open(path + ".lock", "w", encoding="utf-8") as handle:
            json.dump({"pid": os.getpid(), "at": time.time()}, handle)
        lock = CheckpointLock(path).acquire()
        lock.release()

    def test_concurrent_campaigns_on_one_checkpoint(self, tmp_path):
        from repro.eval import CheckpointBusyError, CheckpointLock
        from repro.eval.campaign_engine import run_campaigns
        from repro.workloads import get_workload

        conv1d = get_workload("conv1d")
        path = str(tmp_path / "cp.json")
        holder = CheckpointLock(path).acquire()
        try:
            with pytest.raises(CheckpointBusyError):
                run_campaigns(
                    [(conv1d, "UNSAFE", None)], trials=4, scale=0.35,
                    checkpoint=path, chunk=2,
                )
        finally:
            holder.release()
        # with the lock gone the same campaign runs and releases cleanly
        run_campaigns(
            [(conv1d, "UNSAFE", None)], trials=4, scale=0.35,
            checkpoint=path, chunk=2,
        )
        assert os.path.exists(path)
        assert not os.path.exists(path + ".lock")
