"""The scheme registry: one canonicalization for every historical spelling."""
import pytest

from repro.core import RSkipConfig
from repro.pipeline import (
    DRIVER_SCHEMES,
    PAPER_SCHEMES,
    SWIFT,
    SWIFT_R,
    UNSAFE,
    all_descriptors,
    canonical_scheme,
    get_scheme,
    rskip_label,
    scheme_names,
)


class TestCanonicalScheme:
    @pytest.mark.parametrize(
        "alias,canon",
        [
            ("none", UNSAFE),
            ("UNSAFE", UNSAFE),
            ("swift", SWIFT),
            ("SWIFT", SWIFT),
            ("swift-r", SWIFT_R),
            ("SWIFT-R", SWIFT_R),
            ("ar20", "AR20"),
            ("AR20", "AR20"),
        ],
    )
    def test_both_spellings_accepted(self, alias, canon):
        assert canonical_scheme(alias) == canon
        assert get_scheme(alias) is get_scheme(canon) or (
            get_scheme(alias) == get_scheme(canon)
        )

    def test_case_and_whitespace_insensitive(self):
        assert canonical_scheme("  Swift-R ") == SWIFT_R
        assert canonical_scheme("Ar50") == "AR50"

    def test_canonical_names_self_map(self):
        # trial seeds hash the scheme string: canonical spellings must be
        # fixpoints so canonicalizing at the campaign boundary is a no-op
        # for callers that already pass paper labels.
        for name in PAPER_SCHEMES:
            assert canonical_scheme(name) == name

    def test_rskip_alias_resolves_via_config(self):
        assert canonical_scheme("rskip") == "AR20"  # default config
        assert canonical_scheme("rskip", RSkipConfig(acceptable_range=0.8)) == "AR80"
        assert get_scheme("rskip").acceptable_range == pytest.approx(0.2)

    def test_driver_spellings_all_resolve(self):
        assert [canonical_scheme(s) for s in DRIVER_SCHEMES] == [
            UNSAFE, SWIFT, SWIFT_R, "AR20",
        ]

    def test_unknown_scheme_raises_with_alias_list(self):
        with pytest.raises(ValueError, match="unknown scheme 'tmr'") as exc:
            canonical_scheme("tmr")
        message = str(exc.value)
        # the error must teach the full vocabulary
        for known in (UNSAFE, SWIFT, SWIFT_R, "none", "swift-r", "rskip", "AR<k>"):
            assert known in message

    def test_ar_labels_beyond_100_accepted(self):
        # the AR sweep legitimately goes past the paper's grid (ar=1.5, 2.0)
        assert canonical_scheme("AR150") == "AR150"
        desc = get_scheme("ar150")
        assert desc.acceptable_range == pytest.approx(1.5)
        assert desc.needs_training and desc.needs_runtime

    def test_descriptor_passthrough(self):
        desc = get_scheme("AR20")
        assert canonical_scheme(desc) == "AR20"
        assert get_scheme(desc) is desc


class TestDescriptors:
    def test_rskip_label_matches_registry(self):
        assert rskip_label(0.2) == "AR20"
        assert rskip_label(1.0) == "AR100"
        assert get_scheme(rskip_label(0.5)).acceptable_range == pytest.approx(0.5)

    def test_pass_lists(self):
        assert get_scheme(UNSAFE).passes == ()
        assert get_scheme(SWIFT).passes == ("swift",)
        assert get_scheme(SWIFT_R).passes == ("swift-r",)
        assert get_scheme("AR80").passes == ("rskip",)

    def test_runtime_requirements(self):
        assert not get_scheme(SWIFT_R).needs_training
        assert not get_scheme(SWIFT_R).needs_runtime
        assert get_scheme("AR20").needs_training
        assert get_scheme("AR20").needs_runtime

    def test_descriptor_hash_stable_and_distinct(self):
        assert get_scheme("AR20").descriptor_hash() == get_scheme("ar20").descriptor_hash()
        hashes = {get_scheme(name).descriptor_hash() for name in scheme_names()}
        assert len(hashes) == len(scheme_names())

    def test_listing_covers_paper_schemes(self):
        names = scheme_names()
        listed = {d.name for d in all_descriptors()}
        for scheme in PAPER_SCHEMES:
            assert scheme in names
            assert scheme in listed
        assert SWIFT in listed  # detection-only scheme is listed too


class TestProtocolFamilies:
    @pytest.mark.parametrize(
        "alias,canon",
        [
            ("replay", "REPLAY1"),
            ("REPLAY1", "REPLAY1"),
            ("replay2", "REPLAY2"),
            ("Replay16", "REPLAY16"),
            ("ckpt", "CKPT8"),
            ("CKPT8", "CKPT8"),
            ("ckpt32", "CKPT32"),
            ("ckpt8fix", "CKPT8FIX"),
            ("CKPT4FIX", "CKPT4FIX"),
        ],
    )
    def test_protocol_spellings_accepted(self, alias, canon):
        assert canonical_scheme(alias) == canon
        assert get_scheme(alias).name == canon

    @pytest.mark.parametrize("bad", ["replay0", "ckpt0", "REPLAY0", "CKPT0FIX"])
    def test_degenerate_parameters_rejected(self, bad):
        with pytest.raises(ValueError):
            canonical_scheme(bad)

    def test_replay_protocol_shape(self):
        proto = get_scheme("replay2").protocol
        assert proto.detect == "replay-compare"
        assert proto.recovery == "abort"
        assert proto.redundancy == "time"
        assert proto.flip_scope == "region"
        assert proto.contract == "detected-or-masked"
        assert proto.param("sample_period") == 2
        assert proto.verify_as == "REPLAY1"

    def test_ckpt_protocol_shape(self):
        proto = get_scheme("ckpt8").protocol
        assert proto.detect == "replay-compare"
        assert proto.recovery == "rollback"
        assert proto.contract == "exactly-masked"
        assert proto.param("interval") == 8
        assert proto.param("predictor") == 1.0
        assert get_scheme("ckpt8fix").protocol.param("predictor") == 0.0

    def test_paper_scheme_protocols_derived_not_hardcoded(self):
        assert get_scheme(SWIFT).protocol.contract == "detected-or-masked"
        assert get_scheme(SWIFT_R).protocol.contract == "exactly-masked"
        assert get_scheme("AR20").protocol.detect == "predict-compare"
        assert get_scheme(UNSAFE).protocol.contract == "none"

    def test_protocol_params_feed_descriptor_hash(self):
        # checkpoint-resume integrity depends on this: a protocol knob
        # change must change the descriptor hash
        assert (get_scheme("replay2").descriptor_hash()
                != get_scheme("replay3").descriptor_hash())
        assert (get_scheme("ckpt8").descriptor_hash()
                != get_scheme("ckpt8fix").descriptor_hash())
        assert (get_scheme("ckpt8").descriptor_hash()
                != get_scheme("ckpt16").descriptor_hash())

    def test_registry_enumerations_cover_protocol_families(self):
        from repro.pipeline import default_campaign_schemes, protection_pass_schemes

        passes = protection_pass_schemes()
        assert passes[0] is None  # unprotected baseline first
        assert "replay" in passes and "ckpt" in passes
        campaign = default_campaign_schemes()
        assert campaign[0] == UNSAFE
        assert "REPLAY2" in campaign and "CKPT8" in campaign
        assert UNSAFE not in default_campaign_schemes(include_unsafe=False)
