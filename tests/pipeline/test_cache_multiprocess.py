"""Cross-process artifact-cache contention: N writer processes and M
reader processes hammer one shared cache directory.  The disk protocol
(atomic write-then-rename, identity-checked corrupt-entry removal) must
keep every read either a valid entry or a clean miss — never a torn
record, never a deleted fresh write, never a crash.

Marked slow: real process fan-out, a few seconds of wall clock.
"""
import json
import os
import subprocess
import sys

import pytest

from repro.pipeline import ArtifactCache

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

N_WRITERS = 3
N_READERS = 3
ITERS = 1500
KEYS = 12

WORKER = r"""
import random, sys
from repro.pipeline.cache import ArtifactCache

role, seed, directory, iters, nkeys = (
    sys.argv[1], int(sys.argv[2]), sys.argv[3], int(sys.argv[4]),
    int(sys.argv[5]))
rng = random.Random(seed)
cache = ArtifactCache(capacity=4, directory=directory)
keys = ["k%02d" % i for i in range(nkeys)]
for i in range(iters):
    key = rng.choice(keys)
    if role == "writer":
        cache._write_disk(key, {"key": key, "writer": seed, "i": i})
        if i % 97 == 0:
            # a crashed writer's torn entry: valid JSON prefix, truncated
            with open(cache._path(key), "w", encoding="utf-8") as handle:
                handle.write('{"version": 1, "key": "%s", "payl' % key)
    else:
        payload = cache._read_disk(key)
        if payload is not None and payload["key"] != key:
            raise SystemExit("cross-key payload for %s: %r" % (key, payload))
print("worker-ok")
"""


@pytest.mark.slow
def test_cross_process_cache_contention(tmp_path):
    directory = str(tmp_path / "shared-cache")
    os.makedirs(directory)

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")

    procs = []
    for seed in range(N_WRITERS):
        procs.append(("writer", subprocess.Popen(
            [sys.executable, "-c", WORKER, "writer", str(seed), directory,
             str(ITERS), str(KEYS)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)))
    for seed in range(N_READERS):
        procs.append(("reader", subprocess.Popen(
            [sys.executable, "-c", WORKER, "reader", str(100 + seed),
             directory, str(ITERS), str(KEYS)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)))

    failures = []
    for role, proc in procs:
        out, err = proc.communicate(timeout=300)
        if proc.returncode != 0 or "worker-ok" not in out:
            failures.append(f"{role} rc={proc.returncode}\n{out}\n{err}")
    assert not failures, "\n---\n".join(failures)

    # afterwards: no temp litter beyond live writes, and every surviving
    # entry parses as a complete record for its own key (readers may have
    # legitimately removed torn entries; valid ones must never be lost to
    # the TOCTOU this suite pins)
    survivor = ArtifactCache(directory=directory)
    valid = 0
    for name in os.listdir(directory):
        assert not name.endswith(".tmp"), f"leaked temp file {name}"
        key = name[:-len(".json")]
        with open(os.path.join(directory, name), encoding="utf-8") as handle:
            try:
                record = json.load(handle)
            except ValueError:
                continue  # a final torn write nobody read; removed on read
        assert record["key"] == key
        assert record["payload"]["key"] == key
        assert survivor._read_disk(key) == record["payload"]
        valid += 1
    assert valid > 0
